"""Job-batch generation for the co-allocation layer."""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..workload.generator import FlexibleWorkload
from ..workload.arrivals import ArrivalProcess, PoissonArrivals
from .jobs import GridJob

__all__ = ["random_jobs"]


def random_jobs(
    platform: Platform,
    n: int,
    rng: np.random.Generator,
    *,
    mean_interarrival: float = 5.0,
    slack: float = 6.0,
    cpu_time_range: tuple[float, float] = (600.0, 7200.0),
    max_cpus: int = 64,
    arrivals: ArrivalProcess | None = None,
) -> list[GridJob]:
    """Draw ``n`` grid jobs: a §5.3 staging transfer plus a CPU demand.

    CPU times are log-uniform over ``cpu_time_range`` and CPU counts
    uniform in ``1..max_cpus`` — batch-queue-like heterogeneity.
    """
    if max_cpus < 1:
        raise ConfigurationError(f"max_cpus must be >= 1, got {max_cpus}")
    lo, hi = cpu_time_range
    if not (0 < lo <= hi):
        raise ConfigurationError(f"need 0 < lo <= hi cpu_time_range, got {cpu_time_range}")

    workload = FlexibleWorkload(
        platform,
        arrivals=arrivals or PoissonArrivals(mean_interarrival),
        slack=slack,
    )
    problem = workload.generate(n, rng)
    cpu_times = np.exp(rng.uniform(np.log(lo), np.log(hi), size=n))
    cpus = rng.integers(1, max_cpus + 1, size=n)
    return [
        GridJob(request=request, cpus=int(cpus[i]), cpu_time=float(cpu_times[i]))
        for i, request in enumerate(problem.requests)
    ]
