"""Failure injection: transfers that abort mid-flight.

The paper motivates reservations with reliability — "a large amount of
resources could be wasted when long transfer failure occurs" (§6).  This
module injects random aborts into a schedule and accounts for the damage:

- **wasted volume** — MB carried before the abort (grid resources burned
  for nothing);
- **freed capacity** — the reservation tail returned to the ledger;
- **salvageable rejections** — an upper bound on how many previously
  rejected requests could have been admitted into the freed capacity
  (computed by re-running the book-ahead search offline).

Together with :class:`~repro.fairness.FluidSimulation` (where *every*
overloaded transfer is at risk), this quantifies the reliability gap
between reservation-based and statistical sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.allocation import ScheduleResult
from ..core.booking import book_earliest
from ..core.errors import ConfigurationError
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance

__all__ = ["AbortReport", "simulate_aborts"]


@dataclass
class AbortReport:
    """Outcome of an abort-injection pass."""

    aborted: dict[int, float] = field(default_factory=dict)  # rid -> abort time
    wasted_volume: float = 0.0
    freed_capacity_time: float = 0.0  # MB of reservation tail returned
    salvageable: list[int] = field(default_factory=list)

    @property
    def num_aborted(self) -> int:
        """How many accepted transfers failed."""
        return len(self.aborted)

    @property
    def num_salvageable(self) -> int:
        """Rejected requests that would have fit the freed capacity."""
        return len(self.salvageable)


def simulate_aborts(
    problem: ProblemInstance,
    result: ScheduleResult,
    abort_rate: float,
    rng: np.random.Generator,
    *,
    salvage: bool = True,
) -> AbortReport:
    """Abort each accepted transfer with probability ``abort_rate``.

    An aborted transfer dies at a uniform point of its ``[σ, τ)`` run; the
    volume carried so far is wasted and the tail of its reservation is
    released.  With ``salvage`` the freed ledger is offered to the
    originally rejected requests (earliest-start booking at ``MinRate``),
    yielding an optimistic re-admission count.
    """
    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")

    report = AbortReport()
    ledger = PortLedger(problem.platform)
    for rid, alloc in result.accepted.items():
        if rng.random() < abort_rate:
            abort_at = float(rng.uniform(alloc.sigma, alloc.tau))
            report.aborted[rid] = abort_at
            report.wasted_volume += alloc.bw * (abort_at - alloc.sigma)
            report.freed_capacity_time += alloc.bw * (alloc.tau - abort_at)
            if abort_at > alloc.sigma:
                ledger.allocate(
                    alloc.ingress, alloc.egress, alloc.sigma, abort_at, alloc.bw, check=False
                )
        else:
            ledger.allocate(
                alloc.ingress, alloc.egress, alloc.sigma, alloc.tau, alloc.bw, check=False
            )

    if salvage:
        # The salvage pass is the offline face of the online re-admission
        # path: the same earliest-fit book-ahead search the reservation
        # service runs (``repro.core.booking``), applied to the freed ledger.
        for rid in sorted(result.rejected):
            request = problem.requests.by_rid(rid)
            if book_earliest(ledger, request) is not None:
                report.salvageable.append(rid)
    return report
