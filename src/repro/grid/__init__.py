"""Grid job co-allocation: the CPU side of the tuning-factor argument (§2.3).

Jobs hold processors from submission until their data staging *and*
compute finish; granting transfers more bandwidth (larger ``f``) releases
CPUs earlier at the price of accept rate.  See :class:`JobSimulator`.
"""

from .failures import AbortReport, simulate_aborts
from .jobs import GridJob, JobOutcome, JobSimulationResult, JobSimulator
from .workload import random_jobs

__all__ = [
    "AbortReport",
    "GridJob",
    "JobOutcome",
    "JobSimulationResult",
    "JobSimulator",
    "random_jobs",
    "simulate_aborts",
]
