"""Grid jobs: CPU + data-transfer co-allocation (§2.3).

The paper's whole case for the tuning factor is a *grid computing*
argument: "the completion time of typical datagrid applications is given
by the sum of the execution time and of the time taken to transfer the
data" and a transfer served faster "implies the earlier release of
computing and storage resources".  This module supplies that missing
layer: jobs that stage data in over the network and then hold CPUs at the
destination site.

A :class:`GridJob` bundles a transfer request with a CPU demand; the
:class:`JobSimulator` admits transfers through any bandwidth scheduler,
then replays CPU occupancy: a job's processors are *reserved from its
submission* (the co-allocation the paper assumes — CPUs are scheduled
first, §1) and released when staging + compute finish.  Granting more
bandwidth shortens the CPU hold, which is exactly the effect the tuning
factor trades against accept rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

import numpy as np

from ..core.allocation import ScheduleResult
from ..core.errors import ConfigurationError, InternalInvariantError, InvalidRequestError
from ..core.problem import ProblemInstance
from ..core.request import Request, RequestSet
from ..schedulers.base import Scheduler

__all__ = ["GridJob", "JobOutcome", "JobSimulationResult", "JobSimulator"]


@dataclass(frozen=True, slots=True)
class GridJob:
    """A compute job that must stage its input data first.

    Attributes
    ----------
    request:
        The staging transfer (the job runs at the *egress* site).
    cpus:
        Processors held at the destination site.
    cpu_time:
        Compute duration once the data has landed, seconds.
    """

    request: Request
    cpus: int
    cpu_time: float

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise InvalidRequestError(f"job {self.request.rid}: needs at least one CPU")
        if self.cpu_time <= 0:
            raise InvalidRequestError(f"job {self.request.rid}: cpu_time must be positive")

    @property
    def rid(self) -> int:
        """Identifier shared with the staging request."""
        return self.request.rid

    @property
    def site(self) -> int:
        """Destination (egress) site index."""
        return self.request.egress


@dataclass(frozen=True, slots=True)
class JobOutcome:
    """Fate of one job."""

    rid: int
    admitted: bool
    staged_at: float | None
    finished_at: float | None
    cpu_seconds_held: float

    @property
    def completed(self) -> bool:
        """Did the job run (its transfer was admitted)?"""
        return self.finished_at is not None


@dataclass
class JobSimulationResult:
    """Aggregate outcome of co-allocating a job batch."""

    outcomes: dict[int, JobOutcome] = field(default_factory=dict)
    schedule: ScheduleResult | None = None

    @property
    def num_jobs(self) -> int:
        """Total jobs submitted."""
        return len(self.outcomes)

    @property
    def completed_rate(self) -> float:
        """Fraction of jobs that ran."""
        if not self.outcomes:
            return 0.0
        return sum(o.completed for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def total_cpu_seconds(self) -> float:
        """CPU·seconds held across all admitted jobs (reservation + run)."""
        return sum(o.cpu_seconds_held for o in self.outcomes.values())

    def cpu_seconds_per_job(self) -> float:
        """Mean CPU·seconds per completed job — lower is better (less CPU
        time wasted waiting for data)."""
        done = [o.cpu_seconds_held for o in self.outcomes.values() if o.completed]
        return float(np.mean(done)) if done else 0.0

    def mean_completion_time(self) -> float:
        """Mean submission→finish latency over completed jobs."""
        done = [
            o.finished_at - self._submission(o.rid)
            for o in self.outcomes.values()
            if o.finished_at is not None
        ]
        return float(np.mean(done)) if done else 0.0

    def _submission(self, rid: int) -> float:
        if rid not in self._submissions:
            raise InternalInvariantError(
                f"outcome for job {rid} exists but its submission time was never recorded"
            )
        return self._submissions[rid]

    # filled by the simulator
    _submissions: dict[int, float] = field(default_factory=dict)


class JobSimulator:
    """Co-allocate a batch of grid jobs through a bandwidth scheduler.

    The CPU model follows the paper's framing: processors are allocated
    before the transfer is issued (§1: "scheduling algorithms that
    allocate computing and storage resources first, and then generate
    data transfer requests"), so a job holds ``cpus`` from its submission
    ``t_s`` until ``τ + cpu_time``.  Rejected transfers release their CPUs
    immediately (the job is resubmitted elsewhere, outside our scope).
    """

    def __init__(self, problem_platform, jobs: Iterable[GridJob]) -> None:
        self.platform = problem_platform
        self.jobs = list(jobs)
        rids = [j.rid for j in self.jobs]
        if len(set(rids)) != len(rids):
            raise ConfigurationError("duplicate job ids")

    def problem(self) -> ProblemInstance:
        """The staging transfers as a schedulable problem instance."""
        return ProblemInstance(self.platform, RequestSet(j.request for j in self.jobs))

    def run(self, scheduler: Scheduler) -> JobSimulationResult:
        """Admit the transfers with ``scheduler`` and replay CPU holds."""
        problem = self.problem()
        schedule = scheduler.schedule(problem)
        result = JobSimulationResult(schedule=schedule)
        result._submissions = {j.rid: j.request.t_start for j in self.jobs}
        for job in self.jobs:
            alloc = schedule.accepted.get(job.rid)
            if alloc is None:
                result.outcomes[job.rid] = JobOutcome(
                    rid=job.rid,
                    admitted=False,
                    staged_at=None,
                    finished_at=None,
                    cpu_seconds_held=0.0,
                )
                continue
            finished = alloc.tau + job.cpu_time
            held = job.cpus * (finished - job.request.t_start)
            result.outcomes[job.rid] = JobOutcome(
                rid=job.rid,
                admitted=True,
                staged_at=alloc.tau,
                finished_at=finished,
                cpu_seconds_held=held,
            )
        return result
