"""Span tracing keyed to the **simulation clock**.

A :class:`Span` is a named interval of simulated time (seconds); an
*instant* is a zero-length marker.  The tracer never reads the host clock
— every timestamp arrives as an explicit argument, exactly like the rest
of the control plane, so traces replay byte-identically (wall-clock timing
for benchmarks lives behind :mod:`repro.obs.perfclock` instead).

Exports:

- :meth:`SpanTracer.to_chrome_trace` — the Chrome trace-event JSON format
  (load the file in ``chrome://tracing`` or Perfetto; simulated seconds
  are mapped to trace microseconds);
- :meth:`SpanTracer.to_jsonl` — one canonical JSON object per span, for
  line-oriented tooling.

Both directions round-trip: :meth:`SpanTracer.from_chrome_trace` and
:meth:`SpanTracer.from_jsonl` rebuild an equivalent tracer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from collections.abc import Iterator, Mapping
from typing import Any

from ..core.errors import ConfigurationError

__all__ = ["Span", "SpanTracer", "SECONDS_TO_TRACE_US"]

#: Chrome trace events are timestamped in microseconds.
SECONDS_TO_TRACE_US: float = 1e6


@dataclass(slots=True)
class Span:
    """One named interval (or instant) of simulated time."""

    name: str
    start: float
    #: ``None`` while the span is still open (see :meth:`SpanTracer.finish`).
    end: float | None = None
    cat: str = ""
    #: Track id — lets related spans share a row in trace viewers
    #: (e.g. one track per ingress port).
    tid: int = 0
    args: dict[str, Any] = field(default_factory=dict)
    #: ``"span"`` for intervals, ``"instant"`` for zero-length markers.
    kind: str = "span"

    @property
    def duration(self) -> float:
        """Simulated seconds covered (0 for instants and open spans)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "cat": self.cat,
            "tid": self.tid,
            "args": dict(self.args),
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Span:
        """Inverse of :meth:`to_dict`."""
        end = data.get("end")
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            end=None if end is None else float(end),
            cat=str(data.get("cat", "")),
            tid=int(data.get("tid", 0)),
            args=dict(data.get("args", {})),
            kind=str(data.get("kind", "span")),
        )


class SpanTracer:
    """Append-only span collector with an optional FIFO capacity bound.

    Parameters
    ----------
    capacity:
        Keep at most this many spans; older spans are evicted FIFO once
        exceeded (mirrors :class:`repro.sim.trace.EventTrace`) and counted
        in :attr:`dropped`.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self._spans: list[Span] = []
        self._capacity = capacity
        self._dropped = 0

    # ------------------------------------------------------------------
    def _push(self, span: Span) -> Span:
        self._spans.append(span)
        if self._capacity is not None and len(self._spans) > self._capacity:
            overflow = len(self._spans) - self._capacity
            del self._spans[:overflow]
            self._dropped += overflow
        return span

    def begin(self, name: str, t: float, *, cat: str = "", tid: int = 0, **args: Any) -> Span:
        """Open a span at simulated time ``t``; close it with :meth:`finish`."""
        return self._push(Span(name=name, start=t, cat=cat, tid=tid, args=dict(args)))

    def finish(self, span: Span, t: float) -> Span:
        """Close an open span at simulated time ``t``."""
        if span.end is not None:
            raise ConfigurationError(f"span {span.name!r} already finished")
        if t < span.start:
            raise ConfigurationError(
                f"span {span.name!r} cannot finish at {t} before its start {span.start}"
            )
        span.end = t
        return span

    def complete(
        self, name: str, start: float, end: float, *, cat: str = "", tid: int = 0, **args: Any
    ) -> Span:
        """Record a span whose bounds are both known."""
        if end < start:
            raise ConfigurationError(f"span {name!r} has end {end} before start {start}")
        return self._push(Span(name=name, start=start, end=end, cat=cat, tid=tid, args=dict(args)))

    def instant(self, name: str, t: float, *, cat: str = "", tid: int = 0, **args: Any) -> Span:
        """Record a zero-length marker at simulated time ``t``."""
        return self._push(
            Span(name=name, start=t, end=t, cat=cat, tid=tid, args=dict(args), kind="instant")
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted by the capacity bound."""
        return self._dropped

    def spans(self, *, name: str | None = None, cat: str | None = None) -> list[Span]:
        """Recorded spans, optionally filtered by name and/or category."""
        out = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            if cat is not None and span.cat != cat:
                continue
            out.append(span)
        return out

    # ------------------------------------------------------------------
    # Export / import
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """Every span as its canonical dict, in record order."""
        return [span.to_dict() for span in self._spans]

    def to_chrome_trace(self, *, pid: int = 0) -> dict[str, Any]:
        """The Chrome trace-event document (``chrome://tracing`` / Perfetto).

        Simulated seconds map to trace microseconds.  Intervals become
        complete events (``ph: "X"``); instants become instant events
        (``ph: "i"``); spans still open at export time are emitted as
        begin events (``ph: "B"``) so viewers show them as unterminated.
        """
        events: list[dict[str, Any]] = []
        for span in self._spans:
            base: dict[str, Any] = {
                "name": span.name,
                "cat": span.cat or "repro",
                "ts": span.start * SECONDS_TO_TRACE_US,
                "pid": pid,
                "tid": span.tid,
                "args": dict(span.args),
            }
            if span.kind == "instant":
                events.append({**base, "ph": "i", "s": "t"})
            elif span.end is None:
                events.append({**base, "ph": "B"})
            else:
                events.append(
                    {**base, "ph": "X", "dur": (span.end - span.start) * SECONDS_TO_TRACE_US}
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    @classmethod
    def from_chrome_trace(cls, document: Mapping[str, Any]) -> SpanTracer:
        """Rebuild a tracer from :meth:`to_chrome_trace` output."""
        tracer = cls()
        for event in document.get("traceEvents", []):
            phase = event.get("ph")
            start = float(event.get("ts", 0.0)) / SECONDS_TO_TRACE_US
            cat = str(event.get("cat", ""))
            cat = "" if cat == "repro" else cat
            common: dict[str, Any] = {
                "cat": cat,
                "tid": int(event.get("tid", 0)),
            }
            name = str(event.get("name", ""))
            args = dict(event.get("args", {}))
            if phase == "i":
                span = tracer.instant(name, start, **common)
                span.args.update(args)
            elif phase == "B":
                span = tracer.begin(name, start, **common)
                span.args.update(args)
            elif phase == "X":
                end = start + float(event.get("dur", 0.0)) / SECONDS_TO_TRACE_US
                span = tracer.complete(name, start, end, **common)
                span.args.update(args)
            # Other phases (metadata, counters, ...) are not produced by
            # to_chrome_trace and are skipped on import.
        return tracer

    def to_jsonl(self) -> str:
        """One canonical JSON object per span, newline-separated."""
        return "\n".join(
            json.dumps(span.to_dict(), sort_keys=True, separators=(",", ":"))
            for span in self._spans
        ) + ("\n" if self._spans else "")

    @classmethod
    def from_jsonl(cls, text: str) -> SpanTracer:
        """Rebuild a tracer from :meth:`to_jsonl` output."""
        tracer = cls()
        for line in text.splitlines():
            line = line.strip()
            if line:
                tracer._push(Span.from_dict(json.loads(line)))
        return tracer
