"""The run-telemetry artifact: a self-describing record of one run.

A :class:`RunTelemetry` bundles one or more *captures* (each the snapshot
of a :class:`~repro.obs.telemetry.Telemetry` handle, e.g. one per
replication seed) under a run name and free-form metadata.  The JSON form
is canonical — keys sorted, metrics and label sets ordered — so two
identical seeded runs serialise **byte-identically**; the determinism
tests rely on this.

Artifacts are what ``grid-obs`` consumes (see :mod:`repro.obs.cli`) and
what :func:`repro.experiments.runner.replicate` and the benchmark suite
attach to every run.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from ..core.errors import ConfigurationError
from .metrics import MetricsRegistry
from .schema import validate_artifact
from .telemetry import Telemetry
from .tracer import Span, SpanTracer

__all__ = ["RunTelemetry"]

#: Bumped whenever the artifact layout changes incompatibly.
ARTIFACT_VERSION = 1


class RunTelemetry:
    """A named collection of telemetry captures with canonical JSON I/O."""

    def __init__(self, name: str, *, meta: Mapping[str, Any] | None = None) -> None:
        if not name:
            raise ConfigurationError("a run-telemetry artifact needs a non-empty name")
        self.name = name
        self.meta: dict[str, Any] = dict(meta or {})
        self._captures: list[dict[str, Any]] = []

    # ------------------------------------------------------------------
    def capture(
        self,
        label: str,
        telemetry: Telemetry,
        *,
        results: Mapping[str, Any] | None = None,
    ) -> None:
        """Snapshot ``telemetry`` under ``label`` (e.g. ``"seed=0"``).

        ``results`` carries the run's scalar outcomes (accept rate, figure
        metrics, bench timings) so the artifact is self-describing.
        """
        snapshot = telemetry.snapshot()
        entry: dict[str, Any] = {"label": label, **snapshot}
        if results is not None:
            entry["results"] = dict(results)
        self._captures.append(entry)

    def __len__(self) -> int:
        return len(self._captures)

    def captures(self) -> Iterator[dict[str, Any]]:
        """The raw capture dicts, in record order."""
        return iter(self._captures)

    def labels(self) -> list[str]:
        """Capture labels, in record order."""
        return [str(c["label"]) for c in self._captures]

    def registry(self, label: str) -> MetricsRegistry:
        """The metrics registry of the capture named ``label``."""
        for entry in self._captures:
            if entry["label"] == label:
                return MetricsRegistry.from_dict(entry["metrics"])
        raise KeyError(f"no capture labeled {label!r} in artifact {self.name!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form (see :data:`~repro.obs.schema.ARTIFACT_SCHEMA`)."""
        return {
            "format": "repro-run-telemetry",
            "version": ARTIFACT_VERSION,
            "name": self.name,
            "meta": dict(self.meta),
            "captures": list(self._captures),
        }

    def to_json(self) -> str:
        """Stable JSON text — byte-identical across identical runs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str | Path) -> Path:
        """Write the artifact as JSON; returns the path written."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json(), encoding="utf-8")
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> RunTelemetry:
        """Rebuild an artifact from :meth:`to_dict` output (schema-checked)."""
        validate_artifact(data)
        artifact = cls(str(data["name"]), meta=data.get("meta", {}))
        artifact._captures = [dict(entry) for entry in data["captures"]]
        return artifact

    @classmethod
    def load(cls, path: str | Path) -> RunTelemetry:
        """Read an artifact written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))

    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict[str, Any]:
        """Merge every capture's spans into one Chrome trace document.

        Each capture becomes its own process (``pid``) so Perfetto shows
        replications side by side.
        """
        events: list[dict[str, Any]] = []
        for pid, entry in enumerate(self._captures):
            tracer = SpanTracer()
            for span_dict in entry.get("spans", []):
                tracer._push(Span.from_dict(span_dict))
            document = tracer.to_chrome_trace(pid=pid)
            events.extend(document["traceEvents"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}
