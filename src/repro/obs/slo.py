"""SLO watchdog: declarative service-level rules over windowed aggregates.

A :class:`SloRule` names one bound on one gateway health metric — an
``accept_rate`` floor, a ``p99_admission_latency`` ceiling (simulated
time), a ``max_hold_age`` ceiling, a ``backlog_depth`` ceiling or an
``overcommit_proximity`` ceiling — optionally restricted to a sliding
window of recent simulated time.  The :class:`SloWatchdog` ingests
admission decisions and health samples from the gateway, evaluates every
rule at each batch flush, and emits edge-triggered :class:`SloBreach`
records (plus an ``slo.breach`` telemetry event, an
``slo_breaches_total`` counter and a flight-recorder row) when a bound
is first crossed.

The chaos matrix (:func:`repro.control.faults.run_chaos_matrix`) runs a
watchdog per cell so each cell reports both invariant *and* SLO
verdicts; ``grid-obs slo`` replays the same evaluation offline against a
:class:`~repro.obs.artifact.RunTelemetry` artifact and a rules file.
"""

from __future__ import annotations

import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..core.errors import ReproError
from .causal import iter_captures

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .artifact import RunTelemetry
    from .recorder import FlightRecorder
    from .telemetry import Telemetry

__all__ = [
    "SLO_METRICS",
    "SloBreach",
    "SloRule",
    "SloWatchdog",
    "default_slo_rules",
    "evaluate_artifact",
    "load_rules",
]

#: The gateway health metrics a rule may bound.
SLO_METRICS = (
    "accept_rate",
    "p99_admission_latency",
    "max_hold_age",
    "backlog_depth",
    "overcommit_proximity",
)

_BOUNDS = ("floor", "ceiling")


class SloRuleError(ReproError, ValueError):
    """A rule (or rules file) is malformed."""


@dataclass(frozen=True, slots=True)
class SloRule:
    """One declarative bound: ``metric`` must stay above/below ``threshold``.

    ``window`` restricts evaluation to the last ``window`` units of
    simulated time (``math.inf`` = whole run so far).
    """

    name: str
    metric: str
    bound: str
    threshold: float
    window: float = math.inf

    def __post_init__(self) -> None:
        if self.metric not in SLO_METRICS:
            raise SloRuleError(
                f"rule {self.name!r}: unknown metric {self.metric!r} "
                f"(expected one of {SLO_METRICS})"
            )
        if self.bound not in _BOUNDS:
            raise SloRuleError(
                f"rule {self.name!r}: bound must be 'floor' or 'ceiling', got {self.bound!r}"
            )
        if self.window <= 0:
            raise SloRuleError(f"rule {self.name!r}: window must be positive")

    def violated(self, value: float) -> bool:
        """Whether ``value`` breaks this bound."""
        if self.bound == "floor":
            return value < self.threshold
        return value > self.threshold

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "metric": self.metric,
            "bound": self.bound,
            "threshold": self.threshold,
            "window": None if math.isinf(self.window) else self.window,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> SloRule:
        try:
            window = data.get("window")
            return cls(
                name=str(data["name"]),
                metric=str(data["metric"]),
                bound=str(data["bound"]),
                threshold=float(data["threshold"]),
                window=math.inf if window is None else float(window),
            )
        except KeyError as exc:
            raise SloRuleError(f"rule is missing required key {exc.args[0]!r}") from exc


@dataclass(frozen=True, slots=True)
class SloBreach:
    """One edge-triggered breach: which rule broke, on what value, when."""

    rule: str
    metric: str
    bound: str
    threshold: float
    value: float
    at: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "metric": self.metric,
            "bound": self.bound,
            "threshold": self.threshold,
            "value": self.value,
            "at": self.at,
        }


class SloWatchdog:
    """Evaluates a rule set over the gateway's windowed health aggregates.

    Breaches are **edge-triggered**: a rule that stays violated across
    many evaluations produces one breach when it first crosses and a new
    one only after it recovers and crosses again.
    """

    def __init__(self, rules: Sequence[SloRule]) -> None:
        names = [rule.name for rule in rules]
        dupes = sorted({n for n in names if names.count(n) > 1})
        if dupes:
            raise SloRuleError(f"duplicate rule name(s): {dupes}")
        self.rules = tuple(rules)
        self.breaches: list[SloBreach] = []
        self._admissions: list[tuple[float, bool, float]] = []
        self._samples: dict[str, list[tuple[float, float]]] = {}
        self._active: set[str] = set()

    @property
    def ok(self) -> bool:
        """True while no rule has ever breached."""
        return not self.breaches

    @property
    def active(self) -> tuple[str, ...]:
        """Names of rules violated at the last evaluation (sorted).

        Breaches are edge-triggered, so :attr:`breaches` only ever grows;
        a *liveness* probe (the service plane's ``/healthz``) instead
        needs "is anything wrong right now" — a rule leaves this set as
        soon as an evaluation sees it back inside its bound.
        """
        return tuple(sorted(self._active))

    @property
    def healthy(self) -> bool:
        """True when no rule is violated *currently* (see :attr:`active`)."""
        return not self._active

    def admission(self, t: float, *, accepted: bool, latency: float) -> None:
        """Ingest one admission decision (latency in simulated time)."""
        self._admissions.append((t, accepted, latency))

    def sample(self, metric: str, t: float, value: float) -> None:
        """Ingest one health sample (hold age, backlog depth, utilisation)."""
        self._samples.setdefault(metric, []).append((t, value))

    def _prune(self, now: float) -> None:
        finite = [rule.window for rule in self.rules if not math.isinf(rule.window)]
        if len(finite) != len(self.rules):
            return  # some rule looks at the whole run; keep everything
        horizon = now - max(finite, default=0.0)
        self._admissions = [row for row in self._admissions if row[0] >= horizon]
        for metric, rows in self._samples.items():
            self._samples[metric] = [row for row in rows if row[0] >= horizon]

    def _value_of(self, rule: SloRule, now: float) -> float | None:
        since = now - rule.window
        if rule.metric == "accept_rate":
            decided = [row for row in self._admissions if row[0] >= since]
            if not decided:
                return None
            return sum(1 for row in decided if row[1]) / len(decided)
        if rule.metric == "p99_admission_latency":
            latencies = sorted(row[2] for row in self._admissions if row[0] >= since)
            if not latencies:
                return None
            index = min(len(latencies) - 1, math.ceil(0.99 * len(latencies)) - 1)
            return latencies[max(index, 0)]
        rows = [row[1] for row in self._samples.get(rule.metric, ()) if row[0] >= since]
        if not rows:
            return None
        # worst-case within the window: the direction the bound cares about
        return min(rows) if rule.bound == "floor" else max(rows)

    def evaluate(
        self,
        now: float,
        *,
        telemetry: Telemetry | None = None,
        recorder: FlightRecorder | None = None,
    ) -> list[SloBreach]:
        """Evaluate every rule at ``now``; returns breaches new this call."""
        self._prune(now)
        fresh: list[SloBreach] = []
        for rule in self.rules:
            value = self._value_of(rule, now)
            if value is None or not rule.violated(value):
                self._active.discard(rule.name)
                continue
            if rule.name in self._active:
                continue
            self._active.add(rule.name)
            breach = SloBreach(
                rule=rule.name,
                metric=rule.metric,
                bound=rule.bound,
                threshold=rule.threshold,
                value=value,
                at=now,
            )
            self.breaches.append(breach)
            fresh.append(breach)
            if telemetry is not None and telemetry.enabled:
                telemetry.emit("slo.breach", now, **breach.to_dict())
                telemetry.metrics.counter(
                    "slo_breaches_total", "SLO rule breaches (edge-triggered)."
                ).inc(rule=rule.name)
            if recorder is not None:
                recorder.record("slo", now, "slo.breach", **breach.to_dict())
        return fresh

    def report(self) -> dict[str, Any]:
        """The cell-level verdict: ok flag, breaches, the rule set."""
        return {
            "ok": self.ok,
            "breaches": [breach.to_dict() for breach in self.breaches],
            "rules": [rule.to_dict() for rule in self.rules],
        }


def default_slo_rules(
    *,
    hold_ttl: float = 300.0,
    rpc_deadline: float | None = None,
    backlog_limit: int | None = None,
) -> tuple[SloRule, ...]:
    """A conservative rule set scaled to the gateway's own knobs.

    The latency ceiling budgets for the worst chaos path — a full retry
    ladder on each of the four 2PC legs — so it gates pathology, not
    ordinary chaos-induced slowness.
    """
    deadline = rpc_deadline if rpc_deadline is not None else 60.0
    rules = [
        SloRule("accept-rate-floor", "accept_rate", "floor", 0.02),
        SloRule(
            "admission-p99-ceiling",
            "p99_admission_latency",
            "ceiling",
            max(60.0, 8.0 * deadline),
        ),
        SloRule("hold-age-ceiling", "max_hold_age", "ceiling", 1.5 * hold_ttl),
        SloRule("overcommit-ceiling", "overcommit_proximity", "ceiling", 1.000001),
    ]
    if backlog_limit:
        rules.append(SloRule("backlog-ceiling", "backlog_depth", "ceiling", float(backlog_limit)))
    return tuple(rules)


def load_rules(path: str | Path) -> tuple[SloRule, ...]:
    """Load a rules file: JSON ``{"rules": [...]}`` or a bare list."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if isinstance(raw, dict):
        raw = raw.get("rules")
    if not isinstance(raw, list):
        raise SloRuleError(f"{path}: expected a list of rules or {{'rules': [...]}}")
    return tuple(SloRule.from_dict(item) for item in raw)


def evaluate_artifact(
    artifact: RunTelemetry | Mapping[str, Any], rules: Sequence[SloRule]
) -> dict[str, Any]:
    """Replay the watchdog offline over a run artifact's event stream.

    Feeds every capture's ``gateway.submit`` (admission + latency) and
    ``gateway.batch`` (health samples) events through a fresh watchdog in
    time order, evaluating at each flush — the same cadence the live
    gateway uses — and once more at the end of the capture.
    """
    captures: list[dict[str, Any]] = []
    for entry in iter_captures(artifact):
        watchdog = SloWatchdog(rules)
        last_time: float | None = None
        for event in entry.get("events", []):
            t = float(event["time"])
            name = event["name"]
            fields = event.get("fields", {})
            last_time = t
            if name == "gateway.submit" and "latency" in fields:
                watchdog.admission(
                    t,
                    accepted=fields.get("outcome") == "accepted",
                    latency=float(fields["latency"]),
                )
            elif name == "gateway.batch":
                for metric in ("backlog_depth", "max_hold_age", "overcommit_proximity"):
                    if metric in fields:
                        watchdog.sample(metric, t, float(fields[metric]))
                watchdog.evaluate(t)
        if last_time is not None:
            watchdog.evaluate(last_time)
        captures.append({"label": entry.get("label", ""), **watchdog.report()})
    return {
        "ok": all(capture["ok"] for capture in captures),
        "rules": [rule.to_dict() for rule in rules],
        "captures": captures,
    }
