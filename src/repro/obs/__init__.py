"""Unified observability: metrics, sim-clock spans and decision tracing.

``repro.obs`` is the dependency-free telemetry layer threaded through the
control plane (see docs/OBSERVABILITY.md for the full catalog):

- :class:`MetricsRegistry` — labeled counters / gauges / histograms with
  Prometheus text exposition and canonical JSON export;
- :class:`SpanTracer` — spans keyed to the **simulation clock**, exported
  as Chrome trace-event JSON (``chrome://tracing`` / Perfetto) or JSONL;
- :class:`Telemetry` — the process-wide but test-isolatable handle the
  instrumented code writes through (:func:`get_telemetry`,
  :func:`use_telemetry`); the default :class:`NullTelemetry` makes every
  instrumentation site a single flag check;
- :class:`RunTelemetry` — the self-describing, byte-stable run artifact
  consumed by the ``grid-obs`` CLI (``python -m repro.obs``).

Wall-clock timing never enters this package's data: benchmarks inject a
:class:`~repro.obs.perfclock.PerfClock` (the sole GL001-allowlisted module).
"""

from .artifact import RunTelemetry
from .causal import CausalObserver, TraceContext, child_of, explain_request
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .perfclock import PerfClock, TickClock, WallClock
from .recorder import FlightEntry, FlightRecorder
from .schema import (
    ARTIFACT_SCHEMA,
    CHROME_TRACE_SCHEMA,
    FLIGHT_RECORDER_SCHEMA,
    SchemaError,
    validate,
    validate_artifact,
    validate_chrome_trace,
    validate_flight_dump,
)
from .slo import (
    SLO_METRICS,
    SloBreach,
    SloRule,
    SloWatchdog,
    default_slo_rules,
    evaluate_artifact,
    load_rules,
)
from .summary import ArtifactSummary, summarize
from .telemetry import (
    NullTelemetry,
    Telemetry,
    TelemetryEvent,
    get_telemetry,
    set_telemetry,
    use_telemetry,
)
from .tracer import Span, SpanTracer

__all__ = [
    "ARTIFACT_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "FLIGHT_RECORDER_SCHEMA",
    "SLO_METRICS",
    "ArtifactSummary",
    "CausalObserver",
    "Counter",
    "FlightEntry",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTelemetry",
    "PerfClock",
    "RunTelemetry",
    "SchemaError",
    "SloBreach",
    "SloRule",
    "SloWatchdog",
    "Span",
    "SpanTracer",
    "Telemetry",
    "TelemetryEvent",
    "TickClock",
    "TraceContext",
    "WallClock",
    "child_of",
    "default_slo_rules",
    "evaluate_artifact",
    "explain_request",
    "get_telemetry",
    "set_telemetry",
    "summarize",
    "use_telemetry",
    "validate",
    "validate_artifact",
    "validate_chrome_trace",
    "validate_flight_dump",
]
