"""``grid-obs`` — inspect and convert run-telemetry artifacts.

Examples::

    grid-obs summary results/run.json
    grid-obs summary results/run.json --json
    grid-obs convert results/run.json --to chrome -o trace.json
    grid-obs convert results/run.json --to jsonl -o spans.jsonl
    grid-obs convert results/run.json --to prometheus
    grid-obs validate results/run.json
    grid-obs validate trace.json --kind chrome

Exit codes follow the gridlint convention: ``0`` success, ``1`` the
document failed validation, ``2`` usage error (missing file, bad format).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from ..core.errors import ReproError
from .artifact import RunTelemetry
from .metrics import MetricsRegistry
from .schema import SchemaError, validate_artifact, validate_chrome_trace
from .summary import summarize
from .tracer import SpanTracer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="grid-obs",
        description="Summarise, convert and validate repro run-telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="summarise a run-telemetry artifact")
    summary.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    summary.add_argument("--json", action="store_true", help="emit the summary as JSON")

    convert = sub.add_parser("convert", help="convert an artifact between export formats")
    convert.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    convert.add_argument(
        "--to",
        dest="target",
        choices=("chrome", "jsonl", "prometheus"),
        required=True,
        help="chrome trace-event JSON, span JSONL, or Prometheus text exposition",
    )
    convert.add_argument("-o", "--output", default=None, help="write here instead of stdout")

    validate = sub.add_parser("validate", help="check a document against its JSON schema")
    validate.add_argument("document", help="path to the JSON document")
    validate.add_argument(
        "--kind",
        choices=("artifact", "chrome", "auto"),
        default="auto",
        help="schema to apply (auto sniffs the document)",
    )
    return parser


def _load_json(path: str) -> Any:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _emit(text: str, output: str | None) -> None:
    if output is None:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
    else:
        Path(output).write_text(text if text.endswith("\n") else text + "\n", encoding="utf-8")
        print(f"wrote {output}")


def _cmd_summary(args: argparse.Namespace) -> int:
    artifact = RunTelemetry.load(args.artifact)
    report = summarize(artifact)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    artifact = RunTelemetry.load(args.artifact)
    if args.target == "chrome":
        document = artifact.chrome_trace()
        validate_chrome_trace(document)
        _emit(json.dumps(document, indent=2, sort_keys=True), args.output)
    elif args.target == "jsonl":
        lines = []
        for entry in artifact.captures():
            for span in entry.get("spans", []):
                lines.append(json.dumps(span, sort_keys=True, separators=(",", ":")))
        _emit("\n".join(lines), args.output)
    else:  # prometheus
        chunks = []
        for label in artifact.labels():
            registry: MetricsRegistry = artifact.registry(label)
            text = registry.to_prometheus_text()
            if text:
                chunks.append(f"# capture: {label}\n{text}")
        _emit("\n".join(chunks), args.output)
    return 0


def _sniff_kind(document: Any) -> str:
    if isinstance(document, dict) and document.get("format") == "repro-run-telemetry":
        return "artifact"
    if isinstance(document, dict) and "traceEvents" in document:
        return "chrome"
    return "artifact"


def _cmd_validate(args: argparse.Namespace) -> int:
    document = _load_json(args.document)
    kind = args.kind if args.kind != "auto" else _sniff_kind(document)
    try:
        if kind == "artifact":
            validate_artifact(document)
        else:
            validate_chrome_trace(document)
    except SchemaError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"OK: valid {kind} document")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            return _cmd_summary(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "validate":
            return _cmd_validate(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        # Detach stdout so interpreter shutdown does not re-raise on flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115 - lives until exit
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, ReproError) as exc:
        print(f"error: not a readable telemetry document: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
