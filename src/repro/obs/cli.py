"""``grid-obs`` — inspect and convert run-telemetry artifacts.

Examples::

    grid-obs summary results/run.json
    grid-obs summary results/run.json --json
    grid-obs convert results/run.json --to chrome -o trace.json
    grid-obs convert results/run.json --to jsonl -o spans.jsonl
    grid-obs convert results/run.json --to prometheus
    grid-obs validate results/run.json
    grid-obs validate trace.json --kind chrome
    grid-obs explain 7 results/run.json --journal results/run.journal.jsonl
    grid-obs slo results/run.json --rules slo_rules.json

Exit codes follow the gridlint convention: ``0`` success, ``1`` the
document failed validation (or, for ``explain``, the rid is unknown; for
``slo``, an objective was breached), ``2`` usage error (missing file,
bad format).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from collections.abc import Sequence
from typing import Any

from ..core.errors import ReproError
from .artifact import RunTelemetry
from .causal import explain_request
from .metrics import MetricsRegistry
from .schema import (
    SchemaError,
    validate_artifact,
    validate_chrome_trace,
    validate_flight_dump,
)
from .slo import default_slo_rules, evaluate_artifact, load_rules
from .summary import summarize
from .tracer import SpanTracer

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="grid-obs",
        description="Summarise, convert and validate repro run-telemetry artifacts.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    summary = sub.add_parser("summary", help="summarise a run-telemetry artifact")
    summary.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    summary.add_argument("--json", action="store_true", help="emit the summary as JSON")

    convert = sub.add_parser("convert", help="convert an artifact between export formats")
    convert.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    convert.add_argument(
        "--to",
        dest="target",
        choices=("chrome", "jsonl", "prometheus"),
        required=True,
        help="chrome trace-event JSON, span JSONL, or Prometheus text exposition",
    )
    convert.add_argument("-o", "--output", default=None, help="write here instead of stdout")

    validate = sub.add_parser("validate", help="check a document against its JSON schema")
    validate.add_argument("document", help="path to the JSON document")
    validate.add_argument(
        "--kind",
        choices=("artifact", "chrome", "flight", "auto"),
        default="auto",
        help="schema to apply (auto sniffs the document)",
    )

    explain = sub.add_parser(
        "explain", help="reconstruct one request's causal timeline"
    )
    explain.add_argument("rid", type=int, help="the request id to explain")
    explain.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    explain.add_argument(
        "--journal",
        default=None,
        help="gateway journal (JSONL) to interleave into the timeline",
    )

    slo = sub.add_parser(
        "slo", help="evaluate an artifact against service-level objectives"
    )
    slo.add_argument("artifact", help="path to a run-telemetry JSON artifact")
    slo.add_argument(
        "--rules",
        default=None,
        help="JSON rules file (defaults to the built-in gateway objectives)",
    )
    slo.add_argument("--json", action="store_true", help="emit the verdict as JSON")
    return parser


def _load_json(path: str) -> Any:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def _emit(text: str, output: str | None) -> None:
    if output is None:
        sys.stdout.write(text if text.endswith("\n") else text + "\n")
    else:
        Path(output).write_text(text if text.endswith("\n") else text + "\n", encoding="utf-8")
        print(f"wrote {output}")


def _cmd_summary(args: argparse.Namespace) -> int:
    artifact = RunTelemetry.load(args.artifact)
    report = summarize(artifact)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    artifact = RunTelemetry.load(args.artifact)
    if args.target == "chrome":
        document = artifact.chrome_trace()
        validate_chrome_trace(document)
        _emit(json.dumps(document, indent=2, sort_keys=True), args.output)
    elif args.target == "jsonl":
        lines = []
        for entry in artifact.captures():
            for span in entry.get("spans", []):
                lines.append(json.dumps(span, sort_keys=True, separators=(",", ":")))
        _emit("\n".join(lines), args.output)
    else:  # prometheus
        chunks = []
        for label in artifact.labels():
            registry: MetricsRegistry = artifact.registry(label)
            text = registry.to_prometheus_text()
            if text:
                chunks.append(f"# capture: {label}\n{text}")
        _emit("\n".join(chunks), args.output)
    return 0


def _sniff_kind(document: Any) -> str:
    if isinstance(document, dict) and document.get("format") == "repro-run-telemetry":
        return "artifact"
    if isinstance(document, dict) and document.get("format") == "repro-flight-recorder":
        return "flight"
    if isinstance(document, dict) and "traceEvents" in document:
        return "chrome"
    return "artifact"


def _cmd_validate(args: argparse.Namespace) -> int:
    document = _load_json(args.document)
    kind = args.kind if args.kind != "auto" else _sniff_kind(document)
    try:
        if kind == "artifact":
            validate_artifact(document)
        elif kind == "flight":
            validate_flight_dump(document)
        else:
            validate_chrome_trace(document)
    except SchemaError as exc:
        print(f"FAIL: {exc}")
        return 1
    print(f"OK: valid {kind} document")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    artifact = _load_json(args.artifact)
    validate_artifact(artifact)
    journal = None
    if args.journal is not None:
        from ..control.journal import Journal  # local: obs must stay core-only

        journal = Journal.load(args.journal)
    story = explain_request(artifact, args.rid, journal=journal)
    if story is None:
        print(f"no record of rid {args.rid} in {args.artifact}", file=sys.stderr)
        return 1
    print(story)
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    artifact = _load_json(args.artifact)
    validate_artifact(artifact)
    rules = load_rules(args.rules) if args.rules is not None else default_slo_rules()
    verdict = evaluate_artifact(artifact, rules)
    if args.json:
        print(json.dumps(verdict, indent=2, sort_keys=True))
    else:
        for capture in verdict["captures"]:
            status = "ok" if capture["ok"] else "BREACH"
            print(f"{capture['label'] or '<unlabeled>'}: {status}")
            for breach in capture["breaches"]:
                print(
                    f"  {breach['rule']}: {breach['metric']} {breach['bound']} "
                    f"{breach['threshold']:g} but saw {breach['value']:g} "
                    f"at t={breach['at']:g}"
                )
        print(f"slo: {'ok' if verdict['ok'] else 'BREACH'}")
    return 0 if verdict["ok"] else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "summary":
            return _cmd_summary(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "slo":
            return _cmd_slo(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; not an error.
        # Detach stdout so interpreter shutdown does not re-raise on flush.
        sys.stdout = open(os.devnull, "w")  # noqa: SIM115 - lives until exit
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (json.JSONDecodeError, KeyError, ReproError) as exc:
        print(f"error: not a readable telemetry document: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
