"""The process-wide — but test-isolatable — telemetry handle.

A :class:`Telemetry` bundles the three capture surfaces:

- :attr:`Telemetry.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`;
- :attr:`Telemetry.tracer` — a :class:`~repro.obs.tracer.SpanTracer`
  keyed to the simulation clock;
- :meth:`Telemetry.emit` — structured decision events
  (:class:`TelemetryEvent`), e.g. one per admission decision.

Instrumented code never pays for disabled telemetry: every site guards on
the :attr:`Telemetry.enabled` flag, and the default process-wide handle is
a :class:`NullTelemetry` whose flag is ``False`` — uninstrumented runs do
one attribute read and a branch per hot-path call, nothing else (see
``benchmarks/bench_obs_overhead.py`` for the enforced bound).

Isolation: the process-wide handle is swapped with :func:`set_telemetry`
or, in tests, the :func:`use_telemetry` context manager, which restores
the previous handle on exit no matter what.  Objects that should not
depend on ambient state (e.g. a :class:`~repro.control.service.ReservationService`
under test) accept an explicit handle instead.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import Any

from ..core.errors import ConfigurationError
from .metrics import MetricsRegistry
from .tracer import SpanTracer

__all__ = [
    "NullTelemetry",
    "Telemetry",
    "TelemetryEvent",
    "get_telemetry",
    "set_telemetry",
    "use_telemetry",
]


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured event: when (simulated time), what, and the details."""

    time: float
    name: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form."""
        return {"time": self.time, "name": self.name, "fields": dict(self.fields)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> TelemetryEvent:
        """Inverse of :meth:`to_dict`."""
        return cls(
            time=float(data["time"]),
            name=str(data["name"]),
            fields=dict(data.get("fields", {})),
        )


class Telemetry:
    """One capture context: metrics + spans + structured events.

    Parameters
    ----------
    max_events:
        FIFO bound on retained events (evictions are counted in
        :attr:`events_dropped`); ``None`` keeps everything.
    max_spans:
        Capacity bound forwarded to the :class:`SpanTracer`.
    """

    enabled: bool = True

    def __init__(
        self,
        *,
        max_events: int | None = None,
        max_spans: int | None = None,
    ) -> None:
        if max_events is not None and max_events <= 0:
            raise ConfigurationError(f"max_events must be positive, got {max_events}")
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer(capacity=max_spans)
        self.events: list[TelemetryEvent] = []
        self._max_events = max_events
        self._events_dropped = 0

    def emit(self, name: str, t: float, **fields: Any) -> None:
        """Record a structured event at simulated time ``t``."""
        if not self.enabled:
            return
        self.events.append(TelemetryEvent(time=t, name=name, fields=fields))
        if self._max_events is not None and len(self.events) > self._max_events:
            overflow = len(self.events) - self._max_events
            del self.events[:overflow]
            self._events_dropped += overflow

    @property
    def events_dropped(self) -> int:
        """Events evicted by the ``max_events`` bound."""
        return self._events_dropped

    def is_empty(self) -> bool:
        """True when nothing has been recorded through this handle."""
        return not self.events and not len(self.tracer) and not len(self.metrics)

    def snapshot(self) -> dict[str, Any]:
        """Canonical JSON-able digest of everything captured so far."""
        return {
            "metrics": self.metrics.to_dict(),
            "spans": self.tracer.to_dicts(),
            "events": [event.to_dict() for event in self.events],
            "dropped": {
                "events": self._events_dropped,
                "spans": self.tracer.dropped,
            },
        }


class NullTelemetry(Telemetry):
    """The no-op handle: :attr:`enabled` is False, every surface stays inert.

    Instrumentation guards on ``enabled`` before touching metrics or the
    tracer, so a null handle makes the whole layer cost one attribute read
    per instrumented call.
    """

    enabled = False

    def emit(self, name: str, t: float, **fields: Any) -> None:
        """Discard the event."""


#: The process-wide handle; swapped via :func:`set_telemetry`.
_CURRENT: Telemetry = NullTelemetry()


def get_telemetry() -> Telemetry:
    """The current process-wide telemetry handle (a no-op one by default)."""
    return _CURRENT


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` process-wide; returns the previous handle."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    return previous


@contextmanager
def use_telemetry(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` for the duration of a ``with`` block.

    The previous handle is restored on exit (exceptions included), so
    tests never leak instrumentation into each other.
    """
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
