"""Injectable wall-clock for benchmark timing — the one GL001 exemption.

Everything in :mod:`repro.obs` is keyed to the *simulation* clock; replay
determinism (GL001) forbids ambient host-clock reads in library code.
Real-time profiling is still legitimate in benchmarks, so this module is
the single, allowlisted place a host clock may be read — callers inject a
:class:`PerfClock` and production code defaults to the deterministic
:class:`TickClock`.

- :class:`WallClock` reads ``time.perf_counter()``; instantiate it **only**
  from benchmark / reporting code.
- :class:`TickClock` advances by a fixed step per read — deterministic,
  replay-safe, and good enough for tests that need "a monotonic clock".

The gridlint GL001 allowlist covers exactly ``obs/perfclock.py`` (scoped,
with a rule-fixture test); a wall-clock read anywhere else in ``src``
still fails the build.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["PerfClock", "TickClock", "WallClock"]


class PerfClock(Protocol):
    """A monotonic clock read in fractional seconds."""

    def now(self) -> float:
        """The current reading, in seconds (origin is clock-specific)."""
        ...  # pragma: no cover - protocol


class WallClock:
    """The host's high-resolution monotonic clock (benchmarks only)."""

    def now(self) -> float:
        """``time.perf_counter()`` in seconds."""
        return time.perf_counter()


class TickClock:
    """A deterministic clock advancing ``step`` seconds per read."""

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        self._step = step
        self._now = start

    def now(self) -> float:
        """The next reading: previous value plus ``step``."""
        self._now += self._step
        return self._now
