"""Bounded flight recorder: the last N events per component, post-mortem.

A :class:`FlightRecorder` keeps a small ring buffer of recent events per
component (``gateway``, ``rpc.shard2``, ``slo``, ...) so that when an
invariant audit fails — or a drill wants a dump on demand — the tail of
what each component was doing is still available, no matter how long the
run was.  Unlike the :class:`~repro.obs.telemetry.Telemetry` handle, the
recorder is *always on* when attached: it records even under
``NullTelemetry``, because the dump is for post-mortems, not metrics.

Dumps are deterministic (sorted components, sorted-keys JSON, simulated
time only) and schema-validated against
:data:`~repro.obs.schema.FLIGHT_RECORDER_SCHEMA`, so two identical
seeded runs produce byte-identical artifacts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from .schema import validate_flight_dump

__all__ = ["FlightEntry", "FlightRecorder"]

#: Default per-component ring size — enough tail to diagnose a 2PC round
#: without letting long chaos runs grow the recorder unboundedly.
DEFAULT_CAPACITY = 256


@dataclass(frozen=True, slots=True)
class FlightEntry:
    """One recorded event: simulated time, a kind tag and flat fields."""

    t: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"t": self.t, "kind": self.kind, "fields": dict(self.fields)}


class FlightRecorder:
    """Per-component bounded ring buffers with exact drop accounting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"flight-recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: dict[str, list[FlightEntry]] = {}
        self._dropped: dict[str, int] = {}

    def record(self, component: str, t: float, kind: str, **fields: Any) -> None:
        """Record one event; the oldest entry falls off a full ring."""
        ring = self._events.setdefault(component, [])
        ring.append(FlightEntry(t, kind, fields))
        if len(ring) > self.capacity:
            del ring[0]
            self._dropped[component] = self._dropped.get(component, 0) + 1

    def components(self) -> list[str]:
        """Components with at least one recorded event, sorted."""
        return sorted(self._events)

    def entries(self, component: str) -> list[FlightEntry]:
        """The retained tail for ``component``, oldest first."""
        return list(self._events.get(component, ()))

    def dropped(self, component: str) -> int:
        """How many events fell off ``component``'s ring."""
        return self._dropped.get(component, 0)

    def dump(self, *, reason: str, now: float) -> dict[str, Any]:
        """A schema-valid post-mortem document of every component's tail."""
        document = {
            "format": "repro-flight-recorder",
            "version": 1,
            "reason": reason,
            "now": now,
            "capacity": self.capacity,
            "components": [
                {
                    "component": component,
                    "dropped": self.dropped(component),
                    "events": [entry.to_dict() for entry in self._events[component]],
                }
                for component in self.components()
            ],
        }
        validate_flight_dump(document)
        return document

    def dump_json(self, *, reason: str, now: float) -> str:
        """The dump as byte-stable JSON (sorted keys, trailing newline)."""
        return json.dumps(self.dump(reason=reason, now=now), indent=2, sort_keys=True) + "\n"

    def save_dump(self, path: str | Path, *, reason: str, now: float) -> Path:
        """Write the dump to ``path`` and return it."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.dump_json(reason=reason, now=now), encoding="utf-8")
        return target
