"""Summaries of run-telemetry artifacts (the ``grid-obs summary`` backend).

Aggregates every capture of a :class:`~repro.obs.artifact.RunTelemetry`
into the questions an operator actually asks after a run:

- how many submissions were accepted / rejected, and the top reject
  reasons (from the ``service_rejects_total`` counter);
- per-port peak committed utilisation (from the
  ``service_port_peak_utilization`` gauge);
- where simulated time went — a flamegraph-style table aggregating spans
  by name (count, total, mean, max duration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from .artifact import RunTelemetry
from .metrics import Counter, Gauge, MetricsRegistry

__all__ = ["ArtifactSummary", "SpanRow", "summarize"]

#: Metric names the service instrumentation publishes (see docs/OBSERVABILITY.md).
SUBMITS_TOTAL = "service_submits_total"
REJECTS_TOTAL = "service_rejects_total"
PORT_PEAK_UTILIZATION = "service_port_peak_utilization"
#: ... and their sharded-gateway twins, so one summary covers both planes:
#: ``shard-unreachable`` rejections (message-level faults) land here.
GATEWAY_SUBMITS_TOTAL = "gateway_submits_total"
GATEWAY_REJECTS_TOTAL = "gateway_rejects_total"
#: Backlog re-admissions, tallied across both control planes.
READMISSIONS_TOTALS = ("service_readmissions_total", "gateway_readmissions_total")


@dataclass(frozen=True, slots=True)
class SpanRow:
    """One aggregated span name in the flamegraph table."""

    name: str
    count: int
    total: float
    mean: float
    max: float


@dataclass
class ArtifactSummary:
    """Everything ``grid-obs summary`` prints, as data."""

    name: str
    captures: int
    accepted: int
    rejected: int
    reject_reasons: dict[str, int] = field(default_factory=dict)
    #: Backlogged rejections later re-admitted (service + gateway planes).
    readmissions: int = 0
    #: ``(side, port) -> peak utilisation`` (committed bandwidth / capacity).
    port_peaks: dict[tuple[str, int], float] = field(default_factory=dict)
    span_table: list[SpanRow] = field(default_factory=list)
    events: int = 0
    counters: dict[str, float] = field(default_factory=dict)

    @property
    def accept_rate(self) -> float:
        """Accepted over decided submissions (0 when nothing was decided)."""
        decided = self.accepted + self.rejected
        return self.accepted / decided if decided else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (``grid-obs summary --json``)."""
        return {
            "name": self.name,
            "captures": self.captures,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "accept_rate": self.accept_rate,
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "readmissions": self.readmissions,
            "port_peaks": {
                f"{side}:{port}": peak for (side, port), peak in sorted(self.port_peaks.items())
            },
            "spans": [
                {
                    "name": row.name,
                    "count": row.count,
                    "total": row.total,
                    "mean": row.mean,
                    "max": row.max,
                }
                for row in self.span_table
            ],
            "events": self.events,
            "counters": dict(sorted(self.counters.items())),
        }

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"run: {self.name}  ({self.captures} capture(s), {self.events} event(s))"]
        decided = self.accepted + self.rejected
        if decided:
            lines.append(
                f"admission: {self.accepted} accepted / {self.rejected} rejected "
                f"(accept rate {self.accept_rate:.2%})"
            )
        if self.reject_reasons:
            lines.append("top reject reasons:")
            ranked = sorted(self.reject_reasons.items(), key=lambda kv: (-kv[1], kv[0]))
            for reason, count in ranked:
                lines.append(f"  {reason:28s} {count}")
        if self.readmissions:
            lines.append(f"backlog re-admissions: {self.readmissions}")
        if self.port_peaks:
            lines.append("per-port peak utilisation:")
            for (side, port), peak in sorted(self.port_peaks.items()):
                bar = "#" * int(round(min(1.0, peak) * 20))
                lines.append(f"  {side:8s}[{port:3d}] {peak:7.2%} {bar}")
        if self.span_table:
            lines.append("spans (by simulated time):")
            lines.append(f"  {'name':32s} {'count':>7s} {'total_s':>12s} {'mean_s':>10s} {'max_s':>10s}")
            for row in self.span_table:
                lines.append(
                    f"  {row.name:32s} {row.count:7d} {row.total:12.1f} "
                    f"{row.mean:10.2f} {row.max:10.2f}"
                )
        if len(lines) == 1:
            lines.append("(artifact carries no admission telemetry)")
        return "\n".join(lines)


def _iter_registries(artifact: RunTelemetry) -> list[MetricsRegistry]:
    return [MetricsRegistry.from_dict(entry["metrics"]) for entry in artifact.captures()]


def summarize(artifact: RunTelemetry) -> ArtifactSummary:
    """Aggregate an artifact's captures into an :class:`ArtifactSummary`."""
    accepted = 0
    rejected = 0
    reject_reasons: dict[str, int] = {}
    readmissions = 0
    port_peaks: dict[tuple[str, int], float] = {}
    counters: dict[str, float] = {}
    events = 0

    for registry in _iter_registries(artifact):
        for metric in (SUBMITS_TOTAL, GATEWAY_SUBMITS_TOTAL):
            submits = registry.get(metric)
            if isinstance(submits, Counter):
                for labels, value in submits.samples():
                    if labels.get("outcome") == "accepted":
                        accepted += int(value)
                    elif labels.get("outcome") == "rejected":
                        rejected += int(value)
        for metric in (REJECTS_TOTAL, GATEWAY_REJECTS_TOTAL):
            rejects = registry.get(metric)
            if isinstance(rejects, Counter):
                for labels, value in rejects.samples():
                    reason = labels.get("reason", "unspecified")
                    reject_reasons[reason] = reject_reasons.get(reason, 0) + int(value)
        for metric in READMISSIONS_TOTALS:
            readmits = registry.get(metric)
            if isinstance(readmits, Counter):
                readmissions += int(readmits.total())
        peaks = registry.get(PORT_PEAK_UTILIZATION)
        if isinstance(peaks, Gauge):
            for labels, value in peaks.samples():
                key = (labels.get("side", "?"), int(labels.get("port", -1)))
                port_peaks[key] = max(port_peaks.get(key, 0.0), value)
        for name in registry.names():
            instrument = registry.get(name)
            if isinstance(instrument, Counter) and not isinstance(instrument, Gauge):
                counters[name] = counters.get(name, 0.0) + instrument.total()

    # Flamegraph-style aggregation over every capture's spans.
    stats: dict[str, list[float]] = {}
    for entry in artifact.captures():
        events += len(entry.get("events", []))
        for span in entry.get("spans", []):
            end = span.get("end")
            duration = 0.0 if end is None else float(end) - float(span["start"])
            stats.setdefault(str(span["name"]), []).append(duration)
    table = [
        SpanRow(
            name=name,
            count=len(durations),
            total=sum(durations),
            mean=sum(durations) / len(durations),
            max=max(durations),
        )
        for name, durations in stats.items()
    ]
    table.sort(key=lambda row: (-row.total, row.name))

    return ArtifactSummary(
        name=artifact.name,
        captures=len(artifact),
        accepted=accepted,
        rejected=rejected,
        reject_reasons=reject_reasons,
        readmissions=readmissions,
        port_peaks=port_peaks,
        span_table=table,
        events=events,
        counters=counters,
    )
