"""A minimal JSON-schema validator for the telemetry export formats.

Dependency-free subset of JSON Schema: ``type`` (with the usual scalar
and container names), ``required``, ``properties``, ``items``, ``enum``
and nullability via a list of types.  That is enough to pin down the two
documents the observability layer exchanges with the outside world:

- :data:`CHROME_TRACE_SCHEMA` — the Chrome trace-event document produced
  by :meth:`repro.obs.tracer.SpanTracer.to_chrome_trace`;
- :data:`ARTIFACT_SCHEMA` — the :class:`~repro.obs.artifact.RunTelemetry`
  run artifact;
- :data:`FLIGHT_RECORDER_SCHEMA` — the post-mortem dump produced by
  :meth:`repro.obs.recorder.FlightRecorder.dump`.

The validators return a list of human-readable errors (empty = valid);
the ``validate_*`` wrappers raise :class:`SchemaError` instead, so tests
and the CLI can gate on them.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..core.errors import ReproError

__all__ = [
    "ARTIFACT_SCHEMA",
    "CHROME_TRACE_SCHEMA",
    "FLIGHT_RECORDER_SCHEMA",
    "SchemaError",
    "validate",
    "validate_artifact",
    "validate_chrome_trace",
    "validate_flight_dump",
]


class SchemaError(ReproError, ValueError):
    """A document does not conform to its schema."""


_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, Mapping),
    "array": lambda v: isinstance(v, (list, tuple)),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance: Any, schema: Mapping[str, Any], path: str = "$") -> list[str]:
    """Validate ``instance`` against ``schema``; returns error strings."""
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, (list, tuple)) else (expected,)
        unknown = [t for t in types if t not in _TYPE_CHECKS]
        if unknown:
            raise SchemaError(f"schema error at {path}: unknown type(s) {unknown}")
        if not any(_TYPE_CHECKS[t](instance) for t in types):
            errors.append(f"{path}: expected {' or '.join(types)}, got {type(instance).__name__}")
            return errors  # structure is wrong; deeper checks would mislead

    enum = schema.get("enum")
    if enum is not None and instance not in enum:
        errors.append(f"{path}: {instance!r} not one of {list(enum)}")

    if isinstance(instance, Mapping):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))

    if isinstance(instance, (list, tuple)):
        items = schema.get("items")
        if items is not None:
            for k, element in enumerate(instance):
                errors.extend(validate(element, items, f"{path}[{k}]"))

    return errors


#: One Chrome trace event as emitted by ``SpanTracer.to_chrome_trace``.
_TRACE_EVENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "ph", "ts", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "ph": {"type": "string", "enum": ["X", "i", "B", "E"]},
        "ts": {"type": "number"},
        "dur": {"type": "number"},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "cat": {"type": "string"},
        "s": {"type": "string", "enum": ["t", "p", "g"]},
        "args": {"type": "object"},
    },
}

CHROME_TRACE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {"type": "array", "items": _TRACE_EVENT_SCHEMA},
        "displayTimeUnit": {"type": "string", "enum": ["ms", "ns"]},
    },
}

_METRIC_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "type", "samples"],
    "properties": {
        "name": {"type": "string"},
        "type": {"type": "string", "enum": ["counter", "gauge", "histogram"]},
        "help": {"type": "string"},
        "buckets": {"type": "array", "items": {"type": "number"}},
        "samples": {"type": "array", "items": {"type": "object"}},
    },
}

_SPAN_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["name", "start", "kind"],
    "properties": {
        "name": {"type": "string"},
        "start": {"type": "number"},
        "end": {"type": ["number", "null"]},
        "cat": {"type": "string"},
        "tid": {"type": "integer"},
        "args": {"type": "object"},
        "kind": {"type": "string", "enum": ["span", "instant"]},
    },
}

_EVENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["time", "name"],
    "properties": {
        "time": {"type": "number"},
        "name": {"type": "string"},
        "fields": {"type": "object"},
    },
}

_CAPTURE_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["label", "metrics", "spans", "events"],
    "properties": {
        "label": {"type": "string"},
        "metrics": {
            "type": "object",
            "required": ["metrics"],
            "properties": {"metrics": {"type": "array", "items": _METRIC_SCHEMA}},
        },
        "spans": {"type": "array", "items": _SPAN_SCHEMA},
        "events": {"type": "array", "items": _EVENT_SCHEMA},
        "dropped": {"type": "object"},
        "results": {"type": "object"},
    },
}

ARTIFACT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["format", "version", "name", "captures"],
    "properties": {
        "format": {"type": "string", "enum": ["repro-run-telemetry"]},
        "version": {"type": "integer"},
        "name": {"type": "string"},
        "meta": {"type": "object"},
        "captures": {"type": "array", "items": _CAPTURE_SCHEMA},
    },
}


_FLIGHT_EVENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["t", "kind"],
    "properties": {
        "t": {"type": "number"},
        "kind": {"type": "string"},
        "fields": {"type": "object"},
    },
}

_FLIGHT_COMPONENT_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["component", "dropped", "events"],
    "properties": {
        "component": {"type": "string"},
        "dropped": {"type": "integer"},
        "events": {"type": "array", "items": _FLIGHT_EVENT_SCHEMA},
    },
}

FLIGHT_RECORDER_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["format", "version", "reason", "now", "components"],
    "properties": {
        "format": {"type": "string", "enum": ["repro-flight-recorder"]},
        "version": {"type": "integer"},
        "reason": {"type": "string"},
        "now": {"type": "number"},
        "capacity": {"type": "integer"},
        "components": {"type": "array", "items": _FLIGHT_COMPONENT_SCHEMA},
    },
}


def _raise_on_errors(errors: list[str], what: str) -> None:
    if errors:
        head = "; ".join(errors[:5])
        more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
        raise SchemaError(f"invalid {what}: {head}{more}")


def validate_chrome_trace(document: Any) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid Chrome trace."""
    _raise_on_errors(validate(document, CHROME_TRACE_SCHEMA), "chrome trace")


def validate_artifact(document: Any) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid run artifact."""
    _raise_on_errors(validate(document, ARTIFACT_SCHEMA), "run-telemetry artifact")


def validate_flight_dump(document: Any) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a flight-recorder dump."""
    _raise_on_errors(validate(document, FLIGHT_RECORDER_SCHEMA), "flight-recorder dump")
