"""Causal request tracing: who caused what, across shards and faults.

A :class:`TraceContext` names one request's position in the admission
pipeline — ``trace_id`` for the whole request story, ``span_id`` for the
current hop, ``parent_id`` for the hop that caused it.  Contexts are
**derived, never drawn**: the root id is a pure function of the rid and
every child id is the parent's id plus a path segment, so two identical
seeded runs produce byte-identical causal records (no counters, no RNG,
no wall clock).

The gateway mints a root context per submission and threads children
through the whole pipeline::

    req-7                      submit / batch / decision
    req-7/prepare:ingress      2PC phase one on the ingress shard
    req-7/commit:egress        2PC phase two on the egress shard
    req-7/readmit:12           backlog re-admission (fresh rid 12)

Every :class:`~repro.gateway.rpc.Channel` delivery carries the context as
an explicit argument, and a :class:`CausalObserver` turns deliveries and
chaos faults (drops, duplicates, delays, partitions, crashes) into
tracer instants and flight-recorder rows — so a request's timeline shows
exactly which delivery was lost, on which edge, at which simulated time.

:func:`explain_request` is the read side: it reconstructs one request's
full causal story from a :class:`~repro.obs.artifact.RunTelemetry`
artifact (plus, optionally, the gateway journal) — the backend of
``grid-obs explain <rid>``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from .artifact import RunTelemetry
    from .recorder import FlightRecorder
    from .telemetry import Telemetry

__all__ = ["CausalObserver", "TraceContext", "child_of", "explain_request"]


@dataclass(frozen=True, slots=True)
class TraceContext:
    """One request's position in the causal tree (immutable, derived)."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def root(cls, rid: int) -> TraceContext:
        """The root context of request ``rid`` — a pure function of the rid."""
        marker = f"req-{rid}"
        return cls(trace_id=marker, span_id=marker)

    def child(self, segment: str) -> TraceContext:
        """A child hop named by appending ``segment`` to the span path."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=f"{self.span_id}/{segment}",
            parent_id=self.span_id,
        )

    def fields(self) -> dict[str, Any]:
        """The explicit-propagation form carried on events and spans."""
        out: dict[str, Any] = {"trace": self.trace_id, "span": self.span_id}
        if self.parent_id is not None:
            out["parent"] = self.parent_id
        return out


def child_of(ctx: TraceContext | None, segment: str) -> TraceContext | None:
    """``ctx.child(segment)``, propagating ``None`` (tracing disabled)."""
    return None if ctx is None else ctx.child(segment)


class CausalObserver:
    """Turns channel deliveries and chaos faults into causal records.

    One observer serves a whole gateway: the coordinator hands it to every
    :class:`~repro.gateway.rpc.Channel`, which reports each delivery (and
    each injected fault) together with the :class:`TraceContext` the call
    carried.  Records go to the telemetry tracer (``cat="rpc"`` /
    ``cat="chaos"`` instants) and, when attached, the
    :class:`~repro.obs.recorder.FlightRecorder` — both keyed to simulated
    time, both deterministic.

    The telemetry handle is *provided*, not captured: the gateway may swap
    or scope its handle per run, so the observer re-reads it per record.
    A call with ``ctx=None`` (tracing disabled) is a no-op.
    """

    def __init__(
        self,
        telemetry: Callable[[], Telemetry],
        *,
        recorder: FlightRecorder | None = None,
    ) -> None:
        self._telemetry = telemetry
        self.recorder = recorder

    def delivery(
        self,
        op: str,
        *,
        shard: int,
        now: float,
        ctx: TraceContext | None,
        **detail: Any,
    ) -> None:
        """One protocol call reached the broker (possibly after faults)."""
        if ctx is None:
            return
        self._note(f"rpc.{op}", "rpc", shard, now, ctx, detail)

    def fault(
        self,
        kind: str,
        op: str,
        *,
        shard: int,
        now: float,
        ctx: TraceContext | None,
        **detail: Any,
    ) -> None:
        """A chaos fault struck the delivery (drop / duplicate / delay /
        partition / crash) — annotated as a span event on the request's
        timeline so the lost hop is visible."""
        if ctx is None:
            return
        detail = {"op": op, **detail}
        self._note(f"chaos.{kind}", "chaos", shard, now, ctx, detail)

    def _note(
        self,
        name: str,
        cat: str,
        shard: int,
        now: float,
        ctx: TraceContext,
        detail: Mapping[str, Any],
    ) -> None:
        fields = {**ctx.fields(), "shard": shard, **detail}
        tel = self._telemetry()
        if tel.enabled:
            tel.tracer.instant(name, now, cat=cat, tid=shard, **fields)
        if self.recorder is not None:
            self.recorder.record(f"rpc.shard{shard}", now, name, **fields)


# ----------------------------------------------------------------------
# The read side: reconstruct one request's causal story
# ----------------------------------------------------------------------

def iter_captures(artifact: Any) -> Iterable[Mapping[str, Any]]:
    """Capture entries of a :class:`RunTelemetry` *or* its JSON-dict form."""
    if hasattr(artifact, "captures"):
        return artifact.captures()
    return artifact.get("captures", [])


def _trace_of(fields: Mapping[str, Any]) -> str | None:
    trace = fields.get("trace")
    return trace if isinstance(trace, str) else None


def _mentions(fields: Mapping[str, Any], rid: int) -> bool:
    return fields.get("rid") == rid or fields.get("origin") == rid


def _render_fields(fields: Mapping[str, Any]) -> str:
    parts = []
    for key in sorted(fields):
        value = fields[key]
        parts.append(f"{key}={json.dumps(value, sort_keys=True, default=str)}")
    return " ".join(parts)


def explain_request(
    artifact: RunTelemetry | Mapping[str, Any],
    rid: int,
    *,
    journal: Iterable[Any] | None = None,
) -> str | None:
    """Reconstruct request ``rid``'s full causal timeline from ``artifact``.

    Two passes: first collect every trace id that mentions the rid (the
    root ``req-<rid>`` plus any trace a re-admission or rebooking linked
    it into via ``origin``), then gather every journal op, event and span
    belonging to those traces and merge them into one time-ordered,
    deterministic text timeline.  ``journal`` may be a
    :class:`~repro.control.journal.Journal` (or any iterable of entries
    with ``op`` / ``now`` / ``args``).  Returns ``None`` when the
    artifact carries no record of the rid at all.
    """
    marker = f"req-{rid}"
    traces: set[str] = {marker}
    for entry in iter_captures(artifact):
        for event in entry.get("events", []):
            fields = event.get("fields", {})
            if _mentions(fields, rid):
                trace = _trace_of(fields)
                if trace is not None:
                    traces.add(trace)
        for span in entry.get("spans", []):
            args = span.get("args", {})
            if _mentions(args, rid):
                trace = _trace_of(args)
                if trace is not None:
                    traces.add(trace)

    # (time, insertion order) keys keep the merge stable and byte-identical
    # across runs: journal rows sort before events before spans at one
    # instant, and within each source record order is preserved.
    rows: list[tuple[float, int, str]] = []
    order = 0
    matched = 0

    if journal is not None:
        for entry in journal:
            args = dict(getattr(entry, "args", {}) or {})
            if not _mentions(args, rid):
                continue
            rows.append(
                (
                    float(entry.now),
                    order,
                    f"journal    {entry.op:<22} {_render_fields(args)}",
                )
            )
            order += 1
            matched += 1

    for entry in iter_captures(artifact):
        label = str(entry.get("label", ""))
        for event in entry.get("events", []):
            fields = dict(event.get("fields", {}))
            if _trace_of(fields) not in traces and not _mentions(fields, rid):
                continue
            rows.append(
                (
                    float(event["time"]),
                    order,
                    f"event      {str(event['name']):<22} "
                    f"[{label}] {_render_fields(fields)}",
                )
            )
            order += 1
            matched += 1
        for span in entry.get("spans", []):
            args = dict(span.get("args", {}))
            if _trace_of(args) not in traces and not _mentions(args, rid):
                continue
            kind = str(span.get("kind", "span"))
            name = str(span["name"])
            cat = str(span.get("cat", ""))
            source = {"chaos": "chaos", "rpc": "rpc"}.get(cat, kind)
            rows.append(
                (
                    float(span["start"]),
                    order,
                    f"{source:<10} {name:<22} [{label}] {_render_fields(args)}",
                )
            )
            order += 1
            matched += 1

    if matched == 0:
        return None
    rows.sort(key=lambda row: (row[0], row[1]))
    lines = [
        f"causal timeline for rid {rid} (trace {marker}; "
        f"{matched} record(s), {len(traces)} trace(s))"
    ]
    for t, _, text in rows:
        lines.append(f"t={t:<12.6g} {text}")
    return "\n".join(lines)
