"""Labeled metrics: counters, gauges and histograms with text exposition.

A :class:`MetricsRegistry` is a process-local collection of named
instruments.  Everything is dependency-free and deterministic: no clocks,
no threads, no global state — a registry belongs to exactly one
:class:`~repro.obs.telemetry.Telemetry` handle, values are plain floats,
and both export formats (Prometheus text exposition and a canonical JSON
dict) order metrics and label sets lexicographically so two identical runs
serialise byte-identically.

Label values are stringified on entry; a label *set* is the sorted tuple
of ``(key, value)`` pairs, so ``inc(port=3, side="ingress")`` and
``inc(side="ingress", port=3)`` address the same sample.
"""

from __future__ import annotations

import json
import math
from collections.abc import Iterator, Mapping, Sequence
from typing import Any

from ..core.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (an implicit +inf bucket follows).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0,
    100.0, 500.0, 1000.0, 5000.0,
)

#: ``(key, value)`` pairs identifying one sample of a labeled metric.
LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey) -> str:
    if not key:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + body + "}"


def _fmt(value: float) -> str:
    """Render a float the way the exposition format expects (no trailing .0 noise)."""
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing, labeled counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._samples: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Add ``amount`` (default 1) to the sample addressed by ``labels``."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease (amount={amount})")
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        """Current value of one label set (0 when never incremented)."""
        return self._samples.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._samples.values())

    def samples(self) -> Iterator[tuple[dict[str, str], float]]:
        """``(labels, value)`` pairs in label order."""
        for key in sorted(self._samples):
            yield dict(key), self._samples[key]

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "samples": [
                {"labels": dict(key), "value": self._samples[key]}
                for key in sorted(self._samples)
            ],
        }

    def expose(self) -> list[str]:
        """Prometheus text exposition lines for this metric."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._samples):
            lines.append(f"{self.name}{_render_labels(key)} {_fmt(self._samples[key])}")
        return lines


class Gauge(Counter):
    """A labeled gauge: settable to arbitrary values, with a max-tracking helper."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        """Gauges move freely: negative deltas are fine."""
        key = _label_key(labels)
        self._samples[key] = self._samples.get(key, 0.0) + amount

    def set(self, value: float, **labels: Any) -> None:
        """Set the sample addressed by ``labels`` to ``value``."""
        self._samples[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels: Any) -> None:
        """Raise the sample to ``value`` when that is larger (peak tracking)."""
        key = _label_key(labels)
        current = self._samples.get(key)
        if current is None or value > current:
            self._samples[key] = float(value)


class Histogram:
    """A labeled histogram over fixed buckets (upper bounds, +inf implicit)."""

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ConfigurationError(
                f"histogram {name} needs strictly increasing buckets, got {buckets!r}"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        # Per label set: per-bucket counts (len(buckets) + 1 for +inf), sum, count.
        self._counts: dict[LabelKey, list[int]] = {}
        self._sums: dict[LabelKey, float] = {}
        self._totals: dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation."""
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * (len(self.buckets) + 1))
        idx = len(self.buckets)
        for k, bound in enumerate(self.buckets):
            if value <= bound:
                idx = k
                break
        counts[idx] += 1
        self._sums[key] = self._sums.get(key, 0.0) + float(value)
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: Any) -> int:
        """Number of observations for one label set."""
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: Any) -> float:
        """Sum of observations for one label set."""
        return self._sums.get(_label_key(labels), 0.0)

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form (raw, non-cumulative bucket counts)."""
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "buckets": list(self.buckets),
            "samples": [
                {
                    "labels": dict(key),
                    "counts": list(self._counts[key]),
                    "sum": self._sums[key],
                    "count": self._totals[key],
                }
                for key in sorted(self._counts)
            ],
        }

    def expose(self) -> list[str]:
        """Prometheus text exposition (cumulative ``_bucket`` series)."""
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        for key in sorted(self._counts):
            cumulative = 0
            for k, bound in enumerate(self.buckets):
                cumulative += self._counts[key][k]
                le = _label_key({**dict(key), "le": _fmt(bound)})
                lines.append(f"{self.name}_bucket{_render_labels(le)} {cumulative}")
            cumulative += self._counts[key][-1]
            le = _label_key({**dict(key), "le": "+Inf"})
            lines.append(f"{self.name}_bucket{_render_labels(le)} {cumulative}")
            lines.append(f"{self.name}_sum{_render_labels(key)} {_fmt(self._sums[key])}")
            lines.append(f"{self.name}_count{_render_labels(key)} {self._totals[key]}")
        return lines


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create registry of named instruments.

    Re-requesting a name returns the existing instrument; requesting it as
    a different kind is a configuration error (two call sites disagreeing
    about a metric's type is always a bug).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        """Registered metric names, sorted."""
        return sorted(self._metrics)

    def get(self, name: str) -> Instrument | None:
        """The instrument registered under ``name``, if any."""
        return self._metrics.get(name)

    def _register(self, name: str, kind: type, factory: Any) -> Any:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"requested as {kind.kind}"  # type: ignore[attr-defined]
                )
            return existing
        instrument = factory()
        self._metrics[name] = instrument
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create a counter."""
        return self._register(name, Counter, lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create a gauge."""
        return self._register(name, Gauge, lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "", buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create a histogram."""
        return self._register(name, Histogram, lambda: Histogram(name, help, buckets))

    # ------------------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].expose())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON-able form, metrics sorted by name."""
        return {"metrics": [self._metrics[name].to_dict() for name in sorted(self._metrics)]}

    def to_json(self) -> str:
        """Stable JSON export (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> MetricsRegistry:
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for item in data.get("metrics", []):
            name = str(item["name"])
            kind = str(item["type"])
            help_text = str(item.get("help", ""))
            if kind == "histogram":
                hist = registry.histogram(name, help_text, buckets=item["buckets"])
                for sample in item.get("samples", []):
                    key = _label_key(sample.get("labels", {}))
                    hist._counts[key] = [int(c) for c in sample["counts"]]
                    hist._sums[key] = float(sample["sum"])
                    hist._totals[key] = int(sample["count"])
            elif kind in ("counter", "gauge"):
                inst = registry.counter(name, help_text) if kind == "counter" else registry.gauge(
                    name, help_text
                )
                for sample in item.get("samples", []):
                    inst._samples[_label_key(sample.get("labels", {}))] = float(sample["value"])
            else:
                raise ConfigurationError(f"unknown metric type {kind!r} for {name!r}")
        return registry
