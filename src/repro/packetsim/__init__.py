"""Round-based bottleneck congestion model validating the session-level
abstraction (§5.4): enforced reservations deliver their granted rate while
AIMD cross-traffic oscillates around the leftovers.
"""

from .link import AimdFlow, BottleneckLink, LinkResult, LinkSimulation, PacedFlow

__all__ = ["AimdFlow", "BottleneckLink", "LinkResult", "LinkSimulation", "PacedFlow"]
