"""Round-based congestion simulation of one bottleneck link.

The session-level schedulers assume a granted rate is actually delivered.
§5.4 justifies that assumption experimentally (token-bucket pacing plus
drop enforcement on Grid'5000 hardware); this module reproduces the
argument in simulation: a drop-tail bottleneck shared by

- :class:`AimdFlow` — Reno-style additive-increase /
  multiplicative-decrease windows (one update per RTT round), and
- :class:`PacedFlow` — constant-rate senders modelling token-bucket-paced
  reserved transfers, optionally *protected* (their conforming traffic is
  never dropped — the access-point enforcement).

The simulator advances in fixed steps, fills a drop-tail queue with the
aggregate offered load, and signals loss back to the AIMD flows.  It is a
deliberately small fluid-window model — enough to show sawtooth
unpredictability vs reserved stability, not a packet-exact NS replica.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["AimdFlow", "PacedFlow", "BottleneckLink", "LinkSimulation", "LinkResult"]


@dataclass
class AimdFlow:
    """A Reno-like window-based sender.

    Rate is ``cwnd × mss / rtt``; each simulation step without loss adds
    ``mss / rtt`` worth of window per RTT (additive increase); a loss
    signal halves the window (multiplicative decrease).
    """

    rtt: float
    mss: float = 1460.0
    cwnd: float = 10.0  # in MSS

    def __post_init__(self) -> None:
        if self.rtt <= 0:
            raise ConfigurationError(f"rtt must be positive, got {self.rtt}")
        if self.mss <= 0 or self.cwnd <= 0:
            raise ConfigurationError("mss and cwnd must be positive")

    def rate(self) -> float:
        """Current sending rate in MB/s."""
        return self.cwnd * self.mss / self.rtt / 1e6

    def step(self, dt: float, lost: bool) -> None:
        """Advance one simulation step of length ``dt`` seconds."""
        if lost:
            self.cwnd = max(1.0, self.cwnd / 2.0)
        else:
            self.cwnd += dt / self.rtt  # +1 MSS per RTT


@dataclass
class PacedFlow:
    """A constant-rate sender: a token-bucket-paced reserved transfer."""

    reserved: float  # MB/s

    def __post_init__(self) -> None:
        if self.reserved <= 0:
            raise ConfigurationError(f"reserved rate must be positive, got {self.reserved}")

    def rate(self) -> float:
        """Offered rate in MB/s (always the reservation)."""
        return self.reserved

    def step(self, dt: float, lost: bool) -> None:
        """Pacing ignores loss: the shaper keeps the reserved rate."""


@dataclass
class BottleneckLink:
    """A drop-tail bottleneck: capacity in MB/s, buffer in MB."""

    capacity: float
    buffer: float

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {self.capacity}")
        if self.buffer < 0:
            raise ConfigurationError(f"buffer must be non-negative, got {self.buffer}")


@dataclass
class LinkResult:
    """Per-flow goodput series and aggregates."""

    times: np.ndarray
    goodput: np.ndarray  # shape (steps, flows), MB/s delivered per step
    labels: list[str]

    def mean_goodput(self) -> np.ndarray:
        """Time-averaged per-flow goodput (MB/s)."""
        return self.goodput.mean(axis=0)

    def goodput_std(self) -> np.ndarray:
        """Per-flow standard deviation of goodput over time — the paper's
        (un)predictability measure."""
        return self.goodput.std(axis=0)

    def utilization(self, capacity: float) -> float:
        """Delivered over capacity."""
        return float(self.goodput.sum(axis=1).mean() / capacity)


class LinkSimulation:
    """Share a bottleneck among AIMD and (optionally protected) paced flows.

    Parameters
    ----------
    link:
        The bottleneck.
    flows:
        Any mix of :class:`AimdFlow` and :class:`PacedFlow`.
    protect_paced:
        With True (the §5.4 enforcement), conforming paced traffic is
        served first and never dropped; AIMD flows share the remainder.
        With False, everyone competes in the same drop-tail queue.
    dt:
        Step length, seconds.
    """

    def __init__(
        self,
        link: BottleneckLink,
        flows: list[AimdFlow | PacedFlow],
        *,
        protect_paced: bool = True,
        dt: float = 0.01,
    ) -> None:
        if not flows:
            raise ConfigurationError("need at least one flow")
        if dt <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        paced_total = sum(f.reserved for f in flows if isinstance(f, PacedFlow))
        if protect_paced and paced_total > link.capacity * (1 + 1e-9):
            raise ConfigurationError(
                f"protected reservations ({paced_total}) exceed capacity ({link.capacity}); "
                "admission control must keep them within the link"
            )
        self.link = link
        self.flows = flows
        self.protect_paced = protect_paced
        self.dt = dt

    def run(self, duration: float, rng: np.random.Generator | None = None) -> LinkResult:
        """Simulate for ``duration`` seconds; returns the goodput series."""
        rng = rng or np.random.default_rng(0)
        steps = max(1, int(round(duration / self.dt)))
        n = len(self.flows)
        goodput = np.zeros((steps, n))
        times = np.arange(steps) * self.dt
        queue = 0.0

        paced_idx = [k for k, f in enumerate(self.flows) if isinstance(f, PacedFlow)]
        aimd_idx = [k for k, f in enumerate(self.flows) if isinstance(f, AimdFlow)]

        for step in range(steps):
            offered = np.array([f.rate() for f in self.flows])
            if self.protect_paced:
                paced_load = offered[paced_idx].sum() if paced_idx else 0.0
                # conforming reserved traffic goes through untouched
                for k in paced_idx:
                    goodput[step, k] = offered[k]
                residual_capacity = max(0.0, self.link.capacity - paced_load)
                contenders = aimd_idx
            else:
                residual_capacity = self.link.capacity
                contenders = list(range(n))

            demand = offered[contenders].sum() if contenders else 0.0
            arriving = demand * self.dt
            serviceable = residual_capacity * self.dt + max(0.0, self.link.buffer - queue)
            if arriving <= serviceable or demand == 0.0:
                delivered_fraction = 1.0
                queue = max(0.0, queue + arriving - residual_capacity * self.dt)
            else:
                delivered_fraction = serviceable / arriving
                queue = self.link.buffer

            lost_flows: set[int] = set()
            if delivered_fraction < 1.0 and contenders:
                # proportional loss; each contender sees a drop this round
                # with probability proportional to its share of the excess
                for k in contenders:
                    if isinstance(self.flows[k], AimdFlow):
                        p_loss = min(1.0, (1.0 - delivered_fraction) * 3.0)
                        if rng.random() < p_loss:
                            lost_flows.add(k)
            for k in contenders:
                goodput[step, k] = offered[k] * delivered_fraction
            for k, flow in enumerate(self.flows):
                flow.step(self.dt, lost=k in lost_flows)

        labels = [
            f"paced@{f.reserved:g}" if isinstance(f, PacedFlow) else f"aimd(rtt={f.rtt:g})"
            for f in self.flows
        ]
        return LinkResult(times=times, goodput=goodput, labels=labels)
