"""Cost factors for the time-window decomposition heuristics (paper §4.2).

Within each time interval ``[t_i, t_{i+1})``, active requests are served in
non-decreasing cost order.  Three published cost factors:

- **CUMULATED-SLOTS** — ``bw / (b_min × priority)`` where
  ``priority(r, [t_i, t_{i+1})) = (t_{i+1} − t_s) / (t_f − t_s)`` accounts
  for resources already invested in the request, and
  ``b_min = min(B_in(ingress), B_out(egress))`` normalises by the pair's
  bottleneck;
- **MINBW-SLOTS** — ``bw``: smallest demands first;
- **MINVOL-SLOTS** — ``vol``: smallest transfers first.

Two ablation variants (``no-priority``, ``no-bmin``) isolate the two terms
of the CUMULATED cost for the design-choice benchmarks.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.platform import Platform
from ..core.request import Request

__all__ = [
    "SlotCost",
    "ArrivalCost",
    "CumulatedCost",
    "MinBwCost",
    "MinVolCost",
    "WeightedCost",
    "priority_factor",
]


def priority_factor(request: Request, t_lo: float, t_hi: float) -> float:
    """The §4.2 priority: fraction of the window elapsed at interval end.

    ``priority(r, [t_i, t_{i+1})) = (t_{i+1} − t_s(r)) / (t_f(r) − t_s(r))``.
    Grows from the relative length of the first interval to 1 in the last,
    so long-running, already-invested requests become cheap to keep.
    """
    return (t_hi - request.t_start) / (request.t_end - request.t_start)


class SlotCost(abc.ABC):
    """Orders active requests within one decomposition interval."""

    #: Identifier used in scheduler names ("cumulated-slots" etc.).
    name: str = "cost"

    @abc.abstractmethod
    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        """Cost of ``request`` on interval ``[t_lo, t_hi)``; lower is served first."""


@dataclass(frozen=True)
class CumulatedCost(SlotCost):
    """The CUMULATED-SLOTS cost: ``bw / (b_min × priority)``.

    ``use_priority=False`` and ``use_bmin=False`` switch off the respective
    term (ablation variants; both off degenerates to MINBW-SLOTS).
    """

    use_priority: bool = True
    use_bmin: bool = True

    def __post_init__(self) -> None:
        suffix = ""
        if not self.use_priority:
            suffix += "-nopriority"
        if not self.use_bmin:
            suffix += "-nobmin"
        object.__setattr__(self, "name", "cumulated" + suffix)

    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        value = request.min_rate
        if self.use_bmin:
            value /= platform.bottleneck(request.ingress, request.egress)
        if self.use_priority:
            value /= priority_factor(request, t_lo, t_hi)
        return value


@dataclass(frozen=True)
class ArrivalCost(SlotCost):
    """FIFO-within-interval cost: earliest requested start first.

    Models the paper's FIFO baseline inside the decomposition machinery: no
    selective rejection, requests simply "block each other" in arrival
    order (ties: smaller bandwidth first, §4.1), and a request losing a
    later slice of its window has wasted its earlier slices.
    """

    name: str = "fifo"

    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        return request.t_start


@dataclass(frozen=True)
class MinBwCost(SlotCost):
    """The MINBW-SLOTS cost: the request's fixed bandwidth."""

    name: str = "minbw"

    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        return request.min_rate


@dataclass(frozen=True)
class MinVolCost(SlotCost):
    """The MINVOL-SLOTS cost: the request's volume."""

    name: str = "minvol"

    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        return request.volume


class WeightedCost(SlotCost):
    """Priority classes on top of any base cost: ``cost / weight``.

    A request with twice the weight is served as if it demanded half the
    resources; unlisted rids weigh 1.  Realises the "refined objectives"
    direction of the paper's conclusion for the rigid heuristics.
    """

    def __init__(self, base: SlotCost, weights: dict[int, float]) -> None:
        for rid, weight in weights.items():
            if weight <= 0:
                raise ValueError(f"weight for request {rid} must be positive, got {weight}")
        self.base = base
        self.weights = dict(weights)
        self.name = f"weighted-{base.name}"

    def cost(self, request: Request, t_lo: float, t_hi: float, platform: Platform) -> float:
        return self.base.cost(request, t_lo, t_hi, platform) / self.weights.get(request.rid, 1.0)
