"""Offline local search over admission orderings.

The SLOTS/GREEDY heuristics are one-pass: the order in which requests are
considered fully determines the accept set.  This module searches that
order space — a classic "heuristic + local search" upgrade for offline
instances where decision latency does not matter (e.g. planning tomorrow's
transfer campaign overnight).

A candidate solution is a permutation of the requests; it is decoded by a
greedy ledger insertion (rigid: fixed window/rate; flexible: earliest
feasible start as in :class:`~repro.schedulers.advance.EarliestStartFlexible`).
Moves relocate a single request to a random position; an improvement-only
acceptance rule with random restarts keeps the search simple and
monotone.  The decoded schedule is always feasible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError, InternalInvariantError
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance
from ..core.request import Request
from ..obs.telemetry import get_telemetry
from .base import Scheduler
from .policies import BandwidthPolicy, MinRatePolicy

__all__ = ["LocalSearchScheduler"]


def _decode_rigid(problem: ProblemInstance, order: list[Request]) -> ScheduleResult:
    result = ScheduleResult(scheduler="localsearch-decode")
    ledger = PortLedger(problem.platform)
    for request in order:
        bw = request.min_rate
        if ledger.fits(request.ingress, request.egress, request.t_start, request.t_end, bw):
            ledger.allocate(request.ingress, request.egress, request.t_start, request.t_end, bw)
            result.accept(Allocation.for_request(request, bw))
        else:
            result.reject(request.rid)
    return result


def _decode_flexible(
    problem: ProblemInstance, order: list[Request], policy: BandwidthPolicy
) -> ScheduleResult:
    result = ScheduleResult(scheduler="localsearch-decode")
    ledger = PortLedger(problem.platform)
    for request in order:
        booked = False
        latest = request.t_end - request.min_duration
        starts = {request.t_start}
        for timeline in (
            ledger.ingress_timeline(request.ingress),
            ledger.egress_timeline(request.egress),
        ):
            for t in timeline.breakpoints():
                if request.t_start < t <= latest:
                    starts.add(float(t))
        for sigma in sorted(starts):
            bw = policy.assign(request, sigma)
            if bw is None:
                continue
            tau = sigma + request.volume / bw
            if tau > request.t_end * (1 + 1e-12):
                continue
            if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
                ledger.allocate(request.ingress, request.egress, sigma, tau, bw)
                result.accept(Allocation.for_request(request, bw, sigma=sigma))
                booked = True
                break
        if not booked:
            result.reject(request.rid)
    return result


@dataclass
class LocalSearchScheduler(Scheduler):
    """Relocation-move local search over the admission order.

    Parameters
    ----------
    mode:
        ``"rigid"`` or ``"flexible"`` — picks the decoder.
    iterations:
        Total relocation moves tried (across restarts).
    restarts:
        Number of independent starting permutations.
    policy:
        Bandwidth policy for the flexible decoder.
    seed:
        Seed of the search's own randomness (results are deterministic for
        a fixed seed).
    """

    mode: str = "rigid"
    iterations: int = 400
    restarts: int = 3
    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("rigid", "flexible"):
            raise ConfigurationError(f"mode must be 'rigid' or 'flexible', got {self.mode!r}")
        if self.iterations < 0 or self.restarts < 1:
            raise ConfigurationError("need iterations >= 0 and restarts >= 1")
        self.name = f"localsearch-{self.mode}"

    def _decode(self, problem: ProblemInstance, order: list[Request]) -> ScheduleResult:
        if self.mode == "rigid":
            return _decode_rigid(problem, order)
        return _decode_flexible(problem, order, self.policy)

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        requests = list(problem.requests)
        if self.mode == "rigid":
            for request in requests:
                if not request.is_rigid:
                    raise ConfigurationError(
                        f"request {request.rid} is flexible; use mode='flexible'"
                    )
        if not requests:
            result = self._new_result()
            self._observe_schedule(problem, result)
            return result

        rng = np.random.default_rng(self.seed)
        budget = self.iterations
        per_restart = max(1, budget // self.restarts)

        decodes = 0
        best: ScheduleResult | None = None
        for restart in range(self.restarts):
            if restart == 0:
                # Seed the search with the natural FCFS order: the result
                # can then never be worse than the one-pass heuristic.
                order = sorted(requests, key=lambda r: (r.t_start, r.min_rate, r.rid))
            else:
                order = list(requests)
                rng.shuffle(order)  # type: ignore[arg-type]
            current = self._decode(problem, order)
            decodes += 1
            for _ in range(per_restart):
                i = int(rng.integers(len(order)))
                j = int(rng.integers(len(order)))
                if i == j:
                    continue
                candidate = list(order)
                moved = candidate.pop(i)
                candidate.insert(j, moved)
                decoded = self._decode(problem, candidate)
                decodes += 1
                if decoded.num_accepted > current.num_accepted:
                    order, current = candidate, decoded
            if best is None or current.num_accepted > best.num_accepted:
                best = current

        if best is None:
            raise InternalInvariantError("restarts >= 1 yet no candidate was decoded")
        best.scheduler = self.name
        best.meta = {"iterations": self.iterations, "restarts": self.restarts, "mode": self.mode}
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "scheduler_decodes_total",
                "Permutations decoded by the local search, per scheduler.",
            ).inc(float(decodes), scheduler=self.name)
        self._observe_schedule(problem, best)
        return best
