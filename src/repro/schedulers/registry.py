"""Name-based scheduler construction.

The CLI, benchmarks and experiment configs refer to schedulers by short
names such as ``"cumulated-slots"`` or ``"window"``; this registry maps the
names onto configured instances.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..core.errors import ConfigurationError
from .base import Scheduler
from .costs import ArrivalCost, CumulatedCost, MinBwCost, MinVolCost
from .flexible import GreedyFlexible, WindowFlexible
from .localsearch import LocalSearchScheduler
from .policies import FractionOfMaxPolicy, MinRatePolicy
from .advance import EarliestStartFlexible, GuaranteedProfile
from .retry import RetryGreedyFlexible
from .rigid import FCFSRigid, SlotsScheduler

__all__ = ["make_scheduler", "available_schedulers", "register_scheduler"]


def _make_policy(policy: str | float | None):
    """``"min-bw"``/``None`` → MinRatePolicy, a number ``f`` → f × MaxRate."""
    if policy is None or policy == "min-bw":
        return MinRatePolicy()
    if isinstance(policy, (int, float)):
        return FractionOfMaxPolicy(float(policy))
    if isinstance(policy, str) and policy.startswith("f="):
        return FractionOfMaxPolicy(float(policy[2:]))
    raise ConfigurationError(f"unknown bandwidth policy {policy!r}")


# Each factory consumes options from the mutable dict it receives, so
# make_scheduler can flag leftovers (typos) afterwards.
_FACTORIES: dict[str, Callable[[dict[str, Any]], Scheduler]] = {
    "fcfs-rigid": lambda kw: FCFSRigid(),
    "fifo-slots": lambda kw: SlotsScheduler(ArrivalCost()),
    "cumulated-slots": lambda kw: SlotsScheduler(
        CumulatedCost(
            use_priority=kw.pop("use_priority", True),
            use_bmin=kw.pop("use_bmin", True),
        )
    ),
    "minbw-slots": lambda kw: SlotsScheduler(MinBwCost()),
    "minvol-slots": lambda kw: SlotsScheduler(MinVolCost()),
    "greedy": lambda kw: GreedyFlexible(
        policy=_make_policy(kw.pop("policy", None)),
        enforce_deadline=kw.pop("enforce_deadline", True),
    ),
    "window": lambda kw: WindowFlexible(
        t_step=kw.pop("t_step", 400.0),
        policy=_make_policy(kw.pop("policy", None)),
        enforce_deadline=kw.pop("enforce_deadline", True),
    ),
    "bookahead": lambda kw: EarliestStartFlexible(
        policy=_make_policy(kw.pop("policy", None)),
    ),
    "guaranteed-profile": lambda kw: GuaranteedProfile(
        policy=_make_policy(kw.pop("policy", None)),
    ),
    "localsearch": lambda kw: LocalSearchScheduler(
        mode=kw.pop("mode", "rigid"),
        iterations=kw.pop("iterations", 400),
        restarts=kw.pop("restarts", 3),
        policy=_make_policy(kw.pop("policy", None)),
        seed=kw.pop("seed", 0),
    ),
    "retry-greedy": lambda kw: RetryGreedyFlexible(
        policy=_make_policy(kw.pop("policy", None)),
        backoff=kw.pop("backoff", 60.0),
        multiplier=kw.pop("multiplier", 2.0),
        max_attempts=kw.pop("max_attempts", 8),
    ),
}


def available_schedulers() -> list[str]:
    """Registered scheduler names, sorted."""
    return sorted(_FACTORIES)


def register_scheduler(name: str, factory: Callable[[dict[str, Any]], Scheduler]) -> None:
    """Add a custom scheduler factory under ``name`` (overwrites allowed).

    The factory receives a mutable option dict and must ``pop`` every option
    it consumes.
    """
    _FACTORIES[name] = factory


def make_scheduler(name: str, **options: Any) -> Scheduler:
    """Construct the scheduler registered under ``name``.

    Unconsumed keyword options raise, catching typos in experiment configs.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    remaining = dict(options)
    scheduler = factory(remaining)
    if remaining:
        raise ConfigurationError(f"scheduler {name!r}: unused options {sorted(remaining)}")
    return scheduler
