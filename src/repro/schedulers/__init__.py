"""Admission and bandwidth-sharing heuristics (paper §4 and §5).

Rigid-request heuristics: :class:`FCFSRigid` and the Algorithm 1 SLOTS
family (:func:`cumulated_slots`, :func:`minbw_slots`, :func:`minvol_slots`).
Flexible-request heuristics: :class:`GreedyFlexible` (Algorithm 2) and
:class:`WindowFlexible` (Algorithm 3), parameterised by a
:class:`BandwidthPolicy`.
"""

from .advance import EarliestStartFlexible, GuaranteedProfile
from .base import Scheduler
from .costs import (
    ArrivalCost,
    CumulatedCost,
    MinBwCost,
    MinVolCost,
    SlotCost,
    WeightedCost,
    priority_factor,
)
from .flexible import GreedyFlexible, WindowFlexible
from .localsearch import LocalSearchScheduler
from .policies import (
    BandwidthPolicy,
    FractionOfMaxPolicy,
    FullRatePolicy,
    MinRatePolicy,
    policy_from_name,
)
from .registry import available_schedulers, make_scheduler, register_scheduler
from .retry import BackoffSchedule, RetryGreedyFlexible
from .rigid import FCFSRigid, SlotsScheduler, cumulated_slots, fifo_slots, minbw_slots, minvol_slots

__all__ = [
    "ArrivalCost",
    "BackoffSchedule",
    "BandwidthPolicy",
    "CumulatedCost",
    "EarliestStartFlexible",
    "FCFSRigid",
    "FractionOfMaxPolicy",
    "FullRatePolicy",
    "GreedyFlexible",
    "GuaranteedProfile",
    "LocalSearchScheduler",
    "MinBwCost",
    "MinRatePolicy",
    "MinVolCost",
    "RetryGreedyFlexible",
    "Scheduler",
    "SlotCost",
    "SlotsScheduler",
    "WeightedCost",
    "WindowFlexible",
    "available_schedulers",
    "cumulated_slots",
    "fifo_slots",
    "make_scheduler",
    "minbw_slots",
    "minvol_slots",
    "policy_from_name",
    "priority_factor",
    "register_scheduler",
]
