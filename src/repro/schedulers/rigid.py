"""Heuristics for short-lived **rigid** requests (paper §4).

A rigid request must run over exactly its requested window at exactly its
window-implied rate; the scheduler only decides accept/reject.

- :class:`FCFSRigid` (§4.1): requests considered in order of start time
  (ties: smallest bandwidth first); accepted iff the fixed rate fits on
  both ports over the whole window.  The paper's "FIFO" baseline.
- :class:`SlotsScheduler` (§4.2, Algorithm 1): the scheduling horizon is
  sliced at every request start/finish; within each slice active requests
  are served in non-decreasing cost order, and a request that fails in any
  slice of its window is discarded (its earlier slices are released).
  Instantiated with the three published cost factors as CUMULATED-SLOTS,
  MINBW-SLOTS and MINVOL-SLOTS.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.allocation import Allocation, ScheduleResult
from ..core.capacity import slack_capacity
from ..core.errors import ConfigurationError
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance
from ..core.request import Request
from ..units import seconds_eq
from .base import Scheduler
from .costs import ArrivalCost, CumulatedCost, MinBwCost, MinVolCost, SlotCost

__all__ = [
    "FCFSRigid",
    "SlotsScheduler",
    "cumulated_slots",
    "fifo_slots",
    "minbw_slots",
    "minvol_slots",
]


def _rigid_allocation(request: Request) -> Allocation:
    """Allocation occupying exactly the rigid request's window.

    ``Allocation.for_request`` re-derives ``τ = σ + volume/bw``, which can
    land a few ulps past ``t_end`` — enough to create a sliver overlap
    with a request starting exactly at ``t_end`` and fail verification on
    an interval a femtosecond wide.  A rigid request runs over exactly its
    requested window, so snap ``τ`` back when the two agree.
    """
    alloc = Allocation.for_request(request, request.min_rate)
    if seconds_eq(alloc.tau, request.t_end):
        alloc = replace(alloc, tau=request.t_end)
    return alloc


class FCFSRigid(Scheduler):
    """First-come-first-serve admission of rigid requests (§4.1)."""

    name = "fcfs-rigid"

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result()
        ledger = PortLedger(problem.platform)
        for request in problem.requests.sorted_by_arrival():
            if not request.is_rigid:
                raise ConfigurationError(
                    f"request {request.rid} is flexible; FCFSRigid handles rigid requests only"
                )
            bw = request.min_rate
            if ledger.fits(request.ingress, request.egress, request.t_start, request.t_end, bw):
                ledger.allocate(request.ingress, request.egress, request.t_start, request.t_end, bw)
                result.accept(_rigid_allocation(request))
            else:
                result.reject(request.rid, "capacity")
        self._observe_schedule(problem, result)
        return result


@dataclass
class SlotsScheduler(Scheduler):
    """Algorithm 1: time-window decomposition with a pluggable cost factor.

    The horizon is cut at every requested start/finish time, producing
    intervals in which the set of active requests is constant.  Each
    interval is packed greedily in non-decreasing cost order against
    per-interval port budgets ``ali``/``ale``.  A request rejected in any
    interval of its window is removed from the problem (and from the
    intervals it already occupied) — it is only *accepted* if it wins every
    interval it spans.
    """

    cost: SlotCost = field(default_factory=CumulatedCost)

    def __post_init__(self) -> None:
        self.name = f"{self.cost.name}-slots"

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(cost=self.cost.name)
        requests = list(problem.requests)
        for request in requests:
            if not request.is_rigid:
                raise ConfigurationError(
                    f"request {request.rid} is flexible; SlotsScheduler handles rigid requests only"
                )
        if not requests:
            return result

        platform = problem.platform
        breakpoints = problem.requests.breakpoints()
        alive: dict[int, Request] = {r.rid: r for r in requests}
        rejected: set[int] = set()

        # Requests sorted by start let each interval gather its active set
        # with a moving cursor instead of a full scan.
        by_start = sorted(requests, key=lambda r: r.t_start)
        cursor = 0
        running: list[Request] = []

        for t_lo, t_hi in zip(breakpoints[:-1], breakpoints[1:]):
            while cursor < len(by_start) and by_start[cursor].t_start <= t_lo:
                running.append(by_start[cursor])
                cursor += 1
            running = [r for r in running if r.t_end >= t_hi and r.rid not in rejected]
            # Active on [t_lo, t_hi): window covers the whole interval.
            active = [r for r in running if r.t_start <= t_lo]
            if not active:
                continue

            # Secondary key: smallest bandwidth first (the paper's FCFS
            # tie-break, §4.1); rid keeps the order fully deterministic.
            active.sort(key=lambda r: (self.cost.cost(r, t_lo, t_hi, platform), r.min_rate, r.rid))
            ali = np.zeros(platform.num_ingress)
            ale = np.zeros(platform.num_egress)
            for request in active:
                bw = request.min_rate
                cap_in = platform.bin(request.ingress)
                cap_out = platform.bout(request.egress)
                if (
                    ali[request.ingress] + bw <= slack_capacity(cap_in)
                    and ale[request.egress] + bw <= slack_capacity(cap_out)
                ):
                    ali[request.ingress] += bw
                    ale[request.egress] += bw
                else:
                    # Failed in this slice: discard entirely (earlier slices
                    # are implicitly released — the request is not accepted).
                    rejected.add(request.rid)
                    del alive[request.rid]

        for rid in rejected:
            result.reject(rid, "capacity")
        for request in requests:
            if request.rid in alive:
                result.accept(_rigid_allocation(request))
        self._observe_schedule(problem, result)
        return result


def fifo_slots() -> SlotsScheduler:
    """The paper's FIFO baseline: arrival order within each slice, no
    selective rejection — mid-window losers waste their earlier slices."""
    return SlotsScheduler(ArrivalCost())


def cumulated_slots() -> SlotsScheduler:
    """The CUMULATED-SLOTS heuristic (Algorithm 1 with the §4.2 cost)."""
    return SlotsScheduler(CumulatedCost())


def minbw_slots() -> SlotsScheduler:
    """The MINBW-SLOTS variant (cost = demanded bandwidth)."""
    return SlotsScheduler(MinBwCost())


def minvol_slots() -> SlotsScheduler:
    """The MINVOL-SLOTS variant (cost = volume)."""
    return SlotsScheduler(MinVolCost())
