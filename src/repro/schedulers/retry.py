"""Client retry behaviour (§2.3): "stand the risk of being rejected and
try later".

The paper's customer model lets a rejected user resubmit while its window
still has room.  :class:`RetryGreedyFlexible` wraps the GREEDY admission
rule with an exponential-backoff retry queue: a rejected request retries
until its deadline can no longer be met at ``MaxRate`` (or a retry budget
runs out), at which point it is finally rejected.

Because a retry starts later, the deadline-implied rate floor grows at
each attempt: retrying users are admitted at progressively *higher* rates
— the natural incentive the paper's customer/provider discussion sketches.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance
from ..core.allocation import ScheduleResult
from .base import Scheduler
from .flexible import _PortOccupancy
from .policies import BandwidthPolicy, MinRatePolicy

__all__ = ["BackoffSchedule", "RetryGreedyFlexible"]


@dataclass(frozen=True)
class BackoffSchedule:
    """Exponential backoff with optional jitter, shared by every retry path.

    Attempt ``k`` (1-based) waits ``base × multiplier^(k-1)`` seconds, plus
    a uniform random fraction of that delay up to ``jitter`` when an ``rng``
    is supplied — jitter decorrelates rebooking storms after a port outage
    displaces many reservations at once.

    Used by :class:`RetryGreedyFlexible` (client resubmission, §2.3) and by
    the fault-recovery rebooking daemon (:mod:`repro.control.faults`).
    """

    base: float = 60.0
    multiplier: float = 2.0
    max_attempts: int = 8
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"backoff base must be positive, got {self.base}")
        if self.multiplier < 1.0:
            raise ConfigurationError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not (0.0 <= self.jitter <= 1.0):
            raise ConfigurationError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng=None) -> float:
        """Wait before retry number ``attempt`` (1-based).

        ``rng`` is any object with a ``random()`` method returning a float
        in ``[0, 1)`` (``random.Random``, ``numpy.random.Generator``).
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        delay = self.base * self.multiplier ** (attempt - 1)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


@dataclass
class RetryGreedyFlexible(Scheduler):
    """GREEDY admission with exponential-backoff retries.

    Parameters
    ----------
    policy:
        Bandwidth assignment policy (rate floored by the *current* attempt
        time's deadline rate).
    backoff:
        Delay before the first retry, seconds.
    multiplier:
        Backoff growth factor per attempt (≥ 1).
    max_attempts:
        Total admission attempts per request (1 = plain GREEDY).
    """

    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)
    backoff: float = 60.0
    multiplier: float = 2.0
    max_attempts: int = 8

    def __post_init__(self) -> None:
        # Validation (and the delay computation below) live in BackoffSchedule.
        self._schedule = BackoffSchedule(
            base=self.backoff, multiplier=self.multiplier, max_attempts=self.max_attempts
        )
        self.name = f"retry-greedy[{self.policy.name},x{self.max_attempts}]"

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(
            policy=self.policy.name,
            backoff=self.backoff,
            max_attempts=self.max_attempts,
        )
        platform = problem.platform
        occupancy = _PortOccupancy(platform.num_ingress, platform.num_egress)

        counter = itertools.count()
        queue: list[tuple[float, int, int, object]] = []  # (time, seq, attempt, request)
        for request in problem.requests.sorted_by_arrival():
            heapq.heappush(queue, (request.t_start, next(counter), 1, request))

        retries_used = 0
        while queue:
            now, _, attempt, request = heapq.heappop(queue)
            occupancy.release_until(now)
            bw = self.policy.assign(request, now)
            if bw is not None and occupancy.fits(request, bw, platform):
                result.accept(occupancy.admit(request, bw, now))
                continue
            # Schedule a retry if the deadline would still be reachable then.
            retry_at = now + self._schedule.delay(attempt)
            if (
                attempt < self.max_attempts
                and request.rate_for_deadline(retry_at) <= request.max_rate * (1 + 1e-12)
            ):
                retries_used += 1
                heapq.heappush(queue, (retry_at, next(counter), attempt + 1, request))
            else:
                # Retry budget exhausted (capacity never opened up in time),
                # or no feasible retry instant remains before the deadline.
                reason = "capacity" if attempt >= self.max_attempts else "deadline"
                result.reject(request.rid, reason)
        result.meta["retries"] = retries_used
        return result
