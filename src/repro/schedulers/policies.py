"""Bandwidth assignment policies (paper §2.3, §5.1).

When a flexible request is accepted, the scheduler must pick ``bw(r)`` in
``[MinRate, MaxRate]``.  The paper studies two families:

- **MIN BW** — grant exactly the rate needed to meet the deadline from the
  actual start time (``MinRate`` when started on arrival).  Maximises the
  chance of acceptance but transfers finish as late as allowed.
- **f × MaxRate** — grant ``max(f × MaxRate, MinRate)`` for a tuning factor
  ``f ∈ (0, 1]``.  Transfers finish sooner (releasing CPU/disk earlier, the
  grid-computing motivation of §2.3) at the price of a possibly lower
  accept rate.

A policy returns the rate to grant for a request started at ``start``, or
``None`` when no admissible rate exists (the deadline can no longer be met
within ``MaxRate``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from ..core.errors import ConfigurationError
from ..core.request import Request

__all__ = [
    "BandwidthPolicy",
    "MinRatePolicy",
    "FractionOfMaxPolicy",
    "FullRatePolicy",
    "policy_from_name",
]


class BandwidthPolicy(abc.ABC):
    """Maps an accepted request (and its actual start time) to a rate."""

    #: Identifier used in result metadata and figure legends.
    name: str = "policy"

    @abc.abstractmethod
    def assign(self, request: Request, start: float | None = None) -> float | None:
        """Rate to grant when ``request`` starts at ``start`` (default
        ``t_s``); ``None`` when the deadline is no longer reachable."""

    def _deadline_rate(self, request: Request, start: float | None) -> float | None:
        """Rate needed to meet the deadline from ``start``; ``None`` when the
        deadline is unreachable even at ``MaxRate``."""
        needed = request.min_rate if start is None else request.rate_for_deadline(start)
        # RATE_TOLERANCE-scale slack: a request started exactly on time must
        # remain admissible despite float rounding in rate_for_deadline.
        if needed > request.max_rate * (1 + 1e-9):
            return None
        return min(needed, request.max_rate)


@dataclass(frozen=True)
class MinRatePolicy(BandwidthPolicy):
    """Grant the minimum admissible rate (the paper's MIN BW policy)."""

    name: str = "min-bw"

    def assign(self, request: Request, start: float | None = None) -> float | None:
        return self._deadline_rate(request, start)


@dataclass(frozen=True)
class FractionOfMaxPolicy(BandwidthPolicy):
    """Grant ``max(f × MaxRate, MinRate)`` (paper §2.3).

    ``f = 1`` grants every accepted request its full host rate — the setting
    of the Figure 5 heavy-load experiment.
    """

    f: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 < self.f <= 1.0):
            raise ConfigurationError(f"tuning factor f must be in (0, 1], got {self.f}")
        object.__setattr__(self, "name", f"f={self.f:g}")

    def assign(self, request: Request, start: float | None = None) -> float | None:
        floor = self._deadline_rate(request, start)
        if floor is None:
            return None
        return min(max(self.f * request.max_rate, floor), request.max_rate)


def FullRatePolicy() -> FractionOfMaxPolicy:
    """``f = 1``: every accepted request gets its full ``MaxRate``."""
    return FractionOfMaxPolicy(1.0)


def policy_from_name(name: str) -> BandwidthPolicy:
    """Reconstruct a policy from its ``name`` attribute.

    The inverse of the naming scheme above (``"min-bw"``, ``"f=0.8"``);
    used by the journal replay path to rebuild a service from its header.
    """
    if name == MinRatePolicy.name:
        return MinRatePolicy()
    if name.startswith("f="):
        try:
            return FractionOfMaxPolicy(float(name[2:]))
        except ValueError as exc:
            raise ConfigurationError(f"malformed policy name {name!r}") from exc
    raise ConfigurationError(f"unknown policy name {name!r}")
