"""Online heuristics for short-lived **flexible** requests (paper §5).

Both heuristics are *online*: decisions use only requests whose arrival time
has passed, plus the instantaneous port occupancy ``ali``/``ale``.  Because
every granted transfer starts at its decision instant and port occupancy can
only drop between decisions, an instantaneous capacity check at the decision
time is exact — no full timeline is needed.

- :class:`GreedyFlexible` (Algorithm 2): decide each request the moment it
  arrives; accept iff the policy rate fits on both ports *now*.
- :class:`WindowFlexible` (Algorithm 3): batch arrivals into fixed-length
  decision intervals of length ``t_step``.  At each interval end, candidates
  are admitted in rounds: the candidate whose post-acceptance port
  utilisation ``cost(r) = max((ali+bw)/B_in, (ale+bw)/B_out)`` is smallest
  is admitted, until the cheapest candidate no longer fits (cost > 1), which
  rejects all remaining candidates.  (The paper's pseudo-code pops ``r``
  where ``r_min`` is clearly meant; we implement the intent.)

Deadline handling: starting a request later than ``t_s`` shrinks its window,
raising the rate needed to still finish by ``t_f``.  With
``enforce_deadline=True`` (default) the granted rate is floored at that
deadline rate and the request is rejected when even ``MaxRate`` cannot meet
it; with ``False`` the policy rate is granted as-is and the deadline may
slip (the paper's Algorithm 3 as literally written) — schedules produced in
that mode must be verified with ``enforce_window=False``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.allocation import Allocation, ScheduleResult
from ..core.capacity import UTILISATION_LIMIT, slack_capacity
from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance
from ..core.request import Request
from .base import Scheduler
from .policies import BandwidthPolicy, MinRatePolicy

__all__ = ["GreedyFlexible", "WindowFlexible"]


class _PortOccupancy:
    """Instantaneous ``ali``/``ale`` bookkeeping with a departure heap."""

    def __init__(self, num_ingress: int, num_egress: int) -> None:
        self.ali = np.zeros(num_ingress)
        self.ale = np.zeros(num_egress)
        self._departures: list[tuple[float, int, int, int, float]] = []

    def release_until(self, t: float) -> None:
        """Reclaim bandwidth of transfers finished at or before ``t``.

        Eq. 1 constrains ``σ(r) ≤ t < τ(r)``: at ``t = τ`` the transfer no
        longer occupies its ports, so departures at exactly ``t`` free up.
        """
        while self._departures and self._departures[0][0] <= t:
            _, _, ingress, egress, bw = heapq.heappop(self._departures)
            self.ali[ingress] -= bw
            self.ale[egress] -= bw

    def fits(self, request: Request, bw: float, platform) -> bool:
        cap_in = platform.bin(request.ingress)
        cap_out = platform.bout(request.egress)
        return (
            self.ali[request.ingress] + bw <= slack_capacity(cap_in)
            and self.ale[request.egress] + bw <= slack_capacity(cap_out)
        )

    def admit(self, request: Request, bw: float, sigma: float) -> Allocation:
        alloc = Allocation.for_request(request, bw, sigma)
        self.ali[request.ingress] += bw
        self.ale[request.egress] += bw
        heapq.heappush(
            self._departures,
            (alloc.tau, request.rid, request.ingress, request.egress, bw),
        )
        return alloc

    def cost(self, request: Request, bw: float, platform) -> float:
        """Algorithm 3's cost: worst post-acceptance port utilisation."""
        util_in = (self.ali[request.ingress] + bw) / platform.bin(request.ingress)
        util_out = (self.ale[request.egress] + bw) / platform.bout(request.egress)
        return max(util_in, util_out)


@dataclass
class GreedyFlexible(Scheduler):
    """Algorithm 2: first-come-first-serve online admission."""

    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)
    enforce_deadline: bool = True

    def __post_init__(self) -> None:
        self.name = f"greedy[{self.policy.name}]"

    def _rate_for(self, request: Request, sigma: float) -> float | None:
        start = sigma if self.enforce_deadline else None
        return self.policy.assign(request, start)

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(policy=self.policy.name, enforce_deadline=self.enforce_deadline)
        platform = problem.platform
        occupancy = _PortOccupancy(platform.num_ingress, platform.num_egress)
        for request in problem.requests.sorted_by_arrival():
            sigma = request.t_start
            occupancy.release_until(sigma)
            bw = self._rate_for(request, sigma)
            if bw is None:
                result.reject(request.rid, "deadline")
            elif occupancy.fits(request, bw, platform):
                result.accept(occupancy.admit(request, bw, sigma))
            else:
                result.reject(request.rid, "capacity")
        self._observe_schedule(problem, result)
        return result


@dataclass
class WindowFlexible(Scheduler):
    """Algorithm 3: interval-based batched admission.

    Parameters
    ----------
    t_step:
        Length of the decision interval in seconds; arrivals in
        ``[t, t + t_step)`` are decided together at ``t + t_step``.  Longer
        intervals give the cost-based packing more candidates to optimise
        over, at the price of a longer response time (§5.2).
    policy:
        Bandwidth assignment policy for accepted requests.
    enforce_deadline:
        See the module docstring.
    """

    t_step: float = 400.0
    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)
    enforce_deadline: bool = True

    def __post_init__(self) -> None:
        if self.t_step <= 0:
            raise ConfigurationError(f"t_step must be positive, got {self.t_step}")
        self.name = f"window[{self.t_step:g}s,{self.policy.name}]"

    def _rate_for(self, request: Request, sigma: float) -> float | None:
        start = sigma if self.enforce_deadline else None
        return self.policy.assign(request, start)

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(
            t_step=self.t_step,
            policy=self.policy.name,
            enforce_deadline=self.enforce_deadline,
        )
        platform = problem.platform
        occupancy = _PortOccupancy(platform.num_ingress, platform.num_egress)
        arrivals = list(problem.requests.sorted_by_arrival())
        if not arrivals:
            return result

        t_begin = arrivals[0].t_start
        cursor = 0
        epoch = 0
        while cursor < len(arrivals):
            epoch += 1
            decision_time = t_begin + epoch * self.t_step
            candidates: list[Request] = []
            while cursor < len(arrivals) and arrivals[cursor].t_start < decision_time:
                candidates.append(arrivals[cursor])
                cursor += 1
            if not candidates:
                continue

            occupancy.release_until(decision_time)

            # Candidates whose policy rate no longer exists (deadline passed
            # beyond MaxRate) are rejected outright; the rest enter the
            # cost-ordered packing rounds.
            pool: list[tuple[Request, float]] = []
            for request in candidates:
                bw = self._rate_for(request, decision_time)
                if bw is None:
                    result.reject(request.rid, "deadline")
                else:
                    pool.append((request, bw))
            if not pool:
                continue

            # Vectorised packing rounds: recomputing every candidate's cost
            # per accept is the hot loop of the whole scheduler (it was
            # O(|pool|²) in Python); one numpy pass per accepted request
            # keeps the exact (cost, rid) selection order.
            ing = np.fromiter((r.ingress for r, _ in pool), dtype=np.int64, count=len(pool))
            egr = np.fromiter((r.egress for r, _ in pool), dtype=np.int64, count=len(pool))
            bws = np.fromiter((bw for _, bw in pool), dtype=np.float64, count=len(pool))
            rids = np.fromiter((r.rid for r, _ in pool), dtype=np.int64, count=len(pool))
            cap_in = platform.ingress_capacity[ing]
            cap_out = platform.egress_capacity[egr]
            alive = np.ones(len(pool), dtype=bool)

            while np.any(alive):
                costs = np.maximum(
                    (occupancy.ali[ing] + bws) / cap_in,
                    (occupancy.ale[egr] + bws) / cap_out,
                )
                costs[~alive] = np.inf
                cheapest = costs.min()
                if cheapest > UTILISATION_LIMIT:
                    # The cheapest candidate would overflow a port: nothing
                    # else fits either; reject all remaining candidates.
                    for k in np.flatnonzero(alive):
                        result.reject(pool[k][0].rid, "capacity")
                    break
                ties = np.flatnonzero(costs == cheapest)
                best = int(ties[np.argmin(rids[ties])])
                request, bw = pool[best]
                alive[best] = False
                result.accept(occupancy.admit(request, bw, decision_time))
        self._observe_schedule(problem, result)
        return result
