"""Scheduler interface.

A scheduler consumes a :class:`ProblemInstance` and returns a
:class:`ScheduleResult` deciding every request.  Offline heuristics (the
rigid SLOTS family) may inspect the whole request set; online heuristics
(GREEDY, WINDOW) are written to only ever look at requests whose arrival
time has passed, matching the paper's "no a-priori knowledge" property
(§5).
"""

from __future__ import annotations

import abc

from ..core.allocation import ScheduleResult
from ..core.problem import ProblemInstance
from ..obs.telemetry import get_telemetry

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Base class for all admission/bandwidth-sharing heuristics."""

    #: Human-readable identifier used in results, the registry and reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        """Decide every request of ``problem``; never mutates the instance."""

    def _new_result(self, **meta) -> ScheduleResult:
        """Construct an empty result stamped with this scheduler's name."""
        return ScheduleResult(scheduler=self.name, meta=meta)

    def _observe_schedule(self, problem: ProblemInstance, result: ScheduleResult) -> None:
        """Report a completed scheduling pass through the active telemetry.

        Schedulers call this once, right before returning: it records the
        accept/reject counters, a per-reason breakdown, one decision event
        per request, a span per accepted transfer and a span covering the
        whole pass.  Costs nothing beyond one flag check when the
        process-wide handle is the default
        :class:`~repro.obs.telemetry.NullTelemetry`.
        """
        tel = get_telemetry()
        if not tel.enabled:
            return
        decisions = tel.metrics.counter(
            "scheduler_decisions_total", "Scheduling decisions by scheduler and outcome."
        )
        if result.num_accepted:
            decisions.inc(float(result.num_accepted), scheduler=self.name, outcome="accepted")
        if result.num_rejected:
            decisions.inc(float(result.num_rejected), scheduler=self.name, outcome="rejected")
        rejects = tel.metrics.counter(
            "scheduler_rejects_total", "Scheduling rejections by scheduler and reason."
        )
        for reason, count in sorted(result.rejection_breakdown().items()):
            rejects.inc(float(count), scheduler=self.name, reason=reason)
        span_start, span_end = problem.requests.time_span()
        tel.tracer.complete(
            f"schedule[{self.name}]",
            span_start,
            span_end,
            cat="scheduler",
            accepted=result.num_accepted,
            rejected=result.num_rejected,
        )
        for alloc in result.allocations():
            tel.tracer.complete(
                "transfer",
                alloc.sigma,
                alloc.tau,
                cat=self.name,
                tid=alloc.ingress,
                rid=alloc.rid,
                bw=alloc.bw,
            )
            tel.emit(
                "scheduler.decision",
                alloc.sigma,
                scheduler=self.name,
                rid=alloc.rid,
                outcome="accepted",
                sigma=alloc.sigma,
                tau=alloc.tau,
                bw=alloc.bw,
            )
        for rid in sorted(result.rejected):
            tel.emit(
                "scheduler.decision",
                span_end,
                scheduler=self.name,
                rid=rid,
                outcome="rejected",
                reason=result.rejection_reasons.get(rid, "unspecified"),
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
