"""Scheduler interface.

A scheduler consumes a :class:`ProblemInstance` and returns a
:class:`ScheduleResult` deciding every request.  Offline heuristics (the
rigid SLOTS family) may inspect the whole request set; online heuristics
(GREEDY, WINDOW) are written to only ever look at requests whose arrival
time has passed, matching the paper's "no a-priori knowledge" property
(§5).
"""

from __future__ import annotations

import abc

from ..core.allocation import ScheduleResult
from ..core.problem import ProblemInstance

__all__ = ["Scheduler"]


class Scheduler(abc.ABC):
    """Base class for all admission/bandwidth-sharing heuristics."""

    #: Human-readable identifier used in results, the registry and reports.
    name: str = "scheduler"

    @abc.abstractmethod
    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        """Decide every request of ``problem``; never mutates the instance."""

    def _new_result(self, **meta) -> ScheduleResult:
        """Construct an empty result stamped with this scheduler's name."""
        return ScheduleResult(scheduler=self.name, meta=meta)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
