"""Book-ahead scheduling: exploit flexible start times (§2.3, [6]).

The published online heuristics only ever start an accepted transfer at
its decision instant, although the model (and the NP-completeness proof)
allows any start ``σ ∈ [t_s, t_f − vol/bw]``.  This module adds the
natural extension the paper's related work calls *malleable reservations*
(Burchard et al. [6]) and its conclusion calls "real-time resource
reservation": on arrival, search the ledger for the **earliest feasible
start** within the window and book the bandwidth ahead of time.

Unlike Algorithms 2–3, this requires each port to keep a full future
timeline (a :class:`~repro.core.ledger.PortLedger`) rather than a scalar
``ali``/``ale`` — the cost of the extra accept rate is state and lookups
logarithmic in the number of booked windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.allocation import Allocation, ScheduleResult
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance
from ..core.request import Request
from ..obs.telemetry import get_telemetry
from .base import Scheduler
from .policies import BandwidthPolicy, MinRatePolicy

__all__ = ["EarliestStartFlexible"]


@dataclass
class EarliestStartFlexible(Scheduler):
    """Online book-ahead admission with earliest-feasible-start search.

    On each arrival, candidate start times are the arrival instant plus
    every ledger breakpoint inside the request's feasible start range
    (feasibility of a fixed-rate block only changes at breakpoints).  The
    first candidate where the policy rate fits both ports for the whole
    transfer is booked; if none fits, the request is rejected.

    With every candidate rejected the scheduler behaves exactly like
    GREEDY, so its accept rate dominates GREEDY's on any instance where
    deferring ever helps.
    """

    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)

    def __post_init__(self) -> None:
        self.name = f"bookahead[{self.policy.name}]"

    def _candidate_starts(self, ledger: PortLedger, request: Request) -> list[float]:
        latest = request.t_end - request.min_duration
        if latest < request.t_start:
            return []
        starts = {request.t_start}
        for timeline in (
            ledger.ingress_timeline(request.ingress),
            ledger.egress_timeline(request.egress),
        ):
            for t in timeline.breakpoints():
                if request.t_start < t <= latest:
                    starts.add(float(t))
        return sorted(starts)

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(policy=self.policy.name)
        ledger = PortLedger(problem.platform)
        tel = get_telemetry()
        for request in problem.requests.sorted_by_arrival():
            booked = False
            examined = 0
            for sigma in self._candidate_starts(ledger, request):
                examined += 1
                bw = self.policy.assign(request, sigma)
                if bw is None:
                    continue
                tau = sigma + request.volume / bw
                if tau > request.t_end * (1 + 1e-12):
                    continue
                if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
                    ledger.allocate(request.ingress, request.egress, sigma, tau, bw)
                    result.accept(Allocation.for_request(request, bw, sigma=sigma))
                    booked = True
                    break
            if not booked:
                result.reject(request.rid, "capacity")
            if tel.enabled:
                tel.metrics.counter(
                    "scheduler_candidates_examined_total",
                    "Candidate start times examined by book-ahead search, per scheduler.",
                ).inc(float(examined), scheduler=self.name)
        self._observe_schedule(problem, result)
        return result
