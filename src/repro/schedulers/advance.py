"""Book-ahead scheduling: exploit flexible start times (§2.3, [6]).

The published online heuristics only ever start an accepted transfer at
its decision instant, although the model (and the NP-completeness proof)
allows any start ``σ ∈ [t_s, t_f − vol/bw]``.  This module adds the
natural extension the paper's related work calls *malleable reservations*
(Burchard et al. [6]) and its conclusion calls "real-time resource
reservation": on arrival, search the ledger for the **earliest feasible
start** within the window and book the bandwidth ahead of time.

Unlike Algorithms 2–3, this requires each port to keep a full future
timeline (a :class:`~repro.core.ledger.PortLedger`) rather than a scalar
``ali``/``ale`` — the cost of the extra accept rate is state and lookups
logarithmic in the number of booked windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.allocation import Allocation, ScheduleResult
from ..core.booking import RejectReason, shape_profile
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance
from ..core.request import Request
from ..obs.telemetry import get_telemetry
from .base import Scheduler
from .policies import BandwidthPolicy, MinRatePolicy

__all__ = ["EarliestStartFlexible", "GuaranteedProfile"]


@dataclass
class EarliestStartFlexible(Scheduler):
    """Online book-ahead admission with earliest-feasible-start search.

    On each arrival, candidate start times are the arrival instant plus
    every ledger breakpoint inside the request's feasible start range
    (feasibility of a fixed-rate block only changes at breakpoints).  The
    first candidate where the policy rate fits both ports for the whole
    transfer is booked; if none fits, the request is rejected.

    With every candidate rejected the scheduler behaves exactly like
    GREEDY, so its accept rate dominates GREEDY's on any instance where
    deferring ever helps.
    """

    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)

    def __post_init__(self) -> None:
        self.name = f"bookahead[{self.policy.name}]"

    def _candidate_starts(self, ledger: PortLedger, request: Request) -> list[float]:
        latest = request.t_end - request.min_duration
        if latest < request.t_start:
            return []
        starts = {request.t_start}
        for timeline in (
            ledger.ingress_timeline(request.ingress),
            ledger.egress_timeline(request.egress),
        ):
            for t in timeline.breakpoints():
                if request.t_start < t <= latest:
                    starts.add(float(t))
        return sorted(starts)

    def _admit(
        self, ledger: PortLedger, request: Request
    ) -> tuple[Allocation | None, int, str]:
        """Decide one arrival against the live ledger (committing on accept).

        Returns ``(allocation, candidates_examined, reject_reason)`` —
        the allocation is ``None`` on rejection.  Subclasses override this
        to append fallback admission modes after the constant-rate search.
        """
        examined = 0
        for sigma in self._candidate_starts(ledger, request):
            examined += 1
            bw = self.policy.assign(request, sigma)
            if bw is None:
                continue
            tau = sigma + request.volume / bw
            if tau > request.t_end * (1 + 1e-12):
                continue
            if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
                ledger.allocate(request.ingress, request.egress, sigma, tau, bw)
                return Allocation.for_request(request, bw, sigma=sigma), examined, ""
        return None, examined, "capacity"

    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        result = self._new_result(policy=self.policy.name)
        ledger = PortLedger(problem.platform)
        tel = get_telemetry()
        for request in problem.requests.sorted_by_arrival():
            allocation, examined, reason = self._admit(ledger, request)
            if allocation is not None:
                result.accept(allocation)
            else:
                result.reject(request.rid, reason)
            if tel.enabled:
                tel.metrics.counter(
                    "scheduler_candidates_examined_total",
                    "Candidate start times examined by book-ahead search, per scheduler.",
                ).inc(float(examined), scheduler=self.name)
        self._observe_schedule(problem, result)
        return result


@dataclass
class GuaranteedProfile(EarliestStartFlexible):
    """Book-ahead admission with a shaped stepwise-profile fallback.

    Runs exactly the parent's earliest-feasible-start search first, so a
    request any constant rate can serve books the same allocation the
    ``bookahead`` family would (decision-identical on those requests).
    Only when *every* constant-rate candidate is rejected does the variant
    ask :func:`~repro.core.booking.shape_profile` to carve a stepwise,
    volume-conserving :class:`~repro.core.profile.RateProfile` out of the
    pair's residual capacity valleys — accepting transfers that fit the
    window only at a time-varying rate.  Requests even shaping cannot
    place reject as ``profile-infeasible``, keeping the two admission
    models separable in reject tallies.
    """

    def __post_init__(self) -> None:
        self.name = f"guaranteed-profile[{self.policy.name}]"

    def _admit(
        self, ledger: PortLedger, request: Request
    ) -> tuple[Allocation | None, int, str]:
        allocation, examined, reason = super()._admit(ledger, request)
        if allocation is not None:
            return allocation, examined, reason
        shaped = shape_profile(ledger, request)
        if shaped is None:
            return None, examined, RejectReason.PROFILE_INFEASIBLE.value
        ledger.allocate_segments(request.ingress, request.egress, shaped.segments)
        tel = get_telemetry()
        if tel.enabled:
            tel.metrics.counter(
                "scheduler_shaped_accepts_total",
                "Requests admitted via the shaped-profile fallback, per scheduler.",
            ).inc(scheduler=self.name)
        return Allocation.for_profile(request, shaped), examined, ""
