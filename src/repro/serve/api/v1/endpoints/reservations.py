"""Reservation lifecycle endpoints: submit / batch-submit / status / cancel.

Submissions are *validated at the edge* (a malformed body or a
structurally impossible request is a 400 before it reaches the batching
frontier), then parked on the frontier until their wave flushes through
the gateway.  Status reads are pure; ``?explain=1`` upgrades a status
read into the PR-8 causal story (:func:`repro.obs.causal.explain_request`
over the live telemetry + journal).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from .....core.errors import InvalidRequestError
from .....core.profile import RateProfile
from .....core.request import Request
from ....deps import RequestContext
from ....http import HttpError, HttpRequest, HttpResponse

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .....gateway.gateway import Ticket

__all__ = ["handle_cancel", "handle_status", "handle_submit", "handle_submit_batch"]

#: Refuse pathological bulk submissions before they park on the frontier.
MAX_BATCH_SUBMISSIONS = 512


def parse_submission(body: Any, ctx: RequestContext) -> tuple[dict[str, Any], float]:
    """One submission dict → gateway ``submit`` keywords + observed ``at``.

    Raises :class:`HttpError` 400 on anything the gateway would refuse as
    *malformed* (as opposed to *rejected*): missing fields, wrong types,
    non-positive volume, a deadline before the arrival instant.
    """
    if not isinstance(body, dict):
        raise HttpError(400, "submission must be a JSON object")
    try:
        ingress = int(body["ingress"])
        egress = int(body["egress"])
        volume = float(body["volume"])
        deadline = float(body["deadline"])
    except KeyError as exc:
        raise HttpError(400, f"submission is missing field {exc.args[0]!r}") from exc
    except (TypeError, ValueError) as exc:
        raise HttpError(400, f"submission field has a wrong type: {exc}") from exc
    max_rate = body.get("max_rate")
    if max_rate is not None:
        max_rate = float(max_rate)
    at = float(body.get("at", ctx.now))
    if not math.isfinite(at):
        raise HttpError(400, f"at must be finite, got {at}")
    at = ctx.app.clock.observe(at)
    platform = ctx.app.gateway.platform
    if not (0 <= ingress < platform.num_ingress):
        raise HttpError(400, f"unknown ingress port {ingress}")
    if not (0 <= egress < platform.num_egress):
        raise HttpError(400, f"unknown egress port {egress}")
    probe_rate = max_rate if max_rate is not None else platform.bottleneck(ingress, egress)
    try:
        # Structural validation without burning a rid: the gateway would
        # raise InvalidRequestError *after* the wave closed, poisoning
        # innocent wave-mates; the probe front-loads it onto this caller.
        Request(
            rid=0,
            ingress=ingress,
            egress=egress,
            volume=volume,
            t_start=at,
            t_end=deadline,
            max_rate=probe_rate,
        )
    except InvalidRequestError as exc:
        raise HttpError(400, f"invalid submission: {exc}") from exc
    fields: dict[str, Any] = {
        "ingress": ingress,
        "egress": egress,
        "volume": volume,
        "deadline": deadline,
        "client": ctx.client,
    }
    if max_rate is not None:
        fields["max_rate"] = max_rate
    profile = body.get("profile")
    if profile is not None:
        # A stepwise (malleable) rate shape: [[t0, t1, rate], ...] in
        # absolute seconds, delivering exactly ``volume`` MB.  Malformed
        # shapes and volume mismatches are the caller's 400, front-loaded
        # here for the same wave-mate-protection reason as the Request
        # probe above.
        try:
            wanted = RateProfile.maybe_from(profile)
        except (TypeError, ValueError) as exc:
            raise HttpError(400, f"invalid profile: {exc}") from exc
        if wanted is None or not wanted:
            raise HttpError(400, "profile must be a non-empty list of [t0, t1, rate]")
        if not wanted.conserves(volume):
            raise HttpError(
                400,
                f"profile delivers {wanted.volume} MB but the submission asks for {volume} MB",
            )
        fields["profile"] = wanted
    return fields, at


def decision_payload(ticket: Ticket, now: float) -> dict[str, Any]:
    """The JSON decision a submitter gets back (single and batch)."""
    if ticket.edge_refused:
        retry = ticket.retry_after
        return {
            "rid": ticket.rid,
            "outcome": "edge-refused",
            "retry_after": None if retry is None or math.isinf(retry) else retry,
        }
    reservation = ticket.reservation
    if reservation is None:  # pragma: no cover - waves always drain
        return {"rid": ticket.rid, "outcome": "pending"}
    payload: dict[str, Any] = {
        "rid": ticket.rid,
        "outcome": "accepted" if reservation.confirmed else "rejected",
        "state": reservation.state(now).value,
    }
    if reservation.allocation is not None:
        alloc = reservation.allocation
        payload["allocation"] = {
            "sigma": alloc.sigma,
            "tau": alloc.tau,
            "bw": alloc.bw,
            "ingress": alloc.ingress,
            "egress": alloc.egress,
        }
        if alloc.profile is not None:
            # Key present only for stepwise grants: constant-rate
            # decision payloads stay byte-identical.
            payload["allocation"]["profile"] = alloc.profile.to_list()
    if reservation.reject_reason is not None:
        payload["reason"] = reservation.reject_reason.value
    return payload


async def handle_submit(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    """``POST /v1/reservations`` — one submission, decided when its wave flushes."""
    fields, at = parse_submission(request.json(), ctx)
    try:
        ticket = await ctx.app.frontier.submit(fields, at=at)
    except InvalidRequestError as exc:
        # The parse-time probe validates against the *observed* arrival
        # instant, but the wave flushes later — a knife-edge window can
        # become infeasible in between.  Still the caller's 400, not a
        # service fault.
        raise HttpError(400, f"invalid submission: {exc}") from exc
    ctx.app.note_decision(ticket)
    payload = decision_payload(ticket, ctx.app.clock.now())
    if ticket.edge_refused:
        response = HttpResponse(status=429, payload=payload)
        retry = payload.get("retry_after")
        if retry is not None:
            response.headers["Retry-After"] = f"{max(0.0, float(retry)):.3f}"
        return response
    status = 201 if payload["outcome"] == "accepted" else 200
    return HttpResponse(status=status, payload=payload)


async def handle_submit_batch(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    """``POST /v1/reservations/batch`` — a client-side wave of submissions.

    The whole wave parks on the frontier together (one quota charge per
    submission was already applied by the caller's context) and the
    response carries one decision per entry, in order — an entry that
    fails validation (at parse or at flush) reports ``outcome:
    "invalid"`` in its own slot while its wave-mates decide normally.
    """
    body = request.json()
    if not isinstance(body, dict) or not isinstance(body.get("submissions"), list):
        raise HttpError(400, 'batch body must be {"submissions": [...]}')
    submissions = body["submissions"]
    if not submissions:
        raise HttpError(400, "batch is empty")
    if len(submissions) > MAX_BATCH_SUBMISSIONS:
        raise HttpError(413, f"batch of {len(submissions)} exceeds {MAX_BATCH_SUBMISSIONS}")
    # Per-entry parsing: one stale or malformed entry must not 400 the
    # whole batch (a closed-loop client fleet can outrun its own plan's
    # windows; only the stale entries should pay).
    parsed: list[tuple[dict[str, Any], float] | None] = []
    parse_errors: dict[int, str] = {}
    for index, entry in enumerate(submissions):
        try:
            parsed.append(parse_submission(entry, ctx))
        except HttpError as exc:
            parsed.append(None)
            parse_errors[index] = exc.message
    live = [pair for pair in parsed if pair is not None]
    results = await ctx.app.frontier.submit_wave(live) if live else []
    now = ctx.app.clock.now()
    decisions: list[dict[str, Any]] = []
    cursor = iter(results)
    for index, pair in enumerate(parsed):
        if pair is None:
            decisions.append({"outcome": "invalid", "error": parse_errors[index]})
            continue
        result = next(cursor)
        if isinstance(result, InvalidRequestError):
            # A wave-mate that went infeasible at flush time fails alone:
            # its slot reports the fault, every other decision stands.
            decisions.append({"outcome": "invalid", "error": str(result)})
            continue
        if isinstance(result, BaseException):
            raise result
        ctx.app.note_decision(result)
        decisions.append(decision_payload(result, now))
    return HttpResponse(status=200, payload={"decisions": decisions})


def _rid_of(request: HttpRequest) -> int:
    raw = request.params.get("rid", "")
    try:
        return int(raw)
    except ValueError as exc:
        raise HttpError(400, f"reservation id must be an integer, got {raw!r}") from exc


async def handle_status(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    """``GET /v1/reservations/{rid}`` (+ ``?explain=1`` causal story)."""
    rid = _rid_of(request)
    try:
        ticket = ctx.app.gateway.get(rid)
    except KeyError:
        return HttpResponse.error(404, f"unknown reservation {rid}")
    now = ctx.app.clock.now()
    payload = decision_payload(ticket, now)
    payload.update(
        client=ticket.client,
        request={
            "ingress": ticket.request.ingress,
            "egress": ticket.request.egress,
            "volume": ticket.request.volume,
            "deadline": ticket.request.t_end,
            "t_start": ticket.request.t_start,
        },
    )
    if request.query.get("explain") in ("1", "true", "yes"):
        payload["explain"] = ctx.app.explain(rid)
    return HttpResponse(status=200, payload=payload)


async def handle_cancel(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    """``DELETE /v1/reservations/{rid}`` — release the unconsumed tail."""
    rid = _rid_of(request)
    try:
        released = ctx.app.gateway.cancel(rid, now=ctx.app.clock.now())
    except KeyError:
        return HttpResponse.error(404, f"unknown reservation {rid}")
    return HttpResponse(status=200, payload={"rid": rid, "released": released})
