"""``GET /v1/headroom`` — per-port capacity, committed peak, and headroom.

Reads the gateway's cached peak index (the same O(1) surface the
admission fast path uses), so the endpoint stays cheap enough to poll:
no port-timeline rescans, no admission-path interference.
"""

from __future__ import annotations

from typing import Any

from ....deps import RequestContext
from ....http import HttpRequest, HttpResponse

__all__ = ["handle_headroom"]


async def handle_headroom(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    gateway = ctx.app.gateway
    platform = gateway.platform
    payload: dict[str, Any] = {"now": ctx.app.clock.now(), "ports": {}}
    for side, count, cap_of in (
        ("ingress", platform.num_ingress, platform.bin),
        ("egress", platform.num_egress, platform.bout),
    ):
        rows = []
        for port in range(count):
            capacity = cap_of(port)
            peak = gateway.coordinator.broker_for(side, port).cached_peak(side, port)
            rows.append(
                {
                    "port": port,
                    "capacity": capacity,
                    "peak": peak,
                    "headroom": capacity - peak,
                }
            )
        payload["ports"][side] = rows
    return HttpResponse(status=200, payload=payload)
