"""``GET /healthz`` — liveness with live SLO verdicts.

The verdicts come straight from the gateway's
:class:`~repro.obs.slo.SloWatchdog` (the same watchdog the chaos matrix
audits): 200 while every rule is currently satisfied, 503 while any rule
is actively breached — edge-triggered history rides along so an operator
sees *what* broke and when, not just that something did.
"""

from __future__ import annotations

from typing import Any

from ....deps import RequestContext
from ....http import HttpRequest, HttpResponse

__all__ = ["handle_healthz"]


async def handle_healthz(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    app = ctx.app
    payload: dict[str, Any] = {
        "status": "draining" if app.draining else "serving",
        "now": app.clock.now(),
        "pending": len(app.frontier),
        "stats": {
            "submits": app.gateway.stats.submits,
            "accepted": app.gateway.stats.accepted,
            "rejected": app.gateway.stats.rejected,
            "edge_refused": app.gateway.stats.edge_refused,
        },
    }
    healthy = not app.draining
    watchdog = app.gateway.slo
    if watchdog is not None:
        payload["slo"] = {
            "ok": watchdog.ok,
            "active": list(watchdog.active),
            "breaches": [breach.to_dict() for breach in watchdog.breaches],
        }
        healthy = healthy and watchdog.healthy
    return HttpResponse(status=200 if healthy else 503, payload=payload)
