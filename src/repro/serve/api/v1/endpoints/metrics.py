"""``GET /metrics`` — Prometheus text exposition of the live registry.

Nothing new is computed here: the gateway, frontier and HTTP edge
already publish into the app's :class:`~repro.obs.metrics.MetricsRegistry`;
this endpoint renders it with the registry's own deterministic text
exposition (sorted families, sorted label sets).
"""

from __future__ import annotations

from ....deps import RequestContext
from ....http import HttpRequest, HttpResponse

__all__ = ["handle_metrics"]


async def handle_metrics(ctx: RequestContext, request: HttpRequest) -> HttpResponse:
    text = ctx.app.telemetry.metrics.to_prometheus_text()
    return HttpResponse(
        status=200, text=text, content_type="text/plain; version=0.0.4; charset=utf-8"
    )
