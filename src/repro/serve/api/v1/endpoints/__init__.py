"""One module per resource; every ``handle_*`` coroutine here must be
registered in :data:`repro.serve.routes.ROUTE_TABLE` (gridlint GL015)."""
