"""API v1: admission, lifecycle, headroom, health and metrics endpoints."""
