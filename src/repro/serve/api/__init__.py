"""Versioned HTTP API packages (``repro.serve.api.v1``)."""
