"""The batching frontier: concurrent HTTP submits → vectorized gateway waves.

Without it, every HTTP submission would reach the gateway alone and the
batcher (sized for admission throughput) would only ever see singleton
batches.  The frontier restores the batch structure the gateway was
built for: in-flight submissions accumulate while the event loop is busy
and are released as one wave —

- immediately once ``max_wave`` submissions are pending, or
- after ``max_delay_s`` wall seconds, whichever comes first —

with every member submitted at a single simulated instant (so the
gateway's "a batch never mixes instants" invariant holds by
construction) before the trailing partial batch is drained.  Each
caller's coroutine parks on a future and resumes with its decided
:class:`~repro.gateway.gateway.Ticket`; a structurally invalid
submission fails only its own future, never its wave-mates.

The flush itself is synchronous: the gateway never awaits, so a wave is
decided atomically between event-loop steps — no interleaving hazards,
no locks.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any

from ..core.errors import ConfigurationError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..gateway import Gateway
    from ..gateway.gateway import Ticket
    from .clock import ServiceClock

__all__ = ["AdmissionFrontier"]


class AdmissionFrontier:
    """Coalesces concurrent submits into :meth:`Gateway.submit_many` waves."""

    def __init__(
        self,
        gateway: Gateway,
        clock: ServiceClock,
        *,
        max_wave: int = 64,
        max_delay_s: float = 0.002,
    ) -> None:
        if max_wave <= 0:
            raise ConfigurationError(f"max_wave must be positive, got {max_wave}")
        if max_delay_s < 0:
            raise ConfigurationError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.gateway = gateway
        self.clock = clock
        self.max_wave = max_wave
        self.max_delay_s = max_delay_s
        self._pending: list[tuple[dict[str, Any], asyncio.Future[Ticket]]] = []
        self._timer: asyncio.TimerHandle | None = None
        self.waves = 0
        self.coalesced = 0

    def __len__(self) -> int:
        return len(self._pending)

    async def submit(self, fields: dict[str, Any], *, at: float) -> Ticket:
        """Park one submission; resumes with the decided ticket.

        ``fields`` are the :meth:`Gateway.submit` keywords minus ``now``;
        ``at`` is the client-observed simulated time (the wave flushes at
        the clock's reading when it closes, which is ≥ ``at``).
        """
        self.clock.observe(at)
        loop = asyncio.get_running_loop()
        future: asyncio.Future[Ticket] = loop.create_future()
        self._pending.append((fields, future))
        if len(self._pending) >= self.max_wave:
            self.flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_delay_s, self.flush)
        return await future

    async def submit_wave(
        self, entries: list[tuple[dict[str, Any], float]]
    ) -> list[Ticket | BaseException]:
        """Park a client-side batch in one go (``(fields, at)`` pairs).

        Every entry joins the pending wave *before* the first await, so a
        bulk submission coalesces with itself and with any concurrent
        singles already parked.  The caller grouped these deliberately —
        the wave is complete by definition — so it flushes immediately
        rather than lingering on the timer.
        """
        loop = asyncio.get_running_loop()
        futures: list[asyncio.Future[Ticket]] = []
        for fields, at in entries:
            self.clock.observe(at)
            future: asyncio.Future[Ticket] = loop.create_future()
            self._pending.append((fields, future))
            futures.append(future)
            if len(self._pending) >= self.max_wave:
                self.flush()
        self.flush()
        # gather(return_exceptions=True) so one malformed entry surfaces
        # on its own slot instead of abandoning the rest of the batch
        # (abandoned futures would log "exception was never retrieved").
        return await asyncio.gather(*futures, return_exceptions=True)

    def flush(self) -> None:
        """Decide every parked submission as one wave (synchronous)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        wave, self._pending = self._pending, []
        now = self.clock.now()
        self.waves += 1
        self.coalesced += len(wave)
        # Submit entries one by one so a malformed submission fails only
        # its own future — the rest of the wave still shares one instant.
        accepted: list[tuple[asyncio.Future[Ticket], Ticket]] = []
        for fields, future in wave:
            try:
                accepted.append((future, self.gateway.submit(**fields, now=now)))
            except ReproError as exc:
                if not future.done():
                    future.set_exception(exc)
        # Decide the trailing partial batch, then resolve — tickets are
        # mutated in place when their batch flushes, so resolution must
        # wait until every member of the wave is decided.
        if len(self.gateway.batcher):
            self.gateway.drain(now)
        for future, ticket in accepted:
            if not future.done():
                future.set_result(ticket)

    async def quiesce(self) -> None:
        """Drain hook: decide everything in flight (graceful shutdown)."""
        self.flush()
        # One loop tick so resumed submitters observe their decisions
        # before the caller proceeds with shutdown.
        await asyncio.sleep(0)
