"""The service's route table: every endpoint, declared in one place.

Handlers live under :mod:`repro.serve.api.v1.endpoints` (one module per
resource, the FastAPI layering); this module is the registry that makes
them reachable.  Gridlint GL015 (route-registry completeness) checks the
inverse direction project-wide: an endpoint module may not define a
``handle_*`` coroutine that this table forgets — a forgotten handler
would silently 404 instead of failing the build.

Patterns are literal segments plus ``{name}`` captures (bound into
:attr:`HttpRequest.params` as strings).  Dispatch distinguishes 404
(no pattern matched) from 405 (pattern matched, method didn't).
"""

from __future__ import annotations

from collections.abc import Awaitable, Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.errors import ConfigurationError
from .api.v1.endpoints.headroom import handle_headroom
from .api.v1.endpoints.health import handle_healthz
from .api.v1.endpoints.metrics import handle_metrics
from .api.v1.endpoints.reservations import (
    handle_cancel,
    handle_status,
    handle_submit,
    handle_submit_batch,
)
from .http import HttpRequest, HttpResponse

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .deps import RequestContext

Handler = Callable[["RequestContext", HttpRequest], Awaitable[HttpResponse]]

__all__ = ["ROUTE_TABLE", "Route", "Router"]


@dataclass(frozen=True)
class Route:
    """One (method, pattern) → handler binding."""

    method: str
    pattern: str
    handler: Handler

    def segments(self) -> tuple[str, ...]:
        return tuple(seg for seg in self.pattern.split("/") if seg)


#: The complete public API surface, v1.
ROUTE_TABLE: tuple[Route, ...] = (
    Route("POST", "/v1/reservations", handle_submit),
    Route("POST", "/v1/reservations/batch", handle_submit_batch),
    Route("GET", "/v1/reservations/{rid}", handle_status),
    Route("DELETE", "/v1/reservations/{rid}", handle_cancel),
    Route("GET", "/v1/headroom", handle_headroom),
    Route("GET", "/healthz", handle_healthz),
    Route("GET", "/metrics", handle_metrics),
)


@dataclass(frozen=True)
class Resolution:
    """The outcome of routing one (method, path)."""

    handler: Handler | None
    params: dict[str, str]
    path_known: bool
    #: The matched route pattern — the bounded-cardinality metrics label.
    pattern: str | None


class Router:
    """Matches (method, path) against the table; binds path params."""

    def __init__(self, routes: tuple[Route, ...] = ROUTE_TABLE) -> None:
        seen: set[tuple[str, str]] = set()
        for route in routes:
            key = (route.method, route.pattern)
            if key in seen:
                raise ConfigurationError(f"duplicate route {key}")
            seen.add(key)
        self.routes = routes

    def resolve(self, method: str, path: str) -> Resolution:
        """Match one request target against the table.

        A resolution without a handler means 405 when ``path_known`` (some
        pattern matched, the method didn't) and 404 otherwise.
        """
        parts = tuple(seg for seg in path.split("/") if seg)
        path_known = False
        for route in self.routes:
            params = _match(route.segments(), parts)
            if params is None:
                continue
            path_known = True
            if route.method == method:
                return Resolution(
                    handler=route.handler,
                    params=params,
                    path_known=True,
                    pattern=route.pattern,
                )
        return Resolution(handler=None, params={}, path_known=path_known, pattern=None)


def _match(
    pattern: tuple[str, ...], parts: tuple[str, ...]
) -> dict[str, str] | None:
    if len(pattern) != len(parts):
        return None
    params: dict[str, str] = {}
    for expected, got in zip(pattern, parts):
        if expected.startswith("{") and expected.endswith("}"):
            params[expected[1:-1]] = got
        elif expected != got:
            return None
    return params
