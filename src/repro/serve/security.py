"""API-key authentication and per-client request quotas.

The admission gateway already rate-limits *volume* per client through
its :class:`~repro.gateway.edge.EdgeLimit` token buckets; the service
layers two edges in front of that:

1. **Authentication** — a static keyring mapping bearer keys to client
   identities.  Keys arrive as ``Authorization: Bearer <key>`` or
   ``X-API-Key``; an unknown or missing key is a 401 before any work.
2. **Request quota** — a per-client token bucket over *request count*
   (not volume), so a single client cannot monopolise the event loop no
   matter how small its submissions are.  Refusals are 429 with a
   ``Retry-After`` hint from the same earliest-conforming arithmetic the
   gateway edge uses (exact-refill boundary included).

Both reuse :class:`~repro.control.token_bucket.TokenBucket` — no new
mechanism, just the existing deterministic primitive fed the service
clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..control.token_bucket import TokenBucket
from ..core.errors import ConfigurationError

__all__ = ["ApiKeyring", "ClientQuota", "QuotaDecision", "QuotaLimiter"]


class ApiKeyring:
    """Static key → client-identity mapping (deterministic, no secrets RNG)."""

    def __init__(self, keys: dict[str, str] | None = None) -> None:
        self._keys = dict(keys or {})

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def open_access(self) -> bool:
        """An empty keyring disables authentication (dev / bench mode)."""
        return not self._keys

    def client_for(self, key: str | None) -> str | None:
        """The client identity owning ``key``; ``None`` = refuse."""
        if self.open_access:
            return "anonymous" if key is None else self._keys.get(key, "anonymous")
        if key is None:
            return None
        return self._keys.get(key)

    @classmethod
    def generate(cls, clients: int, *, prefix: str = "client") -> ApiKeyring:
        """A deterministic keyring for tests and the load harness.

        Key material is *not* secret here — the harness needs stable,
        reproducible credentials, not entropy.  Production deployments
        load real keys from a file (``grid-serve --keys``).
        """
        if clients <= 0:
            raise ConfigurationError(f"need a positive client count, got {clients}")
        return cls(
            {f"key-{prefix}-{i:06d}": f"{prefix}-{i:06d}" for i in range(clients)}
        )

    def keys(self) -> dict[str, str]:
        """A copy of the mapping (loadgen hands keys to its clients)."""
        return dict(self._keys)


@dataclass(frozen=True, slots=True)
class ClientQuota:
    """Per-client request quota: sustained ``rate`` req/s, ``burst`` requests."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ConfigurationError(
                f"quota needs positive rate and burst, got ({self.rate}, {self.burst})"
            )

    def to_dict(self) -> dict[str, float]:
        return {"rate": self.rate, "burst": self.burst}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ClientQuota:
        return cls(rate=float(data["rate"]), burst=float(data["burst"]))


@dataclass(frozen=True, slots=True)
class QuotaDecision:
    """One quota verdict: admitted, or refused with a retry hint."""

    admitted: bool
    retry_after: float = 0.0


class QuotaLimiter:
    """Lazily-created per-client request-count buckets (cf. ``EdgeLimiter``)."""

    __slots__ = ("quota", "_buckets", "admitted", "refused")

    def __init__(self, quota: ClientQuota) -> None:
        self.quota = quota
        self._buckets: dict[str, TokenBucket] = {}
        self.admitted = 0
        self.refused = 0

    def check(self, client: str, now: float, *, cost: float = 1.0) -> QuotaDecision:
        """Charge ``cost`` requests against the client's bucket.

        The retry hint follows the edge-limit boundary convention: at
        exactly ``now + retry_after`` the same cost conforms.
        """
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(rate=self.quota.rate, burst=self.quota.burst)
            bucket.reset(now)
            self._buckets[client] = bucket
        if bucket.offer(now, cost):
            self.admitted += 1
            return QuotaDecision(admitted=True)
        self.refused += 1
        retry = max(0.0, bucket.earliest_conforming(now, cost) - now)
        return QuotaDecision(admitted=False, retry_after=retry)

    def clients(self) -> list[str]:
        """Every client charged so far (deterministic order)."""
        return sorted(self._buckets)
