"""``repro.serve`` — the asyncio admission service plane.

Everything below this package runs *online*: requests arrive over a real
network boundary (HTTP/1.1 on asyncio streams, stdlib only), are
authenticated and rate-limited per client, coalesced by the batching
frontier into :class:`~repro.gateway.Gateway` flushes, and answered with
the gateway's decision.  The gateway itself stays a deterministic,
simulated-time library — the service maps wall-clock onto the gateway's
forward-only clock at exactly one seam (:mod:`repro.serve.clock`, the
GL001-allowlisted module) and journals every state change, so a drained
service restarts via :meth:`~repro.gateway.Gateway.replay` into a
snapshot-equal state.

Layering (the FastAPI idiom on stdlib):

- :mod:`repro.serve.http` — wire format: request parsing, responses;
- :mod:`repro.serve.routes` — the route table (method, pattern) → handler;
- :mod:`repro.serve.api.v1.endpoints` — one module per resource;
- :mod:`repro.serve.deps` — per-request context resolution (auth, app);
- :mod:`repro.serve.security` — API keys and per-client request quotas;
- :mod:`repro.serve.frontier` — the batching frontier (submit hot path);
- :mod:`repro.serve.app` — :class:`ServeApp`: wiring + lifecycle;
- :mod:`repro.serve.cli` — the ``grid-serve`` entry point.
"""

from __future__ import annotations

from .app import ServeApp, ServeConfig
from .clock import LogicalClock, ServiceClock, WallServiceClock
from .frontier import AdmissionFrontier
from .http import HttpError, HttpRequest, HttpResponse
from .routes import ROUTE_TABLE, Route, Router
from .security import ApiKeyring, ClientQuota, QuotaLimiter

__all__ = [
    "ROUTE_TABLE",
    "AdmissionFrontier",
    "ApiKeyring",
    "ClientQuota",
    "HttpError",
    "HttpRequest",
    "HttpResponse",
    "LogicalClock",
    "QuotaLimiter",
    "Route",
    "Router",
    "ServeApp",
    "ServeConfig",
    "ServiceClock",
    "WallServiceClock",
]
