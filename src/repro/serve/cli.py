"""``grid-serve`` — run the admission service as a long-lived process.

Boots a :class:`~repro.serve.app.ServeApp` on a uniform or paper
platform, installs SIGTERM/SIGINT handlers for graceful drain (decide
in-flight waves, persist the journal, close sockets), and blocks until
drained.  A journal path makes the process restartable: re-running with
the same ``--journal`` replays the recorded operations and resumes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from pathlib import Path

from ..core.platform import Platform
from ..gateway import EdgeLimit
from .app import ServeApp, ServeConfig
from .security import ApiKeyring, ClientQuota

__all__ = ["build_app", "main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-serve",
        description="Long-running HTTP admission service over the sharded gateway.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--ports", type=int, default=16, help="ingress/egress port count (uniform platform)"
    )
    parser.add_argument(
        "--capacity", type=float, default=1000.0, help="per-port capacity (MB/s)"
    )
    parser.add_argument(
        "--paper-platform",
        action="store_true",
        help="use the paper's 10x10 heterogeneous platform instead of --ports/--capacity",
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--batch-size", type=int, default=8)
    parser.add_argument("--ordering", default="fifo", choices=["fifo", "min-laxity", "max-value"])
    parser.add_argument("--backlog-limit", type=int, default=0)
    parser.add_argument(
        "--malleable",
        action="store_true",
        help="enable stepwise-profile admission: shaped fallback and reshape recovery",
    )
    parser.add_argument(
        "--journal", type=Path, default=None, help="write-ahead journal path (restartable)"
    )
    parser.add_argument(
        "--keys",
        type=Path,
        default=None,
        help='JSON file mapping API key -> client id; omit for open access',
    )
    parser.add_argument(
        "--gen-keys",
        type=int,
        default=0,
        metavar="N",
        help="generate N deterministic client keys instead of --keys (bench mode)",
    )
    parser.add_argument(
        "--quota-rate", type=float, default=None, help="per-client sustained requests/s"
    )
    parser.add_argument(
        "--quota-burst", type=float, default=None, help="per-client request burst"
    )
    parser.add_argument(
        "--edge-rate", type=float, default=None, help="per-client sustained volume MB/s"
    )
    parser.add_argument(
        "--edge-burst", type=float, default=None, help="per-client volume burst MB"
    )
    parser.add_argument("--max-wave", type=int, default=64)
    parser.add_argument("--max-delay-ms", type=float, default=2.0)
    parser.add_argument(
        "--no-slo", action="store_true", help="disable the SLO watchdog entirely"
    )
    return parser


def build_app(args: argparse.Namespace) -> ServeApp:
    """Translate parsed CLI arguments into a configured app."""
    platform = (
        Platform.paper_platform()
        if args.paper_platform
        else Platform.uniform(args.ports, args.ports, args.capacity)
    )
    keys: dict[str, str] = {}
    if args.keys is not None:
        keys = {str(k): str(v) for k, v in json.loads(args.keys.read_text()).items()}
    elif args.gen_keys:
        keys = ApiKeyring.generate(args.gen_keys).keys()
    quota = None
    if args.quota_rate is not None or args.quota_burst is not None:
        quota = ClientQuota(
            rate=args.quota_rate if args.quota_rate is not None else 50.0,
            burst=args.quota_burst if args.quota_burst is not None else 100.0,
        )
    edge = None
    if args.edge_rate is not None or args.edge_burst is not None:
        edge = EdgeLimit(
            rate=args.edge_rate if args.edge_rate is not None else 1000.0,
            burst=args.edge_burst if args.edge_burst is not None else 10_000.0,
        )
    config = ServeConfig(
        platform=platform,
        num_shards=args.shards,
        batch_size=args.batch_size,
        ordering=args.ordering,
        backlog_limit=args.backlog_limit,
        malleable=args.malleable,
        edge=edge,
        quota=quota,
        keys=keys,
        slo_rules=() if args.no_slo else None,
        journal_path=args.journal,
        max_wave=args.max_wave,
        max_delay_s=args.max_delay_ms / 1000.0,
    )
    return ServeApp(config)


async def _run(app: ServeApp, host: str, port: int) -> None:
    bound_host, bound_port = await app.start(host, port)
    print(f"grid-serve listening on http://{bound_host}:{bound_port}", flush=True)
    drained = asyncio.Event()
    loop = asyncio.get_running_loop()

    def _begin_drain() -> None:
        if not app.draining:
            print("grid-serve draining (SIGTERM/SIGINT)...", flush=True)
            task = loop.create_task(app.drain())
            task.add_done_callback(lambda _: drained.set())

    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, _begin_drain)
    await drained.wait()
    decided = app.gateway.stats.accepted + app.gateway.stats.rejected
    print(
        f"grid-serve drained: {app.gateway.stats.submits} submits, "
        f"{decided} decided, journal entries: {len(app.journal)}",
        flush=True,
    )


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    app = build_app(args)
    try:
        asyncio.run(_run(app, args.host, args.port))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C before loop start
        return 130
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
