"""The wall-clock ↔ simulated-time seam — the service plane's GL001 exemption.

The gateway's clock is simulated, forward-only, and journaled; the
service is a real process whose requests arrive on wall-clock time.
This module is the **only** place in ``repro.serve`` allowed to read the
host clock (gridlint GL001 allowlists exactly ``serve/clock.py``; see
docs/ANALYSIS.md): a :class:`WallServiceClock` maps monotonic host
seconds onto the gateway's time axis, while the deterministic
:class:`LogicalClock` lets tests and the decision-equivalence suites
drive the *identical* service code with explicit, replayable timestamps.

Both expose the same two readings:

- :meth:`ServiceClock.now` — simulated seconds, fed to every gateway
  call and therefore journaled; monotone non-decreasing by construction.
- :meth:`ServiceClock.perf` — wall seconds for latency *measurement*
  only (histograms, loadgen percentiles); never journaled, never part of
  any admission decision or replayed state.
"""

from __future__ import annotations

import time
from typing import Protocol

from ..core.errors import ConfigurationError

__all__ = ["LogicalClock", "ServiceClock", "WallServiceClock"]


class ServiceClock(Protocol):
    """The two time axes a service needs (see module docstring)."""

    def now(self) -> float:
        """Current *simulated* seconds — monotone, journal-safe."""
        ...  # pragma: no cover - protocol

    def perf(self) -> float:
        """A monotonic reading for wall-latency measurement only."""
        ...  # pragma: no cover - protocol

    def observe(self, at: float) -> float:
        """Fold a client-supplied timestamp into the clock; returns the
        effective simulated time (≥ every previous reading)."""
        ...  # pragma: no cover - protocol


class WallServiceClock:
    """Maps the host's monotonic clock onto the gateway's time axis.

    ``origin`` anchors the simulated axis (a restarted service resumes at
    the replayed gateway's clock, not at zero); ``timescale`` converts
    wall seconds to simulated seconds (1.0 = real time).  Client ``at``
    hints are ignored in wall mode — the host clock is authoritative.
    """

    __slots__ = ("_origin", "_timescale", "_start")

    def __init__(self, *, origin: float = 0.0, timescale: float = 1.0) -> None:
        if timescale <= 0:
            raise ConfigurationError(f"timescale must be positive, got {timescale}")
        self._origin = origin
        self._timescale = timescale
        self._start = time.monotonic()

    def now(self) -> float:
        return self._origin + (time.monotonic() - self._start) * self._timescale

    def perf(self) -> float:
        return time.monotonic()

    def observe(self, at: float) -> float:
        return self.now()


class LogicalClock:
    """A deterministic clock driven by the requests themselves.

    Tests and the served-vs-in-process equivalence suite submit with
    explicit ``at`` timestamps; the clock is the running maximum, so the
    gateway's forward-only contract holds whatever order clients land
    in.  :meth:`perf` advances a fixed ``step`` per read — deterministic
    latency measurements for tests that assert on histogram contents.
    """

    __slots__ = ("_now", "_perf", "_step")

    def __init__(self, *, start: float = 0.0, step: float = 0.001) -> None:
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        self._now = start
        self._perf = 0.0
        self._step = step

    def now(self) -> float:
        return self._now

    def perf(self) -> float:
        self._perf += self._step
        return self._perf

    def observe(self, at: float) -> float:
        if at > self._now:
            self._now = at
        return self._now

    def advance(self, to: float) -> float:
        """Explicitly move logical time forward (idempotent on the past)."""
        return self.observe(to)
