"""Minimal HTTP/1.1 on asyncio streams — the service plane's wire format.

Stdlib only (no new runtime dependencies): a hand-rolled, strict-enough
parser for the small JSON API the service exposes.  Supported surface:

- request line + headers + ``Content-Length`` bodies (no chunked
  encoding, no multipart — the API never produces them);
- keep-alive by default (HTTP/1.1), ``Connection: close`` honoured;
- JSON request/response helpers with deterministic serialisation
  (sorted keys — byte-stable responses for byte-stable tests).

Malformed input raises :class:`HttpError`, which the connection loop
turns into a 400 and a closed connection; everything else is the
handlers' business.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

from ..core.errors import ReproError

__all__ = ["HttpError", "HttpRequest", "HttpResponse", "read_request", "render_response"]

#: Hard caps keeping one bad client from ballooning server memory.
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError, ValueError):
    """The peer sent something the parser refuses; maps to a 4xx.

    ``retry_after`` (seconds) rides along on 429s so the edge can emit
    the ``Retry-After`` header without re-deriving bucket state.
    """

    def __init__(
        self, status: int, message: str, *, retry_after: float | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.retry_after = retry_after


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes = b""
    #: Path parameters bound by the router (``{rid}`` segments).
    params: dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        """The body as JSON; :class:`HttpError` 400 on garbage."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}") from exc

    def header(self, name: str, default: str | None = None) -> str | None:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        """Whether the connection survives this exchange."""
        return self.headers.get("connection", "keep-alive").lower() != "close"


@dataclass
class HttpResponse:
    """One response: status, JSON-able payload or raw text body."""

    status: int = 200
    payload: Any = None
    text: str | None = None
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def error(cls, status: int, message: str, **fields: Any) -> HttpResponse:
        """The uniform error envelope every endpoint uses."""
        return cls(status=status, payload={"error": message, **fields})


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "request head exceeds limit") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, f"malformed request line: {lines[0]!r}") from exc
    if not version.startswith("HTTP/1."):
        raise HttpError(400, f"unsupported protocol {version!r}")
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(400, f"bad Content-Length {length_header!r}") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes refused")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
    )


def render_response(response: HttpResponse, *, keep_alive: bool) -> bytes:
    """Serialise a response (deterministic: sorted JSON keys)."""
    if response.text is not None:
        body = response.text.encode("utf-8")
        content_type = response.content_type or "text/plain; charset=utf-8"
    elif response.payload is not None:
        body = json.dumps(
            response.payload, sort_keys=True, separators=(",", ":"), default=str
        ).encode("utf-8")
        content_type = "application/json"
    else:
        body = b""
        content_type = response.content_type
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    if body:
        lines.append(f"Content-Type: {content_type}")
    for name in sorted(response.headers):
        lines.append(f"{name}: {response.headers[name]}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body
