""":class:`ServeApp` — wiring, request dispatch, and lifecycle.

One app owns one :class:`~repro.gateway.Gateway` plus everything the
HTTP boundary needs around it: the service clock, the API keyring, the
per-client request quota, the batching frontier, the telemetry handle
the ``/metrics`` endpoint exposes, and the write-ahead journal that
makes a drained service restartable.

Lifecycle contract (the drain/restart property tests pin this down):

1. ``SIGTERM`` (or :meth:`drain`) flips :attr:`draining` — new mutating
   requests are refused with 503 while reads stay served;
2. the frontier quiesces: every in-flight submission is decided and
   answered (journaled like any other wave);
3. the journal is flushed (write-ahead: it already is) and the server
   sockets close;
4. a successor built with the same journal path replays into a
   snapshot-equal gateway and resumes the clock at the replayed time.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..control.journal import Journal
from ..core.errors import ConfigurationError, ReproError
from ..core.platform import Platform
from ..gateway import EdgeLimit, Gateway
from ..gateway.gateway import Ticket
from ..obs.causal import TraceContext, explain_request
from ..obs.artifact import RunTelemetry
from ..obs.slo import SloRule, SloWatchdog, default_slo_rules
from ..obs.telemetry import Telemetry
from .clock import ServiceClock, WallServiceClock
from .deps import build_context
from .frontier import AdmissionFrontier
from .http import (
    HttpError,
    HttpRequest,
    HttpResponse,
    read_request,
    render_response,
)
from .routes import Router
from .security import ApiKeyring, ClientQuota, QuotaLimiter

__all__ = ["ServeApp", "ServeConfig"]

#: Wall-latency buckets for the HTTP edge (seconds): sub-millisecond to
#: multi-second, log-ish spacing.
REQUEST_LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

#: Telemetry FIFO caps — a long-running service must stay memory-bounded;
#: evictions are counted, not silent (``events_dropped``).
MAX_EVENTS = 50_000
MAX_SPANS = 50_000


@dataclass
class ServeConfig:
    """Everything needed to build (or rebuild) a service instance."""

    platform: Platform
    num_shards: int = 1
    batch_size: int = 8
    ordering: str = "fifo"
    hold_ttl: float = 300.0
    backlog_limit: int = 0
    #: Malleable transfers: shaped-profile fallback after constant-rate
    #: rejects and reshape-before-displace recovery (off = decision-
    #: identical to the constant-rate service).
    malleable: bool = False
    #: Per-client *volume* limit enforced inside the gateway edge.
    edge: EdgeLimit | None = None
    #: Per-client *request-count* quota enforced at the HTTP edge.
    quota: ClientQuota | None = None
    #: API key → client identity; empty = open access (dev / bench).
    keys: dict[str, str] = field(default_factory=dict)
    #: SLO rules for the watchdog; ``None`` = scaled defaults, ``()`` = off.
    slo_rules: tuple[SloRule, ...] | None = None
    #: Write-ahead journal location; ``None`` = in-memory only.
    journal_path: Path | None = None
    #: Frontier shape: wave cap and wall-seconds linger.
    max_wave: int = 64
    max_delay_s: float = 0.002

    def __post_init__(self) -> None:
        if self.journal_path is not None:
            self.journal_path = Path(self.journal_path)


class ServeApp:
    """The service plane around one admission gateway."""

    def __init__(
        self,
        config: ServeConfig,
        *,
        clock: ServiceClock | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config
        self.telemetry = (
            telemetry
            if telemetry is not None
            else Telemetry(max_events=MAX_EVENTS, max_spans=MAX_SPANS)
        )
        rules = (
            default_slo_rules(hold_ttl=config.hold_ttl)
            if config.slo_rules is None
            else config.slo_rules
        )
        watchdog = SloWatchdog(rules) if rules else None
        self.journal, resume = self._attach_journal(config)
        if resume:
            self.gateway = Gateway.resume(
                self.journal, telemetry=self.telemetry, slo=watchdog
            )
        else:
            self.gateway = Gateway(
                config.platform,
                num_shards=config.num_shards,
                batch_size=config.batch_size,
                ordering=config.ordering,
                edge=config.edge,
                hold_ttl=config.hold_ttl,
                backlog_limit=config.backlog_limit,
                malleable=config.malleable,
                journal=self.journal,
                telemetry=self.telemetry,
                slo=watchdog,
            )
        self.clock: ServiceClock = (
            clock if clock is not None else WallServiceClock(origin=max(0.0, self.gateway.now))
        )
        self.keyring = ApiKeyring(config.keys)
        self.quota = QuotaLimiter(config.quota) if config.quota is not None else None
        self.frontier = AdmissionFrontier(
            self.gateway,
            self.clock,
            max_wave=config.max_wave,
            max_delay_s=config.max_delay_s,
        )
        self.router = Router()
        self.draining = False
        self._server: asyncio.base_events.Server | None = None
        self._connections = 0

    @staticmethod
    def _attach_journal(config: ServeConfig) -> tuple[Journal, bool]:
        """The write-ahead journal, plus whether it holds prior history."""
        path = config.journal_path
        if path is None:
            return Journal(), False
        if path.exists() and path.stat().st_size > 0:
            return Journal.load(path), True
        path.parent.mkdir(parents=True, exist_ok=True)
        return Journal(path=path), False

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        if self._server is not None:
            raise ConfigurationError("server already started")
        self._server = await asyncio.start_server(self._serve_connection, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Close the listening sockets (connections finish their request)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, decide in-flight, persist.

        The journal is write-ahead so nothing needs an explicit save; the
        explicit gateway drain makes the final batch flush visible in the
        op stream (``gw_drain``), which is what makes the successor's
        replay land on the *decided* state.
        """
        self.draining = True
        await self.frontier.quiesce()
        self.gateway.drain(self.clock.now())
        await self.stop()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections += 1
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    writer.write(
                        render_response(
                            HttpResponse.error(exc.status, exc.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self.dispatch(request)
                keep = request.keep_alive
                writer.write(render_response(response, keep_alive=keep))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError):
            return  # client went away mid-exchange; nothing to answer
        finally:
            # No await here: the task may be mid-cancellation (loop
            # shutdown), and awaiting wait_closed would re-raise inside
            # finally.  close() is fire-and-forget and sufficient.
            self._connections -= 1
            writer.close()

    async def dispatch(self, request: HttpRequest) -> HttpResponse:
        """Route one request through deps → handler, with edge accounting."""
        start = self.clock.perf()
        resolution = self.router.resolve(request.method, request.path)
        endpoint = resolution.pattern if resolution.pattern is not None else "unrouted"
        try:
            if resolution.handler is None:
                if resolution.path_known:
                    response = HttpResponse.error(405, f"{request.method} not allowed")
                else:
                    response = HttpResponse.error(404, f"no route for {request.path}")
            else:
                request.params = resolution.params
                ctx = build_context(self, request)
                response = await resolution.handler(ctx, request)
        except HttpError as exc:
            response = HttpResponse.error(exc.status, exc.message)
            if exc.retry_after is not None and math.isfinite(exc.retry_after):
                response.headers["Retry-After"] = f"{max(0.0, exc.retry_after):.3f}"
        except ReproError as exc:
            response = HttpResponse.error(500, f"internal error: {exc}")
        self._observe_request(endpoint, request.method, response.status, start)
        return response

    def _observe_request(
        self, endpoint: str, method: str, status: int, start: float
    ) -> None:
        if not self.telemetry.enabled:
            return
        elapsed = max(0.0, self.clock.perf() - start)
        self.telemetry.metrics.counter(
            "serve_requests_total", "HTTP requests by endpoint and status."
        ).inc(endpoint=endpoint, method=method, status=status)
        self.telemetry.metrics.histogram(
            "serve_request_seconds",
            "Wall-clock request latency at the HTTP edge (seconds).",
            buckets=REQUEST_LATENCY_BUCKETS,
        ).observe(elapsed, endpoint=endpoint)

    # ------------------------------------------------------------------
    # Decision-side accounting (submit endpoints)
    # ------------------------------------------------------------------
    def note_decision(self, ticket: Ticket) -> None:
        """Mint the HTTP-edge hop on the request's causal timeline.

        The gateway already owns the root ``req-<rid>`` trace; the edge
        adds its own child span so ``grid-obs explain`` shows where the
        request *entered*, not just how it was decided.
        """
        if not self.telemetry.enabled:
            return
        ctx = TraceContext.root(ticket.rid).child("http")
        outcome = (
            "edge-refused"
            if ticket.edge_refused
            else (
                "accepted"
                if ticket.reservation is not None and ticket.reservation.confirmed
                else "rejected"
            )
        )
        self.telemetry.emit(
            "serve.decision",
            self.clock.now(),
            rid=ticket.rid,
            client=ticket.client,
            outcome=outcome,
            **ctx.fields(),
        )
        self.telemetry.metrics.counter(
            "serve_decisions_total", "Admission decisions served, by outcome."
        ).inc(outcome=outcome)

    # ------------------------------------------------------------------
    # Explain (the PR-8 causal plane over HTTP)
    # ------------------------------------------------------------------
    def explain(self, rid: int) -> str | None:
        """One request's merged journal + telemetry story (or ``None``)."""
        artifact = RunTelemetry("serve-live")
        artifact.capture("serve", self.telemetry)
        return explain_request(artifact, rid, journal=self.journal)

    # ------------------------------------------------------------------
    # Introspection for benches and tests
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The gateway snapshot (state identity across drain/restart)."""
        return self.gateway.snapshot()
