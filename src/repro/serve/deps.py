"""Per-request dependency resolution (the ``deps.py`` of the layering).

Handlers never touch the raw app: they receive a :class:`RequestContext`
that has already resolved who is calling (authentication), whether the
call conforms to the client's request quota, and which app facilities
the endpoint may use.  Building the context is the one place the 401 /
429 / 503 edge responses originate, so every endpoint behaves
identically at the edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .http import HttpError, HttpRequest

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .app import ServeApp

__all__ = ["RequestContext", "build_context"]

#: Endpoints that stay reachable while the service drains (reads only).
_DRAIN_EXEMPT = {"GET"}


@dataclass
class RequestContext:
    """Everything a handler needs: the app, the caller, the clock readings."""

    app: ServeApp
    client: str
    #: Simulated time the request was admitted to the service at.
    now: float
    #: Wall reading at parse completion (request latency measurement).
    perf_start: float


def api_key_of(request: HttpRequest) -> str | None:
    """Extract the bearer key (``Authorization`` wins over ``X-API-Key``)."""
    auth = request.header("authorization")
    if auth is not None:
        scheme, _, credential = auth.partition(" ")
        if scheme.lower() != "bearer" or not credential.strip():
            raise HttpError(401, "malformed Authorization header (expected Bearer)")
        return credential.strip()
    return request.header("x-api-key")


def build_context(app: ServeApp, request: HttpRequest) -> RequestContext:
    """Authenticate + quota-check one request; raises :class:`HttpError`.

    Ordering matters and is deliberate: drain refusal (503) before
    authentication (401) before quota (429) — a draining service should
    not burn bucket tokens, and an unauthenticated probe should not
    learn quota state.
    """
    if app.draining and request.method not in _DRAIN_EXEMPT:
        raise HttpError(503, "service is draining; retry against the successor")
    client = app.keyring.client_for(api_key_of(request))
    if client is None:
        raise HttpError(401, "unknown or missing API key")
    now = app.clock.now()
    if app.quota is not None:
        decision = app.quota.check(client, now)
        if not decision.admitted:
            raise HttpError(
                429,
                f"request quota exceeded for {client}",
                retry_after=decision.retry_after,
            )
    return RequestContext(
        app=app, client=client, now=now, perf_start=app.clock.perf()
    )
