"""Load definition and calibration (paper §4.3).

The paper defines the system load as the ratio of demanded to available
bandwidth,

.. math::

    load = \\frac{\\sum_r bw(r)}{\\tfrac12(\\sum_i B_{in}(i) + \\sum_e B_{out}(e))}

and steers it through the Poisson arrival rate.  In steady state, a Poisson
process with rate λ offering transfers of mean volume E[vol] demands
``λ · E[vol]`` MB/s in expectation (Little's law: concurrent demanded
bandwidth = arrival rate × mean volume, since ``bw × duration = vol``).
:func:`arrival_rate_for_load` inverts that relation so experiments can sweep
a *target* load directly.
"""

from __future__ import annotations


from ..core.platform import Platform
from ..core.request import RequestSet

__all__ = [
    "offered_load",
    "steady_state_load",
    "arrival_rate_for_load",
    "mean_interarrival_for_load",
    "empirical_load",
]


def offered_load(platform: Platform, requests: RequestSet) -> float:
    """The paper's instantaneous formula: Σ demanded bw over half capacity."""
    demanded = sum(r.min_rate for r in requests)
    return demanded / platform.half_capacity


def steady_state_load(platform: Platform, arrival_rate: float, mean_volume: float) -> float:
    """Expected load of a Poisson workload: ``λ · E[vol] / half_capacity``."""
    return arrival_rate * mean_volume / platform.half_capacity


def arrival_rate_for_load(platform: Platform, target_load: float, mean_volume: float) -> float:
    """Arrival rate λ achieving ``target_load`` for the given mean volume."""
    if target_load <= 0:
        raise ValueError(f"target load must be positive, got {target_load}")
    if mean_volume <= 0:
        raise ValueError(f"mean volume must be positive, got {mean_volume}")
    return target_load * platform.half_capacity / mean_volume


def mean_interarrival_for_load(platform: Platform, target_load: float, mean_volume: float) -> float:
    """Mean inter-arrival time achieving ``target_load``."""
    return 1.0 / arrival_rate_for_load(platform, target_load, mean_volume)


def empirical_load(platform: Platform, requests: RequestSet) -> float:
    """Measured time-average of concurrent demanded bandwidth over capacity.

    Integrates ``MinRate`` over each request's window and divides by
    ``half_capacity × horizon`` — the realised counterpart of
    :func:`steady_state_load` for a concrete request set.
    """
    if not len(requests):
        return 0.0
    t0, t1 = requests.time_span()
    horizon = t1 - t0
    if horizon <= 0:
        return 0.0
    demanded_volume = requests.total_volume()  # ∫ MinRate over window = vol
    return (demanded_volume / horizon) / platform.half_capacity
