"""Traffic matrices: how requests pick their (ingress, egress) pair.

The paper's simulations pick pairs uniformly among distinct points (§4.3).
A hotspot selector is provided for the "relieving tentative hot spots"
direction the conclusion sketches: some ports attract a disproportionate
share of the traffic.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform

__all__ = ["PairSelector", "UniformPairs", "HotspotPairs", "GravityPairs", "FixedPair"]


class PairSelector(abc.ABC):
    """Draws (ingress, egress) index pairs for a platform."""

    @abc.abstractmethod
    def generate(
        self, platform: Platform, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return arrays ``(ingress, egress)`` of length ``n``."""


@dataclass(frozen=True)
class UniformPairs(PairSelector):
    """Uniform pairs; with ``exclude_same_index`` (default) a request never
    connects a site to itself (the paper's "any pair of different points")."""

    exclude_same_index: bool = True

    def generate(
        self, platform: Platform, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        m = platform.num_ingress
        k = platform.num_egress
        if self.exclude_same_index and m == 1 and k == 1:
            raise ConfigurationError("cannot exclude same-index pairs on a 1x1 platform")
        ingress = rng.integers(0, m, size=n)
        egress = rng.integers(0, k, size=n)
        if self.exclude_same_index:
            clash = ingress == egress
            while np.any(clash):
                egress[clash] = rng.integers(0, k, size=int(clash.sum()))
                clash = ingress == egress
        return ingress.astype(np.int64), egress.astype(np.int64)


class HotspotPairs(PairSelector):
    """Weighted pair selection: hotspot ports receive more requests.

    Parameters
    ----------
    ingress_weights, egress_weights:
        Relative popularity of each port; ``None`` means uniform.
    exclude_same_index:
        Re-draw the egress when it matches the ingress index.
    """

    def __init__(
        self,
        ingress_weights: Sequence[float] | None = None,
        egress_weights: Sequence[float] | None = None,
        exclude_same_index: bool = True,
    ) -> None:
        self._win = None if ingress_weights is None else np.asarray(ingress_weights, dtype=np.float64)
        self._wout = None if egress_weights is None else np.asarray(egress_weights, dtype=np.float64)
        for w in (self._win, self._wout):
            if w is not None and (w.ndim != 1 or np.any(w < 0) or w.sum() <= 0):
                raise ConfigurationError("weights must be non-negative with positive sum")
        self.exclude_same_index = exclude_same_index

    @staticmethod
    def _normalise(weights: np.ndarray | None, size: int) -> np.ndarray:
        if weights is None:
            return np.full(size, 1.0 / size)
        if weights.size != size:
            raise ConfigurationError(f"expected {size} weights, got {weights.size}")
        return weights / weights.sum()

    def generate(
        self, platform: Platform, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        p_in = self._normalise(self._win, platform.num_ingress)
        p_out = self._normalise(self._wout, platform.num_egress)
        ingress = rng.choice(platform.num_ingress, size=n, p=p_in)
        egress = rng.choice(platform.num_egress, size=n, p=p_out)
        if self.exclude_same_index:
            clash = ingress == egress
            attempts = 0
            while np.any(clash):
                egress[clash] = rng.choice(platform.num_egress, size=int(clash.sum()), p=p_out)
                clash = ingress == egress
                attempts += 1
                if attempts > 10_000:
                    raise ConfigurationError(
                        "cannot draw distinct pairs: egress weights degenerate"
                    )
        return ingress.astype(np.int64), egress.astype(np.int64)


class GravityPairs(PairSelector):
    """Gravity-model traffic: pair probability ∝ mass(src) × mass(dst).

    The classic traffic-matrix model — larger sites exchange more data.
    Masses default to the port capacities (bigger pipe ⇒ bigger site).
    """

    def __init__(
        self,
        masses: Sequence[float] | None = None,
        exclude_same_index: bool = True,
    ) -> None:
        self._masses = None if masses is None else np.asarray(masses, dtype=np.float64)
        if self._masses is not None and (
            self._masses.ndim != 1 or np.any(self._masses < 0) or self._masses.sum() <= 0
        ):
            raise ConfigurationError("masses must be non-negative with positive sum")
        self.exclude_same_index = exclude_same_index

    def generate(
        self, platform: Platform, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        mass_in = (
            platform.ingress_capacity if self._masses is None else self._masses
        )
        mass_out = (
            platform.egress_capacity if self._masses is None else self._masses
        )
        if mass_in.size != platform.num_ingress or mass_out.size != platform.num_egress:
            raise ConfigurationError(
                f"expected {platform.num_ingress} masses, got {mass_in.size}"
            )
        selector = HotspotPairs(
            ingress_weights=mass_in,
            egress_weights=mass_out,
            exclude_same_index=self.exclude_same_index,
        )
        return selector.generate(platform, n, rng)


@dataclass(frozen=True)
class FixedPair(PairSelector):
    """Every request uses one fixed pair (single-pair polynomial case, §3)."""

    ingress: int = 0
    egress: int = 0

    def generate(
        self, platform: Platform, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if not (0 <= self.ingress < platform.num_ingress):
            raise ConfigurationError(f"ingress {self.ingress} outside platform")
        if not (0 <= self.egress < platform.num_egress):
            raise ConfigurationError(f"egress {self.egress} outside platform")
        return (
            np.full(n, self.ingress, dtype=np.int64),
            np.full(n, self.egress, dtype=np.int64),
        )
