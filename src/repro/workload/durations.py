"""Transmission-window duration distributions for rigid workloads.

The §4.3 rigid experiments draw volumes from a fixed set and give each
request a transmission window; the fixed rate follows as ``bw = vol /
duration``.  Durations are drawn *independently* of volume — this is what
makes MINVOL-SLOTS pathological (a small-volume request with a small window
demands a huge bandwidth; §4.4 explains MINVOL's losses exactly this way).
Transfers span "a couple of minutes to about one day" (§5.3), which
:func:`paper_durations` reproduces as a log-uniform draw.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from ..units import DAY, MINUTE

__all__ = [
    "DurationDistribution",
    "UniformDurations",
    "LogUniformDurations",
    "FixedDuration",
    "paper_durations",
]


class DurationDistribution(abc.ABC):
    """Generates per-request window durations in seconds."""

    @abc.abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` positive durations (seconds)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected duration in seconds."""


@dataclass(frozen=True)
class UniformDurations(DurationDistribution):
    """Uniform durations over ``[low, high]`` seconds."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class LogUniformDurations(DurationDistribution):
    """Log-uniform durations over ``[low, high]`` seconds — mixes short and
    day-long windows without the long tail dominating."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.exp(rng.uniform(np.log(self.low), np.log(self.high), size=n))

    def mean(self) -> float:
        if self.low == self.high:
            return self.low
        span = np.log(self.high) - np.log(self.low)
        return float((self.high - self.low) / span)


@dataclass(frozen=True)
class FixedDuration(DurationDistribution):
    """Every window has the same length (unit-request experiments)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError(f"duration must be positive, got {self.value}")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def mean(self) -> float:
        return self.value


def paper_durations() -> LogUniformDurations:
    """Windows log-uniform between 2 minutes and 1 day (§5.3's range)."""
    return LogUniformDurations(2 * MINUTE, DAY)
