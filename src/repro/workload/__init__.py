"""Workload generation: arrivals, volumes, rates, pairs, load calibration.

Reproduces the paper's simulation settings (§4.3, §5.3) and provides
alternative distributions for sensitivity studies.
"""

from .arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    TraceArrivals,
)
from .durations import (
    DurationDistribution,
    FixedDuration,
    LogUniformDurations,
    UniformDurations,
    paper_durations,
)
from .generator import (
    FlexibleWorkload,
    RigidWorkload,
    SlottedRigidWorkload,
    paper_flexible_workload,
    paper_rigid_workload,
)
from .load import (
    arrival_rate_for_load,
    empirical_load,
    mean_interarrival_for_load,
    offered_load,
    steady_state_load,
)
from .matrix import FixedPair, GravityPairs, HotspotPairs, PairSelector, UniformPairs
from .rates import FixedRate, LogUniformRates, RateDistribution, UniformRates, paper_rates
from .summary import summarize, text_histogram
from .traces import load_csv, load_npz, save_csv, save_npz
from .volumes import (
    ChoiceVolumes,
    FixedVolume,
    LogUniformVolumes,
    PaperVolumes,
    UniformVolumes,
    VolumeDistribution,
    paper_volume_set,
)

__all__ = [
    "ArrivalProcess",
    "ChoiceVolumes",
    "DeterministicArrivals",
    "FixedPair",
    "FixedRate",
    "FixedVolume",
    "DurationDistribution",
    "FixedDuration",
    "FlexibleWorkload",
    "GravityPairs",
    "HotspotPairs",
    "LogUniformDurations",
    "LogUniformRates",
    "LogUniformVolumes",
    "PairSelector",
    "PaperVolumes",
    "PoissonArrivals",
    "RateDistribution",
    "RigidWorkload",
    "SinusoidalArrivals",
    "SlottedRigidWorkload",
    "TraceArrivals",
    "UniformDurations",
    "UniformPairs",
    "UniformRates",
    "UniformVolumes",
    "VolumeDistribution",
    "arrival_rate_for_load",
    "empirical_load",
    "load_csv",
    "load_npz",
    "mean_interarrival_for_load",
    "offered_load",
    "paper_durations",
    "paper_flexible_workload",
    "paper_rates",
    "paper_rigid_workload",
    "paper_volume_set",
    "save_csv",
    "save_npz",
    "steady_state_load",
    "summarize",
    "text_histogram",
]
