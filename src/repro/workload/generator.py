"""Workload generators producing :class:`ProblemInstance` objects.

Two generator classes mirror the paper's two experiment families:

- :class:`RigidWorkload` (§4.3): volume and window duration are drawn
  independently; the fixed rate is ``bw = vol / duration``.
- :class:`FlexibleWorkload` (§5.3): the drawn rate is the per-request host
  limit ``MaxRate(r)``; the window is ``slack`` times the fastest possible
  transfer, so ``MinRate = MaxRate / slack``.

Convenience constructors :func:`paper_rigid_workload` and
:func:`paper_flexible_workload` bake in the published parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..core.problem import ProblemInstance
from ..core.request import Request, RequestSet
from .arrivals import ArrivalProcess, PoissonArrivals
from .durations import DurationDistribution, paper_durations
from .load import mean_interarrival_for_load
from .matrix import PairSelector, UniformPairs
from .rates import RateDistribution, paper_rates
from .volumes import PaperVolumes, VolumeDistribution

__all__ = [
    "RigidWorkload",
    "SlottedRigidWorkload",
    "FlexibleWorkload",
    "paper_rigid_workload",
    "paper_flexible_workload",
]


@dataclass
class RigidWorkload:
    """Generates rigid requests: fixed bandwidth, window equal to transfer.

    For each request, a volume and a window duration are drawn
    *independently*; the fixed rate follows as ``bw = vol / duration`` so
    that ``MinRate = MaxRate = bw`` (a rigid request in the paper's sense).
    A drawn window too short for the bottleneck port (``bw`` above capacity)
    is stretched to the fastest feasible transfer, ``vol / capacity``.

    The independence of volume and window reproduces §4.4's MINVOL
    pathology: a small-volume request may carry a small window and thus a
    huge bandwidth demand.
    """

    platform: Platform
    arrivals: ArrivalProcess
    volumes: VolumeDistribution = field(default_factory=PaperVolumes)
    durations: DurationDistribution = field(default_factory=paper_durations)
    pairs: PairSelector = field(default_factory=UniformPairs)

    def generate(self, n: int, rng: np.random.Generator, t0: float = 0.0) -> ProblemInstance:
        """Draw ``n`` rigid requests."""
        if n < 0:
            raise ConfigurationError(f"cannot generate {n} requests")
        t_start = self.arrivals.generate(n, rng, t0)
        volume = self.volumes.generate(n, rng)
        duration = self.durations.generate(n, rng)
        ingress, egress = self.pairs.generate(self.platform, n, rng)
        cap = np.minimum(
            self.platform.ingress_capacity[ingress],
            self.platform.egress_capacity[egress],
        )
        # A window shorter than the fastest feasible transfer could never be
        # served; stretch it to the bottleneck-capacity transfer time.
        duration = np.maximum(duration, volume / cap)
        requests = [
            Request.rigid(
                rid=i,
                ingress=int(ingress[i]),
                egress=int(egress[i]),
                volume=float(volume[i]),
                t_start=float(t_start[i]),
                t_end=float(t_start[i] + duration[i]),
            )
            for i in range(n)
        ]
        return ProblemInstance(self.platform, RequestSet(requests))


@dataclass
class SlottedRigidWorkload:
    """Rigid requests whose windows snap to a slotted time grid (§4.2).

    The paper's decomposition uses "pre-defined starting and finishing
    times as reference points" (Figure 3): windows start on slot boundaries
    and span an integral number of slots.  Requests arrive Poisson but their
    window opens at the next slot boundary; the span is drawn uniformly from
    ``1..max_slots`` and stretched when the implied rate would exceed the
    bottleneck port.

    Slotting keeps the decomposition intervals commensurate with the
    windows, which is what lets the CUMULATED cost's priority term act as
    *protection of running requests* rather than degenerate into pure
    arrival-order preference.
    """

    platform: Platform
    arrivals: ArrivalProcess
    volumes: VolumeDistribution = field(default_factory=PaperVolumes)
    pairs: PairSelector = field(default_factory=UniformPairs)
    slot: float = 600.0
    max_slots: int = 12

    def generate(self, n: int, rng: np.random.Generator, t0: float = 0.0) -> ProblemInstance:
        """Draw ``n`` slotted rigid requests."""
        if n < 0:
            raise ConfigurationError(f"cannot generate {n} requests")
        if self.slot <= 0:
            raise ConfigurationError(f"slot length must be positive, got {self.slot}")
        if self.max_slots < 1:
            raise ConfigurationError(f"max_slots must be >= 1, got {self.max_slots}")
        arrival = self.arrivals.generate(n, rng, t0)
        t_start = np.ceil(arrival / self.slot) * self.slot
        volume = self.volumes.generate(n, rng)
        spans = rng.integers(1, self.max_slots + 1, size=n)
        ingress, egress = self.pairs.generate(self.platform, n, rng)
        cap = np.minimum(
            self.platform.ingress_capacity[ingress],
            self.platform.egress_capacity[egress],
        )
        # Stretch windows whose implied rate would exceed the bottleneck.
        min_spans = np.ceil(volume / (cap * self.slot)).astype(np.int64)
        spans = np.maximum(spans, min_spans)
        requests = [
            Request.rigid(
                rid=i,
                ingress=int(ingress[i]),
                egress=int(egress[i]),
                volume=float(volume[i]),
                t_start=float(t_start[i]),
                t_end=float(t_start[i] + spans[i] * self.slot),
            )
            for i in range(n)
        ]
        return ProblemInstance(self.platform, RequestSet(requests))


@dataclass
class FlexibleWorkload:
    """Generates flexible requests: a host rate limit plus a window slack.

    The §5.3 description ("randomly generating bandwidth requests between
    10 MB/s and 1 GB/s") is read as the per-request host transmission limit
    ``MaxRate(r)`` — the only reading under which the ``f × MaxRate``
    policies grant heterogeneous rates and the WINDOW cost function has
    anything to discriminate on.  The transmission window is then
    ``slack × vol / MaxRate`` long (the user asks for ``slack`` times the
    fastest possible transfer), so ``MinRate = MaxRate / slack``.

    ``slack`` must be at least 1; larger values give the scheduler more
    temporal freedom (and make the MIN BW policy commit less bandwidth).
    """

    platform: Platform
    arrivals: ArrivalProcess
    volumes: VolumeDistribution = field(default_factory=PaperVolumes)
    host_rates: RateDistribution = field(default_factory=paper_rates)
    pairs: PairSelector = field(default_factory=UniformPairs)
    slack: float = 6.0

    def generate(self, n: int, rng: np.random.Generator, t0: float = 0.0) -> ProblemInstance:
        """Draw ``n`` flexible requests."""
        if n < 0:
            raise ConfigurationError(f"cannot generate {n} requests")
        if self.slack < 1.0:
            raise ConfigurationError(f"slack must be >= 1, got {self.slack}")
        t_start = self.arrivals.generate(n, rng, t0)
        volume = self.volumes.generate(n, rng)
        max_rate = self.host_rates.generate(n, rng)
        ingress, egress = self.pairs.generate(self.platform, n, rng)
        cap = np.minimum(
            self.platform.ingress_capacity[ingress],
            self.platform.egress_capacity[egress],
        )
        # A host rate above the bottleneck port could never be granted.
        max_rate = np.minimum(max_rate, cap)
        window = self.slack * volume / max_rate
        requests = [
            Request(
                rid=i,
                ingress=int(ingress[i]),
                egress=int(egress[i]),
                volume=float(volume[i]),
                t_start=float(t_start[i]),
                t_end=float(t_start[i] + window[i]),
                max_rate=float(max_rate[i]),
            )
            for i in range(n)
        ]
        return ProblemInstance(self.platform, RequestSet(requests))


def paper_rigid_workload(
    load: float,
    n_requests: int,
    seed: int,
    platform: Platform | None = None,
    slot: float = 300.0,
    max_slots: int = 24,
) -> ProblemInstance:
    """The §4.3 rigid workload at a target load.

    10×10 ports at 1 GB/s, paper volume set, windows on a slotted grid
    (§4.2's "pre-defined starting and finishing times"), Poisson arrivals
    calibrated so the steady-state load matches ``load``.
    """
    platform = platform or Platform.paper_platform()
    volumes = PaperVolumes()
    mean_gap = mean_interarrival_for_load(platform, load, volumes.mean())
    workload = SlottedRigidWorkload(
        platform=platform,
        arrivals=PoissonArrivals(mean_gap),
        volumes=volumes,
        slot=slot,
        max_slots=max_slots,
    )
    return workload.generate(n_requests, np.random.default_rng(seed))


def paper_flexible_workload(
    mean_interarrival: float,
    n_requests: int,
    seed: int,
    platform: Platform | None = None,
    slack: float = 6.0,
) -> ProblemInstance:
    """The §5.3 flexible workload for a given mean inter-arrival time.

    10×10 ports at 1 GB/s, paper volume set, host rates uniform on
    [10 MB/s, 1 GB/s] (fastest transfers from tens of seconds to ~a day),
    windows ``slack`` times the fastest transfer.
    """
    platform = platform or Platform.paper_platform()
    workload = FlexibleWorkload(
        platform=platform,
        arrivals=PoissonArrivals(mean_interarrival),
        slack=slack,
    )
    return workload.generate(n_requests, np.random.default_rng(seed))
