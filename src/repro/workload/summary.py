"""Workload characterisation: summary statistics of a request set.

Before trusting an experiment, look at the workload: this module renders
the volume / rate / window / load structure of a :class:`RequestSet` as a
table, with simple text histograms.  Used by the examples and handy when
calibrating new scenarios.
"""

from __future__ import annotations

import numpy as np

from ..core.platform import Platform
from ..core.request import RequestSet
from ..metrics.report import Table
from ..units import format_bandwidth, format_duration, format_volume
from .load import empirical_load

__all__ = ["summarize", "text_histogram"]


def _quantiles(values: np.ndarray) -> tuple[float, float, float, float, float]:
    return tuple(float(np.quantile(values, q)) for q in (0.0, 0.25, 0.5, 0.75, 1.0))  # type: ignore[return-value]


def summarize(requests: RequestSet, platform: Platform | None = None) -> Table:
    """Five-number summaries of the request dimensions (plus load)."""
    table = Table(["dimension", "min", "q25", "median", "q75", "max"], title="Workload summary")
    if not len(requests):
        return table
    arrays = requests.as_arrays()
    windows = arrays["t_end"] - arrays["t_start"]
    gaps = np.diff(np.sort(arrays["t_start"]))

    rows = [
        ("volume", arrays["volume"], format_volume),
        ("MinRate", arrays["min_rate"], format_bandwidth),
        ("MaxRate", arrays["max_rate"], format_bandwidth),
        ("window", windows, format_duration),
    ]
    if gaps.size:
        rows.append(("inter-arrival", gaps, format_duration))
    for name, values, fmt in rows:
        q = _quantiles(np.asarray(values, dtype=np.float64))
        table.add_row(name, *[fmt(v) for v in q])
    if platform is not None:
        load = empirical_load(platform, requests)
        table.add_row("empirical load", f"{load:.2f}", "", "", "", "")
    return table


def text_histogram(
    values: np.ndarray | list[float],
    *,
    bins: int = 10,
    width: int = 40,
    log: bool = False,
    title: str = "",
) -> str:
    """A one-column text histogram (bar of '#' per bin)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return f"{title}\n(no data)"
    if log:
        if np.any(arr <= 0):
            raise ValueError("log histogram needs positive values")
        edges = np.logspace(np.log10(arr.min()), np.log10(arr.max()), bins + 1)
    else:
        edges = np.linspace(arr.min(), arr.max(), bins + 1)
    counts, _ = np.histogram(arr, bins=edges)
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for b in range(bins):
        bar = "#" * int(round(counts[b] / peak * width))
        lines.append(f"{edges[b]:>12.4g} .. {edges[b + 1]:<12.4g} |{bar} {counts[b]}")
    return "\n".join(lines)
