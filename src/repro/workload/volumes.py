"""Transfer volume distributions.

The paper draws volumes "randomly chosen from a set of values:
{10GB, 20GB, …, 90GB, 100GB, 200GB, …, 900GB, 1TB}" (§4.3; the published
text garbles the first element, the intended set is the two decades plus
1 TB).  :func:`paper_volume_set` reproduces that set; alternative
distributions are provided for sensitivity studies.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from ..core.errors import ConfigurationError
from ..units import GB, TB

__all__ = [
    "VolumeDistribution",
    "ChoiceVolumes",
    "UniformVolumes",
    "LogUniformVolumes",
    "FixedVolume",
    "paper_volume_set",
    "PaperVolumes",
]


def paper_volume_set() -> np.ndarray:
    """The §4.3 volume set in MB: 10–90 GB by 10, 100–900 GB by 100, 1 TB."""
    decade1 = np.arange(10, 100, 10, dtype=np.float64) * GB
    decade2 = np.arange(100, 1000, 100, dtype=np.float64) * GB
    return np.concatenate([decade1, decade2, [TB]])


class VolumeDistribution(abc.ABC):
    """Generates per-request volumes in MB."""

    @abc.abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` positive volumes (MB)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected volume in MB (used for load calibration)."""


@dataclass(frozen=True)
class ChoiceVolumes(VolumeDistribution):
    """Uniform choice from a finite set of volumes."""

    values: tuple[float, ...]

    def __init__(self, values: Sequence[float]) -> None:
        vals = tuple(float(v) for v in values)
        if not vals:
            raise ConfigurationError("need at least one volume value")
        if any(v <= 0 for v in vals):
            raise ConfigurationError("volumes must be positive")
        object.__setattr__(self, "values", vals)

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.choice(np.asarray(self.values), size=n)

    def mean(self) -> float:
        return float(np.mean(self.values))


def PaperVolumes() -> ChoiceVolumes:
    """The published §4.3 volume distribution."""
    return ChoiceVolumes(paper_volume_set())


@dataclass(frozen=True)
class UniformVolumes(VolumeDistribution):
    """Uniform volumes over ``[low, high]`` MB."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class LogUniformVolumes(VolumeDistribution):
    """Log-uniform volumes over ``[low, high]`` MB — heavy-tailed mixes of
    small and bulk transfers (mice and elephants)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.exp(rng.uniform(np.log(self.low), np.log(self.high), size=n))

    def mean(self) -> float:
        if self.low == self.high:
            return self.low
        span = np.log(self.high) - np.log(self.low)
        return float((self.high - self.low) / span)


@dataclass(frozen=True)
class FixedVolume(VolumeDistribution):
    """Every request carries the same volume (unit-request experiments)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError(f"volume must be positive, got {self.value}")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def mean(self) -> float:
        return self.value
