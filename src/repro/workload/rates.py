"""Requested-rate distributions.

For flexible workloads the paper generates "bandwidth requests between
10 MB/s and 1 GB/s" (§5.3): the drawn rate is the user's requested
``MinRate`` and determines the deadline ``t_f = t_s + vol / MinRate``.  For
rigid workloads the drawn rate *is* the fixed ``bw(r)``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError
from ..units import GBPS, MBPS

__all__ = ["RateDistribution", "UniformRates", "LogUniformRates", "FixedRate", "paper_rates"]


class RateDistribution(abc.ABC):
    """Generates per-request rates in MB/s."""

    @abc.abstractmethod
    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` positive rates (MB/s)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected rate in MB/s (used for load calibration)."""


@dataclass(frozen=True)
class UniformRates(RateDistribution):
    """Uniform rates over ``[low, high]`` MB/s."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)


@dataclass(frozen=True)
class LogUniformRates(RateDistribution):
    """Log-uniform rates over ``[low, high]`` MB/s."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.high):
            raise ConfigurationError(f"need 0 < low <= high, got [{self.low}, {self.high}]")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.exp(rng.uniform(np.log(self.low), np.log(self.high), size=n))

    def mean(self) -> float:
        if self.low == self.high:
            return self.low
        span = np.log(self.high) - np.log(self.low)
        return float((self.high - self.low) / span)


@dataclass(frozen=True)
class FixedRate(RateDistribution):
    """Every request demands the same rate (uniform-request experiments)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.value}")

    def generate(self, n: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(n, self.value, dtype=np.float64)

    def mean(self) -> float:
        return self.value


def paper_rates() -> UniformRates:
    """The §5.3 requested-rate distribution: uniform on [10 MB/s, 1 GB/s]."""
    return UniformRates(10 * MBPS, GBPS)
