"""Workload trace persistence.

Request sets round-trip through JSON (human-readable, via
:class:`ProblemInstance`), compressed ``.npz`` (compact columnar form for
large sweeps) and CSV (interoperable with external tooling).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..core.request import Request, RequestSet

__all__ = ["save_npz", "load_npz", "save_csv", "load_csv"]

_COLUMNS = ("rid", "ingress", "egress", "volume", "t_start", "t_end", "max_rate")


def save_npz(path: str | Path, requests: RequestSet) -> None:
    """Write a request set to a compressed ``.npz`` file."""
    arrays = requests.as_arrays()
    np.savez_compressed(Path(path), **{c: arrays[c] for c in _COLUMNS})


def load_npz(path: str | Path) -> RequestSet:
    """Read a request set written by :func:`save_npz`."""
    with np.load(Path(path)) as data:
        cols = {c: data[c] for c in _COLUMNS}
    n = cols["rid"].size
    return RequestSet(
        Request(
            rid=int(cols["rid"][i]),
            ingress=int(cols["ingress"][i]),
            egress=int(cols["egress"][i]),
            volume=float(cols["volume"][i]),
            t_start=float(cols["t_start"][i]),
            t_end=float(cols["t_end"][i]),
            max_rate=float(cols["max_rate"][i]),
        )
        for i in range(n)
    )


def save_csv(path: str | Path, requests: RequestSet) -> None:
    """Write a request set to CSV with a header row."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for r in requests:
            writer.writerow([r.rid, r.ingress, r.egress, r.volume, r.t_start, r.t_end, r.max_rate])


def load_csv(path: str | Path) -> RequestSet:
    """Read a request set written by :func:`save_csv`."""
    requests: list[Request] = []
    with open(Path(path), newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            requests.append(
                Request(
                    rid=int(row["rid"]),
                    ingress=int(row["ingress"]),
                    egress=int(row["egress"]),
                    volume=float(row["volume"]),
                    t_start=float(row["t_start"]),
                    t_end=float(row["t_end"]),
                    max_rate=float(row["max_rate"]),
                )
            )
    return RequestSet(requests)
