"""Long-lived (indefinite) flow allocation — the companion problem [13, 14].

Steady-state rate allocation (max-min, max-throughput, proportional
fairness) and the polynomial optimal admission of uniform long-lived
flows via max-flow.
"""

from .admission import max_accept_uniform_longlived
from .rates import max_throughput_rates, maxmin_rates, proportional_fair_rates

__all__ = [
    "max_accept_uniform_longlived",
    "max_throughput_rates",
    "maxmin_rates",
    "proportional_fair_rates",
]
