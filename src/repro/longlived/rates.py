"""Rate allocation for long-lived (indefinite) flows.

§2.1 contrasts the paper's short-lived requests with the *long-lived*
request problem of the companion papers [13, 14]: flows of unbounded
duration whose rates — not windows — are the decision variables.  Three
classical allocation objectives over the same two-sided bottleneck model:

- **max-min fairness** — re-exported from :mod:`repro.fairness.maxmin`;
- **maximum throughput** — an LP (``maximise Σ x`` under port capacities
  and host limits), which may starve flows crossing busy ports;
- **proportional fairness** — ``maximise Σ log x``, the classic compromise
  (Kelly), solved with projected SLSQP.

These give the steady-state baselines a grid operator would compare the
windowed reservation system against.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import LinearConstraint, linprog, minimize

from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..fairness.maxmin import maxmin_rates

__all__ = ["max_throughput_rates", "proportional_fair_rates", "maxmin_rates"]


def _incidence(platform: Platform, ingress: np.ndarray, egress: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Port-flow incidence matrix and capacity vector."""
    n = ingress.size
    m = platform.num_ingress
    k = platform.num_egress
    a = np.zeros((m + k, n))
    a[ingress, np.arange(n)] = 1.0
    a[m + egress, np.arange(n)] = 1.0
    caps = np.concatenate([platform.ingress_capacity, platform.egress_capacity])
    return a, caps


def _validate(platform: Platform, ingress: np.ndarray, egress: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    ingress = np.asarray(ingress, dtype=np.int64)
    egress = np.asarray(egress, dtype=np.int64)
    if ingress.shape != egress.shape:
        raise ConfigurationError("ingress and egress arrays must have equal length")
    if ingress.size and (ingress.min() < 0 or ingress.max() >= platform.num_ingress):
        raise ConfigurationError("ingress index outside platform")
    if egress.size and (egress.min() < 0 or egress.max() >= platform.num_egress):
        raise ConfigurationError("egress index outside platform")
    return ingress, egress


def max_throughput_rates(
    platform: Platform,
    ingress: np.ndarray,
    egress: np.ndarray,
    max_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Throughput-maximising rates (LP).  May assign zero to some flows."""
    ingress, egress = _validate(platform, ingress, egress)
    n = ingress.size
    if n == 0:
        return np.zeros(0)
    a, caps = _incidence(platform, ingress, egress)
    upper = np.full(n, np.inf) if max_rates is None else np.asarray(max_rates, dtype=np.float64)
    res = linprog(
        c=-np.ones(n),
        A_ub=a,
        b_ub=caps,
        bounds=list(zip(np.zeros(n), upper)),
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"throughput LP failed: {res.message}")
    return np.maximum(res.x, 0.0)


def proportional_fair_rates(
    platform: Platform,
    ingress: np.ndarray,
    egress: np.ndarray,
    max_rates: np.ndarray | None = None,
    *,
    tol: float = 1e-9,
) -> np.ndarray:
    """Proportionally fair rates: ``argmax Σ log x`` under the capacities.

    Solved with SLSQP from the max-min point (a strictly feasible interior
    start).  For the single-bottleneck case this reduces to the equal
    split, which the tests assert.
    """
    ingress, egress = _validate(platform, ingress, egress)
    n = ingress.size
    if n == 0:
        return np.zeros(0)
    a, caps = _incidence(platform, ingress, egress)
    upper = None if max_rates is None else np.asarray(max_rates, dtype=np.float64)

    x0 = maxmin_rates(platform, ingress, egress, upper)
    x0 = np.maximum(x0 * 0.95, 1e-6)  # strictly interior start

    def objective(x: np.ndarray) -> float:
        return -float(np.sum(np.log(np.maximum(x, 1e-12))))

    def gradient(x: np.ndarray) -> np.ndarray:
        return -1.0 / np.maximum(x, 1e-12)

    bounds = [(1e-9, np.inf if upper is None else float(upper[i])) for i in range(n)]
    res = minimize(
        objective,
        x0,
        jac=gradient,
        bounds=bounds,
        constraints=[LinearConstraint(a, -np.inf, caps)],
        method="SLSQP",
        options={"maxiter": 500, "ftol": tol},
    )
    if not res.success:  # pragma: no cover - SLSQP converges on these LAPs
        raise RuntimeError(f"proportional fairness solver failed: {res.message}")
    return np.maximum(res.x, 0.0)
