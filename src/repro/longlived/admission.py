"""Admission of uniform long-lived flows — the polynomial case of [14].

§3 recalls that scheduling uniform long-lived requests (``bw(r) = b`` for
every flow) is solvable in polynomial time.  With a common rate ``b``,
each port ``p`` can carry at most ``⌊B_p / b⌋`` flows, and maximising the
accepted count becomes a degree-constrained bipartite subgraph problem —
an integral max-flow:

    source → ingress_i   (capacity ⌊B_in(i) / b⌋)
    ingress_i → egress_e (capacity = multiplicity of requested (i, e) pairs)
    egress_e → sink      (capacity ⌊B_out(e) / b⌋)

The max-flow value is the optimal number of accepted flows; the flow
decomposition says which.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform

__all__ = ["max_accept_uniform_longlived"]


def max_accept_uniform_longlived(
    platform: Platform,
    ingress: np.ndarray,
    egress: np.ndarray,
    rate: float,
) -> np.ndarray:
    """Optimal accept mask for uniform long-lived flows at rate ``rate``.

    Returns a boolean array over the flows: an optimal (maximum
    cardinality) subset that fits every port when each accepted flow gets
    exactly ``rate``.
    """
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    ingress = np.asarray(ingress, dtype=np.int64)
    egress = np.asarray(egress, dtype=np.int64)
    if ingress.shape != egress.shape:
        raise ConfigurationError("ingress and egress arrays must have equal length")
    n = ingress.size
    if n == 0:
        return np.zeros(0, dtype=bool)
    if ingress.min() < 0 or ingress.max() >= platform.num_ingress:
        raise ConfigurationError("ingress index outside platform")
    if egress.min() < 0 or egress.max() >= platform.num_egress:
        raise ConfigurationError("egress index outside platform")

    slack = 1e-9
    cap_in = np.floor(platform.ingress_capacity / rate + slack).astype(int)
    cap_out = np.floor(platform.egress_capacity / rate + slack).astype(int)

    graph = nx.DiGraph()
    for i in range(platform.num_ingress):
        if cap_in[i] > 0:
            graph.add_edge("s", ("in", i), capacity=int(cap_in[i]))
    for e in range(platform.num_egress):
        if cap_out[e] > 0:
            graph.add_edge(("out", e), "t", capacity=int(cap_out[e]))

    pair_flows: dict[tuple[int, int], list[int]] = {}
    for idx in range(n):
        pair_flows.setdefault((int(ingress[idx]), int(egress[idx])), []).append(idx)
    for (i, e), members in pair_flows.items():
        graph.add_edge(("in", i), ("out", e), capacity=len(members))

    if "s" not in graph or "t" not in graph:
        return np.zeros(n, dtype=bool)
    _, flow = nx.maximum_flow(graph, "s", "t")

    accepted = np.zeros(n, dtype=bool)
    for (i, e), members in pair_flows.items():
        units = flow.get(("in", i), {}).get(("out", e), 0)
        for idx in members[:units]:
            accepted[idx] = True
    return accepted
