"""Reproduction of *Optimal Bandwidth Sharing in Grid Environments* (HPDC 2006).

Window-based admission control and bandwidth reservation for bulk data
transfers at the edge of a grid overlay network, together with every
substrate the paper's evaluation relies on: workload generation, exact
solvers and the NP-completeness reduction, a max-min-fair fluid baseline,
a simulated reservation control plane, and the experiment harness that
regenerates Figures 4–7.

Quickstart::

    import numpy as np
    from repro import Platform, FlexibleWorkload, PoissonArrivals, WindowFlexible

    platform = Platform.paper_platform()           # 10x10 ports at 1 GB/s
    workload = FlexibleWorkload(platform, PoissonArrivals(mean=2.0))
    problem = workload.generate(500, np.random.default_rng(0))
    result = WindowFlexible(t_step=400).schedule(problem)
    print(f"accept rate: {result.accept_rate:.2%}")

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from ._version import __version__
from .core import (
    Allocation,
    BandwidthTimeline,
    CapacityError,
    CapacityProfile,
    ConfigurationError,
    InvalidRequestError,
    make_profile,
    set_default_backend,
    use_backend,
    Platform,
    PortLedger,
    ProblemInstance,
    ReproError,
    Request,
    RequestSet,
    ScheduleResult,
    ScheduleViolation,
    accept_rate,
    guaranteed_count,
    guaranteed_rate,
    resource_utilization,
    resource_utilization_time_averaged,
    time_averaged_utilization,
    verify_schedule,
)
from .schedulers import (
    FCFSRigid,
    FractionOfMaxPolicy,
    GreedyFlexible,
    MinRatePolicy,
    SlotsScheduler,
    WindowFlexible,
    available_schedulers,
    cumulated_slots,
    fifo_slots,
    make_scheduler,
    minbw_slots,
    minvol_slots,
)
from .workload import (
    FlexibleWorkload,
    PoissonArrivals,
    RigidWorkload,
    paper_flexible_workload,
    paper_rigid_workload,
)

__all__ = [
    "Allocation",
    "BandwidthTimeline",
    "CapacityError",
    "CapacityProfile",
    "ConfigurationError",
    "FCFSRigid",
    "FlexibleWorkload",
    "FractionOfMaxPolicy",
    "GreedyFlexible",
    "InvalidRequestError",
    "MinRatePolicy",
    "Platform",
    "PoissonArrivals",
    "PortLedger",
    "ProblemInstance",
    "ReproError",
    "Request",
    "RequestSet",
    "RigidWorkload",
    "ScheduleResult",
    "ScheduleViolation",
    "SlotsScheduler",
    "WindowFlexible",
    "__version__",
    "accept_rate",
    "available_schedulers",
    "cumulated_slots",
    "fifo_slots",
    "guaranteed_count",
    "guaranteed_rate",
    "make_profile",
    "make_scheduler",
    "minbw_slots",
    "set_default_backend",
    "use_backend",
    "minvol_slots",
    "paper_flexible_workload",
    "paper_rigid_workload",
    "resource_utilization",
    "resource_utilization_time_averaged",
    "time_averaged_utilization",
    "verify_schedule",
]
