"""Steady-state TCP throughput models (§1's motivation, §5.4's protocols).

The paper's case for reservations starts from TCP's behaviour on large
bandwidth-delay-product grid paths: loss-based congestion control
penalises long-RTT bulk flows, producing unpredictable and unfair shares
[21].  This module implements the standard analytic models used to make
that argument quantitative:

- :func:`mathis_throughput` — the square-root law
  ``B = MSS/RTT · sqrt(3/2) / sqrt(p)`` (Mathis et al.);
- :func:`pftk_throughput` — the full PFTK model with timeouts and a
  receiver-window cap (Padhye, Firoiu, Towsley, Kurose);
- :class:`ResponseFunction` — the generic ``B = c · MSS / (RTT^a · p^b)``
  family, with presets for Reno and BIC-like high-speed variants, enough
  to reproduce the RTT-unfairness shape §5.4 alludes to.

All throughputs are returned in MB/s for an MSS given in bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "mathis_throughput",
    "pftk_throughput",
    "ResponseFunction",
    "RENO",
    "BIC_LIKE",
    "rtt_unfairness",
]

_BYTES_PER_MB = 1e6


def _validate(mss: float, rtt: float, loss: float) -> None:
    if mss <= 0:
        raise ConfigurationError(f"MSS must be positive, got {mss}")
    if rtt <= 0:
        raise ConfigurationError(f"RTT must be positive, got {rtt}")
    if not (0 < loss < 1):
        raise ConfigurationError(f"loss rate must be in (0, 1), got {loss}")


def mathis_throughput(mss: float, rtt: float, loss: float) -> float:
    """The Mathis square-root model, MB/s.

    ``B = (MSS / RTT) · sqrt(3/2) / sqrt(p)`` — the light-loss asymptote
    of Reno; MSS in bytes, RTT in seconds.
    """
    _validate(mss, rtt, loss)
    return (mss / rtt) * math.sqrt(1.5 / loss) / _BYTES_PER_MB


def pftk_throughput(
    mss: float,
    rtt: float,
    loss: float,
    *,
    rto: float = 1.0,
    b: int = 2,
    wmax: float | None = None,
) -> float:
    """The PFTK steady-state Reno model, MB/s.

    ``B = min(Wmax/RTT,
              MSS / (RTT·sqrt(2bp/3) + RTO·min(1, 3·sqrt(3bp/8))·p·(1+32p²)))``

    with ``b`` delayed-ack factor and optional receiver window ``wmax``
    (bytes).
    """
    _validate(mss, rtt, loss)
    if rto <= 0:
        raise ConfigurationError(f"RTO must be positive, got {rto}")
    denom = rtt * math.sqrt(2 * b * loss / 3) + rto * min(
        1.0, 3 * math.sqrt(3 * b * loss / 8)
    ) * loss * (1 + 32 * loss**2)
    rate = mss / denom
    if wmax is not None:
        rate = min(rate, wmax / rtt)
    return rate / _BYTES_PER_MB


@dataclass(frozen=True)
class ResponseFunction:
    """The generic loss-response family ``B = c · MSS / (RTT^a · p^b)``.

    High-speed TCP variants (BIC, HSTCP, …) are commonly summarised by
    their response function exponents; ``rtt_exp`` below 1 means less
    RTT-unfairness than Reno.
    """

    name: str
    c: float
    rtt_exp: float
    loss_exp: float

    def throughput(self, mss: float, rtt: float, loss: float) -> float:
        """Steady-state throughput in MB/s."""
        _validate(mss, rtt, loss)
        return self.c * mss / (rtt**self.rtt_exp * loss**self.loss_exp) / _BYTES_PER_MB


#: Reno's response function (the Mathis constant).
RENO = ResponseFunction("reno", c=math.sqrt(1.5), rtt_exp=1.0, loss_exp=0.5)

#: A BIC-like high-speed response: aggressive in loss, less RTT-sensitive.
#: (Qualitative preset — BIC's exact response function is regime-dependent.)
BIC_LIKE = ResponseFunction("bic-like", c=1.1, rtt_exp=0.8, loss_exp=0.69)


def rtt_unfairness(
    model: ResponseFunction,
    rtts: np.ndarray,
    mss: float = 1460.0,
    loss: float = 1e-4,
) -> np.ndarray:
    """Relative shares of same-bottleneck flows with different RTTs.

    Returns each flow's throughput normalised by the best flow's — the
    shape of §1's complaint: under loss-based sharing a transcontinental
    grid flow is starved relative to a metro one, while a reservation
    gives both exactly their granted rate.
    """
    rtts = np.asarray(rtts, dtype=np.float64)
    if np.any(rtts <= 0):
        raise ConfigurationError("RTTs must be positive")
    rates = np.array([model.throughput(mss, float(r), loss) for r in rtts])
    return rates / rates.max()
