"""Statistical bandwidth-sharing baseline (max-min fairness).

The paper's motivating comparison: what TCP-style fair sharing does to the
same bulk workload that the reservation schedulers admission-control.  See
:func:`maxmin_rates` (progressive filling) and :class:`FluidSimulation`.
"""

from .fluid import FlowOutcome, FluidResult, FluidSimulation
from .maxmin import is_maxmin_fair, maxmin_rates
from .tcp_model import (
    BIC_LIKE,
    RENO,
    ResponseFunction,
    mathis_throughput,
    pftk_throughput,
    rtt_unfairness,
)

__all__ = [
    "BIC_LIKE",
    "FlowOutcome",
    "FluidResult",
    "FluidSimulation",
    "RENO",
    "ResponseFunction",
    "is_maxmin_fair",
    "mathis_throughput",
    "maxmin_rates",
    "pftk_throughput",
    "rtt_unfairness",
]
