"""Fluid simulation of statistical bandwidth sharing.

Models what happens when the same bulk transfer workload is *not* admission
controlled but shares the ingress/egress bottlenecks max-min fairly — the
session-level idealisation of TCP the paper argues against (§1, §5.3): in
overload every flow's share collapses, transfers overshoot their windows,
and (with ``drop_at_deadline``) fail outright after having consumed
capacity.

Between consecutive events (arrival, completion, deadline expiry) the
active flow set is constant, so rates are piecewise constant: the simulator
re-solves :func:`repro.fairness.maxmin.maxmin_rates` at each event and
advances remaining volumes linearly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.errors import InternalInvariantError
from ..core.problem import ProblemInstance
from .maxmin import maxmin_rates

__all__ = ["FlowOutcome", "FluidResult", "FluidSimulation"]

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class FlowOutcome:
    """Fate of one flow under statistical sharing."""

    rid: int
    arrival: float
    deadline: float
    volume: float
    transferred: float
    completion: float | None
    dropped: bool

    @property
    def completed(self) -> bool:
        """Did the flow deliver its full volume?"""
        return self.completion is not None

    @property
    def met_deadline(self) -> bool:
        """Did it deliver the full volume within its requested window?"""
        return self.completion is not None and self.completion <= self.deadline * (1 + 1e-12)

    @property
    def slowdown(self) -> float:
        """Actual duration over the requested window length (≥ values > 1
        mean the transfer overshot its window); ``inf`` when unfinished."""
        if self.completion is None:
            return math.inf
        return (self.completion - self.arrival) / (self.deadline - self.arrival)


@dataclass
class FluidResult:
    """Aggregate outcome of a fluid simulation."""

    outcomes: dict[int, FlowOutcome] = field(default_factory=dict)
    horizon: float = 0.0

    @property
    def num_flows(self) -> int:
        """Total flows simulated."""
        return len(self.outcomes)

    @property
    def deadline_met_rate(self) -> float:
        """Fraction of flows that finished within their window — the
        number to compare against a reservation scheduler's accept rate
        (every *accepted* reservation finishes on time by construction)."""
        if not self.outcomes:
            return 0.0
        return sum(o.met_deadline for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def completed_rate(self) -> float:
        """Fraction of flows that eventually delivered their volume."""
        if not self.outcomes:
            return 0.0
        return sum(o.completed for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def dropped_rate(self) -> float:
        """Fraction of flows killed at their deadline (drop mode)."""
        if not self.outcomes:
            return 0.0
        return sum(o.dropped for o in self.outcomes.values()) / len(self.outcomes)

    @property
    def wasted_volume(self) -> float:
        """MB carried for flows that never completed — capacity spent on
        transfers that ultimately failed (the paper's reliability argument)."""
        return sum(o.transferred for o in self.outcomes.values() if not o.completed)

    @property
    def mean_slowdown(self) -> float:
        """Mean slowdown over completed flows; 0 when none completed."""
        finished = [o.slowdown for o in self.outcomes.values() if o.completed]
        return float(np.mean(finished)) if finished else 0.0


class FluidSimulation:
    """Max-min fluid sharing of a flexible-request workload.

    Parameters
    ----------
    problem:
        The same instance a reservation scheduler would consume; each
        request becomes a flow arriving at ``t_s`` wanting ``vol`` at up to
        ``MaxRate``.
    drop_at_deadline:
        When True, a flow still unfinished at ``t_f`` is killed (its
        transferred volume is wasted) — modelling transfers whose grid
        resources are reclaimed.  When False (default) flows linger until
        completion, dragging down everyone's share.
    max_events:
        Safety valve against pathological event loops.
    """

    def __init__(
        self,
        problem: ProblemInstance,
        *,
        drop_at_deadline: bool = False,
        max_events: int | None = None,
    ) -> None:
        self.problem = problem
        self.drop_at_deadline = drop_at_deadline
        self.max_events = max_events if max_events is not None else 20 * max(1, problem.num_requests) + 100

    def run(self) -> FluidResult:
        """Simulate to completion and return per-flow outcomes."""
        requests = sorted(self.problem.requests, key=lambda r: (r.t_start, r.rid))
        result = FluidResult()
        if not requests:
            return result
        platform = self.problem.platform

        cursor = 0
        # Active flow state, parallel lists (rebuilt as numpy views per step).
        act_rid: list[int] = []
        act_in: list[int] = []
        act_out: list[int] = []
        act_max: list[float] = []
        act_remaining: list[float] = []
        act_deadline: list[float] = []
        transferred: dict[int, float] = {}
        arrival_of: dict[int, float] = {}

        t = requests[0].t_start
        events = 0
        while cursor < len(requests) or act_rid:
            events += 1
            if events > self.max_events:
                raise RuntimeError(f"fluid simulation exceeded {self.max_events} events")

            rates = maxmin_rates(
                platform,
                np.asarray(act_in, dtype=np.int64),
                np.asarray(act_out, dtype=np.int64),
                np.asarray(act_max) if act_rid else None,
            )

            next_arrival = requests[cursor].t_start if cursor < len(requests) else math.inf
            if act_rid:
                remaining = np.asarray(act_remaining)
                with np.errstate(divide="ignore"):
                    finish = t + np.where(rates > 0, remaining / np.maximum(rates, _EPS), math.inf)
                next_completion = float(finish.min())
            else:
                next_completion = math.inf
            next_drop = min(act_deadline) if (self.drop_at_deadline and act_rid) else math.inf

            t_next = min(next_arrival, next_completion, next_drop)
            if not math.isfinite(t_next):
                raise InternalInvariantError(
                    "event horizon must be finite while flows are active"
                )

            # Advance transfers to t_next.
            if act_rid and t_next > t:
                progress = rates * (t_next - t)
                for k in range(len(act_rid)):
                    act_remaining[k] = max(0.0, act_remaining[k] - float(progress[k]))
                    transferred[act_rid[k]] += float(progress[k])
            t = t_next

            # Completions (and deadline drops) at time t.
            keep = []
            for k in range(len(act_rid)):
                rid = act_rid[k]
                request_volume = transferred[rid] + act_remaining[k]
                if act_remaining[k] <= _EPS * request_volume:
                    result.outcomes[rid] = FlowOutcome(
                        rid=rid,
                        arrival=arrival_of[rid],
                        deadline=act_deadline[k],
                        volume=request_volume,
                        transferred=transferred[rid],
                        completion=t,
                        dropped=False,
                    )
                elif self.drop_at_deadline and act_deadline[k] <= t * (1 + 1e-12):
                    result.outcomes[rid] = FlowOutcome(
                        rid=rid,
                        arrival=arrival_of[rid],
                        deadline=act_deadline[k],
                        volume=request_volume,
                        transferred=transferred[rid],
                        completion=None,
                        dropped=True,
                    )
                else:
                    keep.append(k)
            if len(keep) != len(act_rid):
                act_rid = [act_rid[k] for k in keep]
                act_in = [act_in[k] for k in keep]
                act_out = [act_out[k] for k in keep]
                act_max = [act_max[k] for k in keep]
                act_remaining = [act_remaining[k] for k in keep]
                act_deadline = [act_deadline[k] for k in keep]

            # Arrivals at time t.
            while cursor < len(requests) and requests[cursor].t_start <= t * (1 + 1e-12):
                request = requests[cursor]
                cursor += 1
                act_rid.append(request.rid)
                act_in.append(request.ingress)
                act_out.append(request.egress)
                act_max.append(request.max_rate)
                act_remaining.append(request.volume)
                act_deadline.append(request.t_end)
                transferred[request.rid] = 0.0
                arrival_of[request.rid] = request.t_start

        result.horizon = t
        return result
