"""Max-min fair rate allocation by progressive filling.

The paper positions its reservation scheme against the Internet's
statistical sharing ideal — max-min fairness [4, 18]: every flow's rate is
raised in lockstep until a port saturates, flows through saturated ports
freeze, and filling continues for the rest.  This module computes the
max-min fair allocation for a set of flows over the ingress/egress
bottleneck model (optionally with per-flow host rate limits), vectorised
with numpy so the fluid simulator can re-solve it at every arrival and
departure.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform

__all__ = ["maxmin_rates", "is_maxmin_fair"]

_EPS = 1e-9


def maxmin_rates(
    platform: Platform,
    ingress: np.ndarray,
    egress: np.ndarray,
    max_rates: np.ndarray | None = None,
) -> np.ndarray:
    """Max-min fair rates for flows on the two-sided bottleneck model.

    Parameters
    ----------
    platform:
        Port capacities.
    ingress, egress:
        Per-flow port indices (equal-length integer arrays).
    max_rates:
        Optional per-flow host limits; ``None`` means unlimited hosts.

    Returns
    -------
    numpy.ndarray
        Per-flow rates.  Empty input yields an empty array.
    """
    ingress = np.asarray(ingress, dtype=np.int64)
    egress = np.asarray(egress, dtype=np.int64)
    if ingress.shape != egress.shape:
        raise ConfigurationError("ingress and egress arrays must have equal length")
    n = ingress.size
    if n == 0:
        return np.zeros(0)
    if np.any(ingress < 0) or np.any(ingress >= platform.num_ingress):
        raise ConfigurationError("ingress index outside platform")
    if np.any(egress < 0) or np.any(egress >= platform.num_egress):
        raise ConfigurationError("egress index outside platform")
    if max_rates is not None:
        max_rates = np.asarray(max_rates, dtype=np.float64)
        if max_rates.shape != ingress.shape:
            raise ConfigurationError("max_rates length mismatch")
        if np.any(max_rates <= 0):
            raise ConfigurationError("max_rates must be positive")

    rates = np.zeros(n)
    frozen = np.zeros(n, dtype=bool)
    free_in = platform.ingress_capacity.copy()
    free_out = platform.egress_capacity.copy()

    # Every round freezes at least one flow (a port saturates, freezing all
    # its flows, or a host limit binds, freezing that flow), so filling
    # terminates within flows + ports + 1 rounds.
    for _ in range(n + platform.num_ingress + platform.num_egress + 1):
        live = ~frozen
        if not np.any(live):
            break
        count_in = np.bincount(ingress[live], minlength=platform.num_ingress)
        count_out = np.bincount(egress[live], minlength=platform.num_egress)

        # Water-level increment: the tightest port share or host headroom.
        with np.errstate(divide="ignore", invalid="ignore"):
            share_in = np.where(count_in > 0, free_in / np.maximum(count_in, 1), np.inf)
            share_out = np.where(count_out > 0, free_out / np.maximum(count_out, 1), np.inf)
        delta = min(share_in.min(), share_out.min())
        if max_rates is not None:
            headroom = max_rates[live] - rates[live]
            delta = min(delta, headroom.min())
        delta = max(delta, 0.0)

        rates[live] += delta
        consumed_in = np.bincount(ingress[live], weights=np.full(int(live.sum()), delta), minlength=platform.num_ingress)
        consumed_out = np.bincount(egress[live], weights=np.full(int(live.sum()), delta), minlength=platform.num_egress)
        free_in -= consumed_in
        free_out -= consumed_out

        saturated_in = free_in <= _EPS * platform.ingress_capacity
        saturated_out = free_out <= _EPS * platform.egress_capacity
        newly_frozen = live & (saturated_in[ingress] | saturated_out[egress])
        if max_rates is not None:
            newly_frozen |= live & (rates >= max_rates * (1 - _EPS))
        if not np.any(newly_frozen) and delta <= 0:
            break  # numerical stall: nothing can grow further
        frozen |= newly_frozen
    return rates


def is_maxmin_fair(
    platform: Platform,
    ingress: np.ndarray,
    egress: np.ndarray,
    rates: np.ndarray,
    max_rates: np.ndarray | None = None,
    rtol: float = 1e-6,
) -> bool:
    """Check the max-min optimality conditions of an allocation.

    An allocation is max-min fair iff it is feasible and every flow is
    *blocked*: it sits at its host limit, or crosses a saturated port on
    which it has a maximal rate (no rate could grow without shrinking an
    equal-or-smaller one).  Used by the property tests as an independent
    certificate.
    """
    ingress = np.asarray(ingress, dtype=np.int64)
    egress = np.asarray(egress, dtype=np.int64)
    rates = np.asarray(rates, dtype=np.float64)
    used_in = np.bincount(ingress, weights=rates, minlength=platform.num_ingress)
    used_out = np.bincount(egress, weights=rates, minlength=platform.num_egress)
    if np.any(used_in > platform.ingress_capacity * (1 + rtol)):
        return False
    if np.any(used_out > platform.egress_capacity * (1 + rtol)):
        return False

    sat_in = used_in >= platform.ingress_capacity * (1 - rtol)
    sat_out = used_out >= platform.egress_capacity * (1 - rtol)
    # max rate crossing each port
    max_in = np.zeros(platform.num_ingress)
    np.maximum.at(max_in, ingress, rates)
    max_out = np.zeros(platform.num_egress)
    np.maximum.at(max_out, egress, rates)

    for k in range(rates.size):
        if max_rates is not None and rates[k] >= max_rates[k] * (1 - rtol):
            continue
        i, e = ingress[k], egress[k]
        blocked = (sat_in[i] and rates[k] >= max_in[i] * (1 - rtol)) or (
            sat_out[e] and rates[k] >= max_out[e] * (1 - rtol)
        )
        if not blocked:
            return False
    return True
