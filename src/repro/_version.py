"""Version of the repro package."""

__version__ = "0.1.0"
