"""Capacity planning: size the infrastructure for a target accept rate.

The abstract promises a knob "to adjust network infrastructure and
workload"; this module supplies the inverse problem a grid operator
actually faces: *given my workload, how much access capacity do I need to
accept a target fraction of requests?*

:func:`capacity_for_accept_rate` bisects a uniform scaling factor applied
to every port capacity, re-running the chosen scheduler on re-generated
workloads at each probe.  Accept rate is monotone in capacity in
expectation (not per-sample), so the search bisects on the replicated
mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence


from ..core.platform import Platform
from ..core.problem import ProblemInstance
from ..schedulers.base import Scheduler
from .runner import replicate

__all__ = ["PlanningResult", "capacity_for_accept_rate"]


@dataclass(frozen=True)
class PlanningResult:
    """Outcome of a capacity search."""

    scale: float
    platform: Platform
    accept_rate: float
    evaluations: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"scale x{self.scale:.3f} -> accept {self.accept_rate:.1%} "
            f"({self.evaluations} evaluations)"
        )


def _scaled(platform: Platform, scale: float) -> Platform:
    return Platform(platform.ingress_capacity * scale, platform.egress_capacity * scale)


def capacity_for_accept_rate(
    base_platform: Platform,
    make_problem: Callable[[Platform, int], ProblemInstance],
    scheduler: Scheduler,
    target: float,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    lo: float = 0.1,
    hi: float = 16.0,
    tol: float = 0.05,
    max_iters: int = 12,
) -> PlanningResult:
    """Smallest uniform capacity scale achieving ``target`` accept rate.

    ``make_problem(platform, seed)`` regenerates the workload against the
    probed platform (so port-capacity clamping stays consistent).  Raises
    ``ValueError`` when even ``hi`` cannot reach the target.
    """
    if not (0.0 < target <= 1.0):
        raise ValueError(f"target accept rate must be in (0, 1], got {target}")

    evaluations = 0

    def accept_at(scale: float) -> float:
        nonlocal evaluations
        platform = _scaled(base_platform, scale)

        def run(seed: int) -> dict[str, float]:
            problem = make_problem(platform, seed)
            return {"accept": scheduler.schedule(problem).accept_rate}

        evaluations += 1
        return replicate(run, seeds)["accept"].mean

    hi_rate = accept_at(hi)
    if hi_rate < target:
        raise ValueError(
            f"even x{hi:g} capacity reaches only {hi_rate:.1%} accept (target {target:.1%})"
        )
    lo_rate = accept_at(lo)
    if lo_rate >= target:
        return PlanningResult(lo, _scaled(base_platform, lo), lo_rate, evaluations)

    best_scale, best_rate = hi, hi_rate
    for _ in range(max_iters):
        mid = (lo + hi) / 2
        rate = accept_at(mid)
        if rate >= target:
            best_scale, best_rate = mid, rate
            hi = mid
        else:
            lo = mid
        if hi - lo <= tol * hi:
            break
    return PlanningResult(best_scale, _scaled(base_platform, best_scale), best_rate, evaluations)
