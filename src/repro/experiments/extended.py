"""Extended studies beyond the paper's figures.

These quantify aspects the paper motivates but does not measure:

- :func:`optimality_gap_flexible` — how close the online heuristics get to
  the time-indexed LP upper bound;
- :func:`rtt_unfairness_study` — the §1 motivation made quantitative:
  relative shares of different-RTT flows under loss-based TCP models vs
  the exact granted share under reservation;
- :func:`diurnal_load` — day/night accept-rate swing under a
  non-homogeneous arrival process;
- :func:`localsearch_study` — what an offline order-space search buys over
  the one-pass heuristics.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..exact import flexible_lp_bound
from ..fairness import BIC_LIKE, RENO, rtt_unfairness
from ..metrics.report import Table
from ..schedulers import (
    EarliestStartFlexible,
    FCFSRigid,
    GreedyFlexible,
    LocalSearchScheduler,
    MinRatePolicy,
    WindowFlexible,
    cumulated_slots,
    minbw_slots,
)
from ..workload import paper_flexible_workload, paper_rigid_workload
from .plotting import ascii_chart
from .runner import replicate

__all__ = [
    "optimality_gap_flexible",
    "rtt_unfairness_study",
    "diurnal_load",
    "localsearch_study",
    "coallocation",
]

DEFAULT_SEEDS: tuple[int, ...] = (0, 1, 2)


def optimality_gap_flexible(
    gaps: Sequence[float] = (0.1, 0.3, 1.0),
    n_requests: int = 200,
    max_slots: int = 120,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Online heuristics as a fraction of the flexible LP upper bound.

    Small instances (the LP has |R| × slots variables).  The bound is a
    *relaxation* (fractional accepts, variable rates), so even an optimal
    constant-rate scheduler may sit below 100 %.
    """
    table = Table(
        ["mean_interarrival", "lp_bound", "greedy", "window", "bookahead"],
        title="Optimality: accepted / flexible-LP bound",
    )
    series: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in ("greedy", "window", "bookahead")
    }
    for gap in gaps:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            bound = flexible_lp_bound(prob, max_slots=max_slots)
            out = {"lp_bound": bound}
            schedulers = {
                "greedy": GreedyFlexible(policy=MinRatePolicy()),
                "window": WindowFlexible(t_step=400.0, policy=MinRatePolicy()),
                "bookahead": EarliestStartFlexible(policy=MinRatePolicy()),
            }
            for name, scheduler in schedulers.items():
                accepted = scheduler.schedule(prob).num_accepted
                out[name] = accepted / bound if bound > 0 else 1.0
            return out

        agg = replicate(run, seeds)
        table.add_row(
            gap,
            agg["lp_bound"].mean,
            agg["greedy"].mean,
            agg["window"].mean,
            agg["bookahead"].mean,
        )
        for name in series:
            series[name][0].append(gap)
            series[name][1].append(agg[name].mean)
    chart = ascii_chart(
        series, title="Fraction of LP bound", x_label="mean inter-arrival (s)", y_label="accepted / bound"
    )
    return table, chart


def rtt_unfairness_study(
    rtts: Sequence[float] = (0.005, 0.02, 0.05, 0.1, 0.2, 0.3),
    loss: float = 1e-4,
) -> tuple[Table, str]:
    """Relative shares by RTT: Reno vs BIC-like vs reservation.

    Under loss-based congestion control a 300 ms grid flow receives a tiny
    fraction of a 5 ms flow's share; a reservation grants both exactly
    their booked rate (share ratio 1) — §1's predictability argument.
    """
    rtts_arr = np.asarray(list(rtts))
    reno = rtt_unfairness(RENO, rtts_arr, loss=loss)
    bic = rtt_unfairness(BIC_LIKE, rtts_arr, loss=loss)
    table = Table(
        ["rtt_s", "reno_share", "bic_like_share", "reservation_share"],
        title=f"Relative share of same-bottleneck flows by RTT (p={loss:g})",
    )
    series = {
        "reno": (list(rtts_arr), list(reno)),
        "bic-like": (list(rtts_arr), list(bic)),
        "reservation": (list(rtts_arr), [1.0] * rtts_arr.size),
    }
    for k, rtt in enumerate(rtts_arr):
        table.add_row(float(rtt), float(reno[k]), float(bic[k]), 1.0)
    chart = ascii_chart(series, title="RTT unfairness", x_label="RTT (s)", y_label="relative share")
    return table, chart


def diurnal_load(
    amplitudes: Sequence[float] = (0.0, 0.5, 0.9),
    mean_gap: float = 2.0,
    period: float = 7200.0,
    n_requests: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Accept rate under day/night (sinusoidal) arrival intensity.

    Burstier days stress the admission control: the same mean load yields
    lower accept rates as the amplitude grows, with WINDOW degrading more
    gracefully than GREEDY (its batching rides out the peaks).
    """
    from ..core.platform import Platform
    from ..workload import FlexibleWorkload, SinusoidalArrivals

    platform = Platform.paper_platform()
    table = Table(
        ["amplitude", "greedy", "window"],
        title=f"Diurnal arrivals (mean gap {mean_gap:g}s, period {period:g}s)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {"greedy": ([], []), "window": ([], [])}
    for amplitude in amplitudes:
        def run(seed: int) -> dict[str, float]:
            workload = FlexibleWorkload(
                platform,
                arrivals=SinusoidalArrivals(mean=mean_gap, amplitude=amplitude, period=period),
            )
            prob = workload.generate(n_requests, np.random.default_rng(seed))
            return {
                "greedy": GreedyFlexible(policy=MinRatePolicy()).schedule(prob).accept_rate,
                "window": WindowFlexible(t_step=400.0, policy=MinRatePolicy()).schedule(prob).accept_rate,
            }

        agg = replicate(run, seeds)
        table.add_row(amplitude, agg["greedy"].mean, agg["window"].mean)
        for name in series:
            series[name][0].append(amplitude)
            series[name][1].append(agg[name].mean)
    chart = ascii_chart(series, title="Diurnal amplitude", x_label="amplitude", y_label="accept rate")
    return table, chart


def coallocation(
    fs: Sequence[float | str] = ("min-bw", 0.5, 0.8, 1.0),
    mean_gap: float = 5.0,
    n_jobs: int = 400,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """CPU co-allocation under the f policies — §2.3 made quantitative.

    Jobs hold their processors from submission until staging + compute
    complete.  Larger ``f`` stages data faster (fewer CPU·seconds per job,
    shorter completion) but admits fewer transfers: the exact trade the
    tuning factor was introduced to navigate.
    """
    from ..core.platform import Platform
    from ..grid import JobSimulator, random_jobs
    from ..schedulers.policies import FractionOfMaxPolicy as Frac
    from ..schedulers.policies import MinRatePolicy as MinBw

    platform = Platform.paper_platform()
    table = Table(
        ["policy", "completed_rate", "cpu_s_per_job", "mean_completion_s"],
        title=f"CPU co-allocation vs tuning factor (gap={mean_gap:g}s)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {
        "completed rate": ([], []),
        "cpu efficiency (rel)": ([], []),
    }
    baseline_cpu: float | None = None
    for k, f in enumerate(fs):
        policy = MinBw() if f == "min-bw" else Frac(float(f))

        def run(seed: int) -> dict[str, float]:
            jobs = random_jobs(
                platform, n_jobs, np.random.default_rng(seed), mean_interarrival=mean_gap
            )
            result = JobSimulator(platform, jobs).run(GreedyFlexible(policy=policy))
            return {
                "completed": result.completed_rate,
                "cpu_s": result.cpu_seconds_per_job(),
                "completion": result.mean_completion_time(),
            }

        agg = replicate(run, seeds)
        table.add_row(str(f), agg["completed"].mean, agg["cpu_s"].mean, agg["completion"].mean)
        if baseline_cpu is None:
            baseline_cpu = agg["cpu_s"].mean
        x = float(k)
        series["completed rate"][0].append(x)
        series["completed rate"][1].append(agg["completed"].mean)
        series["cpu efficiency (rel)"][0].append(x)
        series["cpu efficiency (rel)"][1].append(
            baseline_cpu / agg["cpu_s"].mean if agg["cpu_s"].mean else 1.0
        )
    chart = ascii_chart(
        series, title="Co-allocation trade-off", x_label="policy index", y_label="value"
    )
    return table, chart


def localsearch_study(
    loads: Sequence[float] = (4.0, 8.0, 16.0),
    n_requests: int = 120,
    iterations: int = 150,
    seeds: Sequence[int] = (0, 1),
) -> tuple[Table, str]:
    """Offline order-space search vs one-pass rigid heuristics."""
    table = Table(
        ["load", "fcfs", "minbw", "cumulated", "localsearch"],
        title=f"Local search over admission orders ({iterations} moves)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {
        name: ([], []) for name in ("cumulated", "localsearch")
    }
    for load in loads:
        def run(seed: int) -> dict[str, float]:
            prob = paper_rigid_workload(load, n_requests, seed=seed)
            return {
                "fcfs": FCFSRigid().schedule(prob).accept_rate,
                "minbw": minbw_slots().schedule(prob).accept_rate,
                "cumulated": cumulated_slots().schedule(prob).accept_rate,
                "localsearch": LocalSearchScheduler(
                    mode="rigid", iterations=iterations, restarts=3, seed=seed
                ).schedule(prob).accept_rate,
            }

        agg = replicate(run, seeds)
        table.add_row(
            load, agg["fcfs"].mean, agg["minbw"].mean, agg["cumulated"].mean, agg["localsearch"].mean
        )
        for name in series:
            series[name][0].append(load)
            series[name][1].append(agg[name].mean)
    chart = ascii_chart(series, title="Local search", x_label="load", y_label="accept rate")
    return table, chart
