"""ASCII Gantt charts and port-occupancy strips.

Text renderings of a schedule: per-request bars over time (requested
window vs granted transfer) and per-port occupancy heat strips.  Used by
the examples and handy when debugging a heuristic's decisions.
"""

from __future__ import annotations

from ..core.allocation import ScheduleResult
from ..core.problem import ProblemInstance

__all__ = ["schedule_gantt", "occupancy_strip"]

_SHADES = " .:-=+*#%@"


def schedule_gantt(
    problem: ProblemInstance,
    result: ScheduleResult,
    *,
    width: int = 72,
    max_rows: int = 30,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """Per-request Gantt chart.

    Each row shows one request: ``.`` spans the requested window, ``#``
    the granted transfer (accepted requests), ``x`` marks the window of a
    rejected request.  Rows are ordered by arrival; at most ``max_rows``
    are drawn (a summary line reports the truncation).
    """
    requests = list(problem.requests.sorted_by_arrival())
    if not requests:
        return "(empty problem)"
    span_lo, span_hi = problem.requests.time_span()
    lo = span_lo if t0 is None else t0
    hi = span_hi if t1 is None else t1
    if hi <= lo:
        return "(empty horizon)"

    def col(t: float) -> int:
        frac = (t - lo) / (hi - lo)
        return max(0, min(width - 1, int(frac * (width - 1))))

    lines = [f"gantt [{lo:.0f}s .. {hi:.0f}s], {len(requests)} requests"]
    shown = 0
    for request in requests:
        if shown >= max_rows:
            lines.append(f"... {len(requests) - shown} more requests not shown")
            break
        shown += 1
        row = [" "] * width
        a, b = col(request.t_start), col(request.t_end)
        window_glyph = "." if request.rid in result.accepted else "x"
        for c in range(a, b + 1):
            row[c] = window_glyph
        alloc = result.accepted.get(request.rid)
        if alloc is not None:
            for c in range(col(alloc.sigma), col(alloc.tau) + 1):
                row[c] = "#"
        status = "ACC" if alloc is not None else "rej"
        lines.append(f"r{request.rid:<5d} {status} |{''.join(row)}|")
    lines.append("legend: '#' granted transfer, '.' accepted window, 'x' rejected window")
    return "\n".join(lines)


def occupancy_strip(
    problem: ProblemInstance,
    result: ScheduleResult,
    *,
    width: int = 72,
    side: str = "ingress",
) -> str:
    """Per-port occupancy heat strips over the demand horizon.

    Each port is one row of shade glyphs: ' ' idle through '@' saturated,
    sampled at ``width`` instants.
    """
    if side not in ("ingress", "egress"):
        raise ValueError(f"side must be 'ingress' or 'egress', got {side!r}")
    lo, hi = problem.requests.time_span()
    if hi <= lo:
        return "(empty horizon)"
    ledger = result.build_ledger(problem.platform)
    num_ports = problem.platform.num_ingress if side == "ingress" else problem.platform.num_egress

    lines = [f"{side} occupancy [{lo:.0f}s .. {hi:.0f}s]"]
    for port in range(num_ports):
        if side == "ingress":
            timeline = ledger.ingress_timeline(port)
            capacity = problem.platform.bin(port)
        else:
            timeline = ledger.egress_timeline(port)
            capacity = problem.platform.bout(port)
        row = []
        for c in range(width):
            t = lo + (hi - lo) * (c + 0.5) / width
            level = timeline.usage_at(t) / capacity
            shade = _SHADES[max(0, min(len(_SHADES) - 1, int(level * (len(_SHADES) - 1) + 0.5)))]
            row.append(shade)
        lines.append(f"{side[:3]}{port:<3d} |{''.join(row)}|")
    lines.append(f"legend: ' ' idle .. '@' = 100% of capacity")
    return "\n".join(lines)
