"""Batch regeneration of every experiment's artefacts.

``grid-bandwidth report --out results`` (or :func:`generate_all`) runs every
registered experiment at its default (full) size and writes, per
experiment, a plain-text table + chart and a markdown table — the exact
files EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import time
from pathlib import Path
from collections.abc import Callable, Mapping, Sequence

from .figures import FIGURES

__all__ = ["generate_all", "DEFAULT_OVERRIDES"]

#: Per-experiment keyword overrides used for the published record (the
#: fluid baseline is the one experiment whose default size is slow).
DEFAULT_OVERRIDES: dict[str, dict] = {
    "tcp": {"n_requests": 400},
}


def generate_all(
    out_dir: str | Path,
    *,
    only: Sequence[str] | None = None,
    overrides: Mapping[str, dict] | None = None,
    progress: Callable[[str], None] | None = None,
) -> dict[str, float]:
    """Run experiments and write ``<out>/<name>.{txt,md}``.

    Returns per-experiment wall-clock seconds.  ``only`` restricts to a
    subset of experiment ids; unknown ids raise ``KeyError`` up front.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    overrides = dict(DEFAULT_OVERRIDES) | dict(overrides or {})

    names = list(only) if only is not None else sorted(FIGURES)
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}; available: {sorted(FIGURES)}")

    timings: dict[str, float] = {}
    for name in names:
        start = time.time()
        table, chart = FIGURES[name](**overrides.get(name, {}))
        text = table.to_text() + ("\n\n" + chart if chart else "") + "\n"
        (out / f"{name}.txt").write_text(text)
        (out / f"{name}.md").write_text(
            table.to_markdown() + "\n\n```\n" + (chart or "(no chart)") + "\n```\n"
        )
        timings[name] = time.time() - start
        if progress is not None:
            progress(f"{name}: {timings[name]:.1f}s")
    return timings
