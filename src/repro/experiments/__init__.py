"""Experiment harness: figure definitions, replication, ASCII charts."""

from .figures import (
    FIGURES,
    ablation_cost,
    ablation_window,
    control_latency,
    extensions,
    hotspot,
    fig4,
    fig5,
    fig6,
    fig7,
    section53_claims,
    tcp_baseline,
    tuning_factor,
)
from .extended import (
    coallocation,
    diurnal_load,
    localsearch_study,
    optimality_gap_flexible,
    rtt_unfairness_study,
)
from .gantt import occupancy_strip, schedule_gantt
from .planning import PlanningResult, capacity_for_accept_rate
from .report_gen import generate_all
from .plotting import ascii_chart
from .runner import Aggregate, replicate
from .sweep import grid_points, sweep
from .stats import (
    SchedulerComparison,
    bootstrap_confidence_interval,
    compare_schedulers,
    t_confidence_interval,
)

__all__ = [
    "FIGURES",
    "Aggregate",
    "PlanningResult",
    "SchedulerComparison",
    "bootstrap_confidence_interval",
    "compare_schedulers",
    "t_confidence_interval",
    "capacity_for_accept_rate",
    "coallocation",
    "diurnal_load",
    "generate_all",
    "grid_points",
    "sweep",
    "localsearch_study",
    "optimality_gap_flexible",
    "rtt_unfairness_study",
    "ablation_cost",
    "ablation_window",
    "ascii_chart",
    "control_latency",
    "extensions",
    "hotspot",
    "occupancy_strip",
    "schedule_gantt",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "replicate",
    "section53_claims",
    "tcp_baseline",
    "tuning_factor",
]
