"""Generic parameter sweeps.

The figure definitions hand-roll their loops; :func:`sweep` is the general
tool for *new* studies: give it a parameter grid, a run function and seeds,
and get back a tidy :class:`~repro.metrics.report.Table` with one row per
grid point and one column per metric (mean over seeds, with an optional
``±std`` rendering).

>>> def run(params, seed):
...     prob = paper_flexible_workload(params["gap"], 200, seed=seed)
...     return {"accept": GreedyFlexible().schedule(prob).accept_rate}
>>> table = sweep({"gap": [0.5, 2.0, 10.0]}, run, seeds=(0, 1))   # doctest: +SKIP
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Callable, Mapping, Sequence

from ..core.errors import InternalInvariantError
from ..metrics.report import Table
from .runner import replicate

__all__ = ["sweep", "grid_points"]


def grid_points(grid: Mapping[str, Sequence]) -> list[dict]:
    """The cartesian product of a parameter grid, as dicts.

    Key order is preserved; values vary fastest in the last key (odometer
    order), matching nested-loop intuition.
    """
    if not grid:
        return [{}]
    keys = list(grid)
    for key, values in grid.items():
        if not list(values):
            raise ValueError(f"parameter {key!r} has no values")
    return [dict(zip(keys, combo)) for combo in itertools.product(*grid.values())]


def sweep(
    grid: Mapping[str, Sequence],
    run: Callable[[dict, int], Mapping[str, float]],
    *,
    seeds: Sequence[int] = (0, 1, 2),
    title: str = "",
    include_std: bool = False,
) -> Table:
    """Run ``run(params, seed)`` over the full grid × seeds and tabulate.

    ``run`` returns ``{metric: value}``; metrics must be consistent across
    the whole sweep.  With ``include_std`` each metric cell renders as
    ``mean±std`` strings instead of bare means.
    """
    points = grid_points(grid)
    headers: list[str] | None = None
    table: Table | None = None
    for params in points:
        agg = replicate(functools.partial(_run_point, run, params), seeds)
        metric_names = sorted(agg)
        if headers is None:
            headers = list(grid) + metric_names
            table = Table(headers, title=title or "Parameter sweep")
        elif metric_names != headers[len(grid):]:
            raise ValueError(
                f"inconsistent metrics at {params}: {metric_names} != {headers[len(grid):]}"
            )
        cells: list = [params[k] for k in grid]
        for name in metric_names:
            if include_std:
                cells.append(f"{agg[name].mean:.4g}±{agg[name].std:.2g}")
            else:
                cells.append(agg[name].mean)
        if table is None:
            raise InternalInvariantError("table not initialised on first grid point")
        table.add_row(*cells)
    if table is None:
        raise InternalInvariantError("empty grid produced no table (grid_points returns >= 1)")
    return table


def _run_point(
    run: Callable[[dict, int], Mapping[str, float]], params: dict, seed: int
) -> Mapping[str, float]:
    """One grid point at one seed (partial-bound, keeping ``params`` fixed)."""
    return run(params, seed)
