"""Seeded, replicated experiment execution.

Every published number in EXPERIMENTS.md is a mean over independent seeded
replications; :func:`replicate` is the one place that loop lives, so every
figure definition stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from ..obs.artifact import RunTelemetry
from ..obs.telemetry import Telemetry, use_telemetry

__all__ = ["Aggregate", "replicate"]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Mean and standard deviation of one metric over replications."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        return f"{format(self.mean, spec or '.3f')}±{format(self.std, spec or '.3f')}"


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
    telemetry: RunTelemetry | None = None,
) -> dict[str, Aggregate]:
    """Run ``run(seed)`` for every seed and aggregate each metric.

    ``run`` returns a flat ``{metric name: value}`` mapping; all
    replications must produce the same keys.

    When a :class:`~repro.obs.artifact.RunTelemetry` is supplied, each
    replication executes under its own fresh
    :class:`~repro.obs.telemetry.Telemetry` handle and is captured into the
    artifact as ``seed=<n>`` with the replication's metrics attached — so
    any instrumented code the experiment touches (service, schedulers,
    simulator) is recorded per seed without the figure definitions knowing
    telemetry exists.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[str, list[float]] = {}
    keys: set[str] | None = None
    for seed in seeds:
        if telemetry is not None:
            with use_telemetry(Telemetry()) as capture:
                metrics = dict(run(int(seed)))
            telemetry.capture(
                f"seed={int(seed)}", capture, results={k: float(v) for k, v in metrics.items()}
            )
        else:
            metrics = dict(run(int(seed)))
        if keys is None:
            keys = set(metrics)
            for key in keys:
                samples[key] = []
        elif set(metrics) != keys:
            raise ValueError(
                f"replication with seed {seed} produced keys {sorted(metrics)} != {sorted(keys)}"
            )
        for key, value in metrics.items():
            samples[key].append(float(value))
    return {
        key: Aggregate(
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            n=len(values),
        )
        for key, values in samples.items()
    }
