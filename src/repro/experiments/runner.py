"""Seeded, replicated experiment execution.

Every published number in EXPERIMENTS.md is a mean over independent seeded
replications; :func:`replicate` is the one place that loop lives, so every
figure definition stays declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping, Sequence

import numpy as np

__all__ = ["Aggregate", "replicate"]


@dataclass(frozen=True, slots=True)
class Aggregate:
    """Mean and standard deviation of one metric over replications."""

    mean: float
    std: float
    n: int

    def __format__(self, spec: str) -> str:
        return f"{format(self.mean, spec or '.3f')}±{format(self.std, spec or '.3f')}"


def replicate(
    run: Callable[[int], Mapping[str, float]],
    seeds: Sequence[int],
) -> dict[str, Aggregate]:
    """Run ``run(seed)`` for every seed and aggregate each metric.

    ``run`` returns a flat ``{metric name: value}`` mapping; all
    replications must produce the same keys.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    samples: dict[str, list[float]] = {}
    keys: set[str] | None = None
    for seed in seeds:
        metrics = dict(run(int(seed)))
        if keys is None:
            keys = set(metrics)
            for key in keys:
                samples[key] = []
        elif set(metrics) != keys:
            raise ValueError(
                f"replication with seed {seed} produced keys {sorted(metrics)} != {sorted(keys)}"
            )
        for key, value in metrics.items():
            samples[key].append(float(value))
    return {
        key: Aggregate(
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            n=len(values),
        )
        for key, values in samples.items()
    }
