"""ASCII line charts.

No plotting library is available offline, so figure reproductions render
as text: one character glyph per series over a scaled grid.  Good enough
to eyeball the orderings and crossovers the paper's figures show.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_chart"]

_GLYPHS = "ox*+#@%&"


def ascii_chart(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    y_min: float | None = None,
    y_max: float | None = None,
) -> str:
    """Render named ``(xs, ys)`` series as a text chart.

    Each series gets a glyph from a fixed cycle; a legend follows the grid.
    """
    points = [
        (label, list(xs), list(ys))
        for label, (xs, ys) in series.items()
        if len(xs) and len(xs) == len(ys)
    ]
    if not points:
        return f"{title}\n(no data)"

    all_x = [x for _, xs, _ in points for x in xs]
    all_y = [y for _, _, ys in points for y in ys if math.isfinite(y)]
    lo_x, hi_x = min(all_x), max(all_x)
    lo_y = min(all_y) if y_min is None else y_min
    hi_y = max(all_y) if y_max is None else y_max
    if hi_x == lo_x:
        hi_x = lo_x + 1.0
    if hi_y == lo_y:
        hi_y = lo_y + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (label, xs, ys) in enumerate(points):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = round((x - lo_x) / (hi_x - lo_x) * (width - 1))
            row = round((y - lo_y) / (hi_y - lo_y) * (height - 1))
            row = height - 1 - max(0, min(height - 1, row))
            col = max(0, min(width - 1, col))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi_y:.3g}"
    bottom_label = f"{lo_y:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(pad)
        elif r == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}|")
    axis = f"{lo_x:.3g}".ljust(width // 2) + f"{hi_x:.3g}".rjust(width - width // 2)
    lines.append(" " * pad + "  " + axis)
    lines.append(" " * pad + f"  ({y_label} vs {x_label})")
    for idx, (label, _, _) in enumerate(points):
        lines.append(" " * pad + f"  {_GLYPHS[idx % len(_GLYPHS)]} = {label}")
    return "\n".join(lines)
