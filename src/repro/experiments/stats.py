"""Statistical analysis of replicated experiments.

Accept-rate differences between heuristics are often a few points on
noisy Poisson workloads; these helpers make the comparisons honest:
t-based and bootstrap confidence intervals, and a paired-by-seed
comparison of two schedulers (pairing removes the workload variance, which
dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

import numpy as np
from scipy import stats as sps

from ..core.problem import ProblemInstance
from ..schedulers.base import Scheduler

__all__ = [
    "t_confidence_interval",
    "bootstrap_confidence_interval",
    "SchedulerComparison",
    "compare_schedulers",
]


def t_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float]:
    """Student-t confidence interval for the mean of ``samples``.

    A single sample yields a degenerate ``(x, x)`` interval.
    """
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    if not (0 < confidence < 1):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return (mean, mean)
    sem = float(arr.std(ddof=1) / np.sqrt(arr.size))
    if sem == 0.0:
        return (mean, mean)
    half = float(sps.t.ppf(0.5 + confidence / 2, df=arr.size - 1)) * sem
    return (mean - half, mean + half)


def bootstrap_confidence_interval(
    samples: Sequence[float],
    *,
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for any statistic."""
    arr = np.asarray(list(samples), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one sample")
    rng = rng or np.random.default_rng(0)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    boots = np.apply_along_axis(statistic, 1, arr[idx])
    alpha = (1 - confidence) / 2
    return (float(np.quantile(boots, alpha)), float(np.quantile(boots, 1 - alpha)))


@dataclass(frozen=True)
class SchedulerComparison:
    """Paired-by-seed comparison of two schedulers on one metric."""

    name_a: str
    name_b: str
    mean_a: float
    mean_b: float
    mean_diff: float
    diff_ci: tuple[float, float]
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """True when the paired difference is significant at 5 %."""
        return self.p_value < 0.05

    @property
    def winner(self) -> str | None:
        """Name of the significantly better scheduler, or ``None``."""
        if not self.significant:
            return None
        return self.name_a if self.mean_diff > 0 else self.name_b


def compare_schedulers(
    make_problem: Callable[[int], ProblemInstance],
    scheduler_a: Scheduler,
    scheduler_b: Scheduler,
    *,
    seeds: Sequence[int],
    metric: Callable[[ProblemInstance, object], float] | None = None,
    confidence: float = 0.95,
) -> SchedulerComparison:
    """Run both schedulers on identical seeded workloads and test the
    paired difference of ``metric`` (default: accept rate)."""
    if len(seeds) < 2:
        raise ValueError("paired comparison needs at least two seeds")
    if metric is None:
        metric = lambda problem, result: result.accept_rate  # noqa: E731

    a_vals, b_vals = [], []
    for seed in seeds:
        problem = make_problem(int(seed))
        a_vals.append(metric(problem, scheduler_a.schedule(problem)))
        b_vals.append(metric(problem, scheduler_b.schedule(problem)))
    a = np.asarray(a_vals)
    b = np.asarray(b_vals)
    diffs = a - b
    if np.allclose(diffs, diffs[0]):
        # identical differences: the t statistic is degenerate
        p_value = 0.0 if diffs[0] != 0 else 1.0
    else:
        p_value = float(sps.ttest_rel(a, b).pvalue)
    return SchedulerComparison(
        name_a=scheduler_a.name,
        name_b=scheduler_b.name,
        mean_a=float(a.mean()),
        mean_b=float(b.mean()),
        mean_diff=float(diffs.mean()),
        diff_ci=t_confidence_interval(diffs, confidence),
        p_value=p_value,
        n=len(seeds),
    )
