"""Canonical experiment definitions: one function per paper figure.

Each function regenerates the rows/series of a published figure (or an
ablation) and returns a :class:`~repro.metrics.report.Table` plus an ASCII
chart.  Benchmarks and the CLI call these with different sizes; the
defaults match what EXPERIMENTS.md records.

Workload sizes are parameters everywhere so the benchmark suite can run
scaled-down versions quickly; orderings are stable well below the default
sizes.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..core.objectives import resource_utilization_time_averaged
from ..fairness import FluidSimulation
from ..metrics.report import Table
from ..schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GreedyFlexible,
    MinRatePolicy,
    RetryGreedyFlexible,
    Scheduler,
    SlotsScheduler,
    WindowFlexible,
    cumulated_slots,
    fifo_slots,
    minbw_slots,
    minvol_slots,
)
from ..schedulers.costs import CumulatedCost
from ..workload import paper_flexible_workload, paper_rigid_workload
from .plotting import ascii_chart
from .runner import replicate

__all__ = [
    "control_latency",
    "extensions",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "tuning_factor",
    "tcp_baseline",
    "ablation_window",
    "ablation_cost",
    "section53_claims",
    "FIGURES",
]

DEFAULT_SEEDS: tuple[int, ...] = (0, 1, 2)


def _policy(name: str | float):
    return MinRatePolicy() if name == "min-bw" else FractionOfMaxPolicy(float(name))


# ---------------------------------------------------------------------------
# Figure 4 — rigid heuristics vs load
# ---------------------------------------------------------------------------

def fig4(
    loads: Sequence[float] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    n_requests: int = 1000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Figure 4: accept rate and utilisation of the rigid heuristics.

    FIFO, MINVOL-SLOTS, MINBW-SLOTS and CUMULATED-SLOTS over a load sweep
    on the §4.3 platform.  Expected shape: FIFO worst accept rate (and
    degrading with load); MINVOL lowest utilisation; CUMULATED ≈ MINBW.
    """
    schedulers = [fifo_slots(), minvol_slots(), minbw_slots(), cumulated_slots()]
    headers = ["load"]
    for s in schedulers:
        short = s.name.replace("-slots", "")
        headers += [f"{short}:accept", f"{short}:util"]
    table = Table(headers, title="Figure 4 — rigid heuristics (accept rate / utilisation)")
    accept_series: dict[str, tuple[list[float], list[float]]] = {
        s.name: ([], []) for s in schedulers
    }

    for load in loads:
        def run(seed: int) -> dict[str, float]:
            prob = paper_rigid_workload(load, n_requests, seed=seed)
            out: dict[str, float] = {}
            for scheduler in schedulers:
                result = scheduler.schedule(prob)
                out[f"{scheduler.name}:accept"] = result.accept_rate
                out[f"{scheduler.name}:util"] = resource_utilization_time_averaged(
                    prob.platform, prob.requests, result
                )
            return out

        agg = replicate(run, seeds)
        row: list[float] = [load]
        for scheduler in schedulers:
            row += [agg[f"{scheduler.name}:accept"].mean, agg[f"{scheduler.name}:util"].mean]
            xs, ys = accept_series[scheduler.name]
            xs.append(load)
            ys.append(agg[f"{scheduler.name}:accept"].mean)
        table.add_row(*row)

    chart = ascii_chart(
        accept_series, title="Figure 4 (accept rate)", x_label="load", y_label="accept rate"
    )
    return table, chart


# ---------------------------------------------------------------------------
# Figure 5 — GREEDY vs WINDOW under heavy load (f = 1)
# ---------------------------------------------------------------------------

def fig5(
    gaps: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 5.0),
    t_steps: Sequence[float] = (100.0, 400.0, 1600.0),
    n_requests: int = 1200,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Figure 5: accept rate vs mean inter-arrival, FCFS vs interval-based.

    All schedulers grant ``f = 1`` (full host rate).  Expected shape: in a
    very loaded network the interval-based heuristics beat FCFS, and
    longer intervals do better, converging as load lightens.
    """
    schedulers: list[Scheduler] = [GreedyFlexible(policy=FractionOfMaxPolicy(1.0))]
    schedulers += [WindowFlexible(t_step=t, policy=FractionOfMaxPolicy(1.0)) for t in t_steps]
    table = Table(
        ["mean_interarrival"] + [s.name for s in schedulers],
        title="Figure 5 — FCFS vs interval-based, heavy load, f=1 (accept rate)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {s.name: ([], []) for s in schedulers}

    for gap in gaps:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            return {s.name: s.schedule(prob).accept_rate for s in schedulers}

        agg = replicate(run, seeds)
        table.add_row(gap, *[agg[s.name].mean for s in schedulers])
        for s in schedulers:
            xs, ys = series[s.name]
            xs.append(gap)
            ys.append(agg[s.name].mean)

    chart = ascii_chart(
        series, title="Figure 5", x_label="mean inter-arrival (s)", y_label="accept rate"
    )
    return table, chart


# ---------------------------------------------------------------------------
# Figures 6 and 7 — bandwidth policies under heavy / light load
# ---------------------------------------------------------------------------

def _policy_sweep(
    make_scheduler: Callable[[object], Scheduler],
    title: str,
    gaps_heavy: Sequence[float],
    gaps_light: Sequence[float],
    policies: Sequence[str | float],
    n_requests: int,
    seeds: Sequence[int],
) -> tuple[Table, str]:
    labels = [str(p) for p in policies]
    table = Table(
        ["regime", "mean_interarrival"] + labels,
        title=title,
    )
    series: dict[str, tuple[list[float], list[float]]] = {lbl: ([], []) for lbl in labels}

    for regime, gaps in (("heavy", gaps_heavy), ("light", gaps_light)):
        for gap in gaps:
            def run(seed: int) -> dict[str, float]:
                prob = paper_flexible_workload(gap, n_requests, seed=seed)
                out = {}
                for policy, label in zip(policies, labels):
                    out[label] = make_scheduler(_policy(policy)).schedule(prob).accept_rate
                return out

            agg = replicate(run, seeds)
            table.add_row(regime, gap, *[agg[lbl].mean for lbl in labels])
            for lbl in labels:
                xs, ys = series[lbl]
                xs.append(gap)
                ys.append(agg[lbl].mean)

    chart = ascii_chart(series, title=title, x_label="mean inter-arrival (s)", y_label="accept rate")
    return table, chart


def fig6(
    gaps_heavy: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 5.0),
    gaps_light: Sequence[float] = (3.0, 5.0, 10.0, 20.0),
    policies: Sequence[str | float] = ("min-bw", 0.2, 0.5, 0.8, 1.0),
    n_requests: int = 1200,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Figure 6: FCFS accept rate under different f policies.

    Expected shape: when underloaded, smaller granted bandwidth accepts
    more (MIN BW best, monotone in f); under heavy load the policy curves
    collapse together.
    """
    return _policy_sweep(
        lambda p: GreedyFlexible(policy=p),
        "Figure 6 — FCFS with bandwidth policies (accept rate)",
        gaps_heavy,
        gaps_light,
        policies,
        n_requests,
        seeds,
    )


def fig7(
    gaps_heavy: Sequence[float] = (0.1, 0.5, 1.0, 2.0, 5.0),
    gaps_light: Sequence[float] = (3.0, 5.0, 10.0, 20.0),
    policies: Sequence[str | float] = ("min-bw", 0.2, 0.5, 0.8, 1.0),
    t_step: float = 400.0,
    n_requests: int = 1200,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Figure 7: the WINDOW heuristic (length 400) under different f.

    Same sweep as Figure 6 with interval-based decisions; the paper reports
    the same conclusions with slightly better heavy-load numbers.
    """
    return _policy_sweep(
        lambda p: WindowFlexible(t_step=t_step, policy=p),
        f"Figure 7 — WINDOW({t_step:g}) with bandwidth policies (accept rate)",
        gaps_heavy,
        gaps_light,
        policies,
        n_requests,
        seeds,
    )


# ---------------------------------------------------------------------------
# §5.3 tuning-factor study
# ---------------------------------------------------------------------------

def tuning_factor(
    fs: Sequence[float] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
    gap: float = 20.0,
    t_step: float = 400.0,
    n_requests: int = 1200,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """§5.3 tuning study: accept-rate gain vs ``f`` under light load.

    The paper reports gains roughly linear in ``(1 − f)`` for both
    strategies under underloaded conditions.  The table reports, per f,
    the accept rate of GREEDY and WINDOW and the gain relative to f = 1.
    """
    table = Table(
        ["f", "greedy_accept", "greedy_gain", "window_accept", "window_gain"],
        title=f"Tuning factor (gap={gap:g}s, light load)",
    )

    def run(seed: int) -> dict[str, float]:
        prob = paper_flexible_workload(gap, n_requests, seed=seed)
        out = {}
        for f in fs:
            out[f"greedy:{f}"] = GreedyFlexible(policy=FractionOfMaxPolicy(f)).schedule(prob).accept_rate
            out[f"window:{f}"] = (
                WindowFlexible(t_step=t_step, policy=FractionOfMaxPolicy(f)).schedule(prob).accept_rate
            )
        return out

    agg = replicate(run, seeds)
    greedy_base = agg[f"greedy:{fs[-1]}"].mean
    window_base = agg[f"window:{fs[-1]}"].mean
    series: dict[str, tuple[list[float], list[float]]] = {"greedy": ([], []), "window": ([], [])}
    for f in fs:
        g = agg[f"greedy:{f}"].mean
        w = agg[f"window:{f}"].mean
        table.add_row(
            f,
            g,
            (g - greedy_base) / greedy_base if greedy_base else 0.0,
            w,
            (w - window_base) / window_base if window_base else 0.0,
        )
        series["greedy"][0].append(f)
        series["greedy"][1].append(g)
        series["window"][0].append(f)
        series["window"][1].append(w)

    chart = ascii_chart(series, title="Tuning factor", x_label="f", y_label="accept rate")
    return table, chart


# ---------------------------------------------------------------------------
# Reservation vs statistical sharing (the paper's motivation)
# ---------------------------------------------------------------------------

def tcp_baseline(
    gaps: Sequence[float] = (0.5, 2.0, 10.0),
    t_step: float = 400.0,
    n_requests: int = 500,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Reservation vs max-min fluid sharing on the same workload.

    Reservation accepts a fraction of requests but every accepted transfer
    finishes inside its window by construction; fair sharing serves
    everyone a collapsing share — deadline-met rate drops and (in drop
    mode) capacity is wasted on transfers that die.
    """
    table = Table(
        [
            "mean_interarrival",
            "window_accept",
            "fluid_met",
            "fluid_slowdown",
            "fluid_dropped",
            "fluid_wasted_tb",
        ],
        title="Reservation vs max-min statistical sharing",
    )
    series: dict[str, tuple[list[float], list[float]]] = {
        "reservation (accept=on-time)": ([], []),
        "max-min sharing (on-time)": ([], []),
    }

    for gap in gaps:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            window = WindowFlexible(t_step=t_step, policy=FractionOfMaxPolicy(1.0)).schedule(prob)
            fluid = FluidSimulation(prob).run()
            dropped = FluidSimulation(prob, drop_at_deadline=True).run()
            return {
                "window_accept": window.accept_rate,
                "fluid_met": fluid.deadline_met_rate,
                "fluid_slowdown": fluid.mean_slowdown,
                "fluid_dropped": dropped.dropped_rate,
                "fluid_wasted_tb": dropped.wasted_volume / 1e6,
            }

        agg = replicate(run, seeds)
        table.add_row(
            gap,
            agg["window_accept"].mean,
            agg["fluid_met"].mean,
            agg["fluid_slowdown"].mean,
            agg["fluid_dropped"].mean,
            agg["fluid_wasted_tb"].mean,
        )
        series["reservation (accept=on-time)"][0].append(gap)
        series["reservation (accept=on-time)"][1].append(agg["window_accept"].mean)
        series["max-min sharing (on-time)"][0].append(gap)
        series["max-min sharing (on-time)"][1].append(agg["fluid_met"].mean)

    chart = ascii_chart(
        series, title="Reservation vs statistical sharing", x_label="mean inter-arrival (s)", y_label="on-time fraction"
    )
    return table, chart


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------

def ablation_window(
    t_steps: Sequence[float] = (25.0, 50.0, 100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0),
    gap: float = 0.5,
    n_requests: int = 1200,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """WINDOW ``t_step`` sweep: accept rate vs mean response time.

    Longer intervals help the packing but delay decisions (and kill
    requests whose deadline passes while they wait) — the paper's
    "longer response time for grid users" trade-off, quantified.
    """
    table = Table(
        ["t_step", "accept_rate", "mean_wait", "deadline_kills"],
        title=f"Ablation — WINDOW interval length (gap={gap:g}s)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {"accept rate": ([], [])}

    for t_step in t_steps:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            scheduler = WindowFlexible(t_step=t_step, policy=FractionOfMaxPolicy(1.0))
            result = scheduler.schedule(prob)
            waits = [
                alloc.sigma - prob.requests.by_rid(rid).t_start
                for rid, alloc in result.accepted.items()
            ]
            # Requests whose deadline passed before their decision epoch.
            kills = 0
            t_begin = min(r.t_start for r in prob.requests)
            for request in prob.requests:
                epoch = t_begin + (int((request.t_start - t_begin) // t_step) + 1) * t_step
                if request.rate_for_deadline(epoch) > request.max_rate:
                    kills += 1
            return {
                "accept_rate": result.accept_rate,
                "mean_wait": sum(waits) / len(waits) if waits else 0.0,
                "deadline_kills": kills / len(prob.requests),
            }

        agg = replicate(run, seeds)
        table.add_row(
            t_step, agg["accept_rate"].mean, agg["mean_wait"].mean, agg["deadline_kills"].mean
        )
        series["accept rate"][0].append(t_step)
        series["accept rate"][1].append(agg["accept_rate"].mean)

    chart = ascii_chart(series, title="WINDOW t_step ablation", x_label="t_step (s)", y_label="accept rate")
    return table, chart


def ablation_cost(
    loads: Sequence[float] = (2.0, 8.0, 16.0),
    n_requests: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    heterogeneous: bool = False,
) -> tuple[Table, str]:
    """CUMULATED cost design ablation: priority and b_min terms on/off.

    Disabling the priority term removes protection of running requests;
    disabling b_min removes bottleneck normalisation — a no-op on the
    uniform paper platform, so pass ``heterogeneous=True`` to run on the
    Grid'5000-like platform where the term actually discriminates.
    """
    from ..core.platform import Platform

    platform = Platform.grid5000() if heterogeneous else None
    variants = {
        "full": SlotsScheduler(CumulatedCost()),
        "no-priority": SlotsScheduler(CumulatedCost(use_priority=False)),
        "no-bmin": SlotsScheduler(CumulatedCost(use_bmin=False)),
        "minbw": minbw_slots(),
    }
    table = Table(
        ["load"] + list(variants),
        title="Ablation — CUMULATED cost terms (accept rate"
        + (", Grid'5000 platform)" if heterogeneous else ")"),
    )
    series: dict[str, tuple[list[float], list[float]]] = {name: ([], []) for name in variants}

    for load in loads:
        def run(seed: int) -> dict[str, float]:
            prob = paper_rigid_workload(load, n_requests, seed=seed, platform=platform)
            return {name: s.schedule(prob).accept_rate for name, s in variants.items()}

        agg = replicate(run, seeds)
        table.add_row(load, *[agg[name].mean for name in variants])
        for name in variants:
            series[name][0].append(load)
            series[name][1].append(agg[name].mean)

    chart = ascii_chart(series, title="Cost ablation", x_label="load", y_label="accept rate")
    return table, chart


# ---------------------------------------------------------------------------
# §5.3 in-text claims
# ---------------------------------------------------------------------------

def section53_claims(
    n_requests: int = 1000,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Check the §5.3 numeric/ordering claims and report pass/fail.

    Claims: (1) WINDOW beats GREEDY under heavy load; (2) larger windows
    do better under heavy load; (3) the strategies are close when lightly
    loaded, near 50% accept; (4) GREEDY is below 20% when busy; (5) MIN BW
    beats f = 1 when lightly loaded.
    """
    def run(seed: int) -> dict[str, float]:
        heavy = paper_flexible_workload(0.1, n_requests, seed=seed)
        light = paper_flexible_workload(20.0, n_requests, seed=seed)
        full = FractionOfMaxPolicy(1.0)
        return {
            "greedy_heavy": GreedyFlexible(policy=full).schedule(heavy).accept_rate,
            "window100_heavy": WindowFlexible(t_step=100.0, policy=full).schedule(heavy).accept_rate,
            "window400_heavy": WindowFlexible(t_step=400.0, policy=full).schedule(heavy).accept_rate,
            "greedy_light": GreedyFlexible(policy=full).schedule(light).accept_rate,
            "window400_light": WindowFlexible(t_step=400.0, policy=full).schedule(light).accept_rate,
            "greedy_light_minbw": GreedyFlexible(policy=MinRatePolicy()).schedule(light).accept_rate,
        }

    agg = replicate(run, seeds)
    table = Table(["claim", "measured", "holds"], title="§5.3 claims")
    checks = [
        (
            "WINDOW(400) > GREEDY under heavy load",
            f"{agg['window400_heavy'].mean:.3f} vs {agg['greedy_heavy'].mean:.3f}",
            agg["window400_heavy"].mean > agg["greedy_heavy"].mean,
        ),
        (
            "larger window helps under heavy load",
            f"{agg['window400_heavy'].mean:.3f} >= {agg['window100_heavy'].mean:.3f}",
            agg["window400_heavy"].mean >= agg["window100_heavy"].mean - 0.01,
        ),
        (
            "GREEDY < 20% accept when busy",
            f"{agg['greedy_heavy'].mean:.3f}",
            agg["greedy_heavy"].mean < 0.20,
        ),
        (
            "strategies close when light",
            f"|{agg['window400_light'].mean:.3f} - {agg['greedy_light'].mean:.3f}|",
            abs(agg["window400_light"].mean - agg["greedy_light"].mean) < 0.08,
        ),
        (
            "~50% accept with MIN BW guarantee when light",
            f"{agg['greedy_light_minbw'].mean:.3f}",
            0.35 <= agg["greedy_light_minbw"].mean <= 0.75,
        ),
        (
            "MIN BW > f=1 when light",
            f"{agg['greedy_light_minbw'].mean:.3f} vs {agg['greedy_light'].mean:.3f}",
            agg["greedy_light_minbw"].mean > agg["greedy_light"].mean,
        ),
    ]
    for claim, measured, holds in checks:
        table.add_row(claim, measured, "yes" if holds else "NO")
    chart = ""
    return table, chart


# ---------------------------------------------------------------------------
# Extensions (the paper's conclusion / future-work directions)
# ---------------------------------------------------------------------------

def extensions(
    gaps: Sequence[float] = (0.5, 2.0, 10.0),
    n_requests: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Book-ahead and retry vs the published heuristics.

    The model allows any start in ``[t_s, t_f − vol/bw]`` but Algorithms
    2–3 always start at the decision instant.  Booking the earliest
    feasible start (malleable reservations, [6]) and client retries
    (§2.3's "try later") both raise the accept rate substantially.
    """
    schedulers: list[Scheduler] = [
        GreedyFlexible(policy=MinRatePolicy()),
        WindowFlexible(t_step=400.0, policy=MinRatePolicy()),
        EarliestStartFlexible(policy=MinRatePolicy()),
        RetryGreedyFlexible(policy=MinRatePolicy(), backoff=120.0, max_attempts=6),
    ]
    table = Table(
        ["mean_interarrival"] + [s.name for s in schedulers],
        title="Extensions — book-ahead and retry vs published heuristics (accept rate)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {s.name: ([], []) for s in schedulers}
    for gap in gaps:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            return {s.name: s.schedule(prob).accept_rate for s in schedulers}

        agg = replicate(run, seeds)
        table.add_row(gap, *[agg[s.name].mean for s in schedulers])
        for s in schedulers:
            series[s.name][0].append(gap)
            series[s.name][1].append(agg[s.name].mean)
    chart = ascii_chart(series, title="Extensions", x_label="mean inter-arrival (s)", y_label="accept rate")
    return table, chart


def hotspot(
    skews: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    gap: float = 2.0,
    n_requests: int = 800,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Hot-spot sensitivity ("relieving tentative hot spots", §7).

    One egress point attracts ``skew``× the traffic of the others.  The
    WINDOW cost function balances load away from the hot port, so its
    advantage over GREEDY grows with the skew.
    """
    from ..workload import FlexibleWorkload, HotspotPairs, PoissonArrivals
    from ..core.platform import Platform
    import numpy as np

    platform = Platform.paper_platform()
    table = Table(
        ["skew", "greedy", "window", "window_advantage"],
        title=f"Hot-spot traffic (one egress skewed; gap={gap:g}s)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {"greedy": ([], []), "window": ([], [])}
    for skew in skews:
        weights = [skew] + [1.0] * (platform.num_egress - 1)

        def run(seed: int) -> dict[str, float]:
            workload = FlexibleWorkload(
                platform,
                arrivals=PoissonArrivals(gap),
                pairs=HotspotPairs(egress_weights=weights),
            )
            prob = workload.generate(n_requests, np.random.default_rng(seed))
            return {
                "greedy": GreedyFlexible(policy=FractionOfMaxPolicy(1.0)).schedule(prob).accept_rate,
                "window": WindowFlexible(t_step=400.0, policy=FractionOfMaxPolicy(1.0)).schedule(prob).accept_rate,
            }

        agg = replicate(run, seeds)
        table.add_row(skew, agg["greedy"].mean, agg["window"].mean, agg["window"].mean - agg["greedy"].mean)
        series["greedy"][0].append(skew)
        series["greedy"][1].append(agg["greedy"].mean)
        series["window"][0].append(skew)
        series["window"][1].append(agg["window"].mean)
    chart = ascii_chart(series, title="Hot-spot sensitivity", x_label="skew", y_label="accept rate")
    return table, chart


def control_latency(
    latencies: Sequence[float] = (0.0, 0.1, 1.0, 10.0, 60.0),
    gap: float = 1.0,
    n_requests: int = 600,
    seeds: Sequence[int] = DEFAULT_SEEDS,
) -> tuple[Table, str]:
    """Distributed admission: accept rate vs signalling latency (§5.4, §7).

    The control plane equals GREEDY at zero latency; growing one-way
    latency delays starts (shrinking windows) and holds bandwidth
    pessimistically during probes, trading accept rate for decentralised
    decisions.
    """
    from ..control import ControlPlane

    table = Table(
        ["latency", "accept_rate", "messages_per_request"],
        title=f"Control-plane signalling cost (gap={gap:g}s)",
    )
    series: dict[str, tuple[list[float], list[float]]] = {"accept rate": ([], [])}
    for latency in latencies:
        def run(seed: int) -> dict[str, float]:
            prob = paper_flexible_workload(gap, n_requests, seed=seed)
            plane = ControlPlane(policy=MinRatePolicy(), latency=latency)
            result = plane.schedule(prob)
            return {
                "accept_rate": result.accept_rate,
                "mpr": result.meta["messages"] / prob.num_requests,
            }

        agg = replicate(run, seeds)
        table.add_row(latency, agg["accept_rate"].mean, agg["mpr"].mean)
        series["accept rate"][0].append(latency)
        series["accept rate"][1].append(agg["accept_rate"].mean)
    chart = ascii_chart(series, title="Signalling latency", x_label="one-way latency (s)", y_label="accept rate")
    return table, chart


#: Experiment id → callable, used by the CLI and the benchmark harness.
FIGURES: dict[str, Callable[..., tuple[Table, str]]] = {
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "tuning": tuning_factor,
    "tcp": tcp_baseline,
    "ablation-window": ablation_window,
    "ablation-cost": ablation_cost,
    "claims": section53_claims,
    "extensions": extensions,
    "hotspot": hotspot,
    "control-latency": control_latency,
}

# Registered lazily to avoid a circular import at module load.
from .extended import (  # noqa: E402
    coallocation,
    diurnal_load,
    localsearch_study,
    optimality_gap_flexible,
    rtt_unfairness_study,
)

FIGURES["coallocation"] = coallocation
FIGURES["optgap"] = optimality_gap_flexible
FIGURES["rtt-unfairness"] = rtt_unfairness_study
FIGURES["diurnal"] = diurnal_load
FIGURES["localsearch"] = localsearch_study
