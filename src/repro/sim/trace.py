"""Event tracing for simulations.

An :class:`EventTrace` records ``(time, label, payload)`` rows as a
simulation dispatches events.  Traces make the online schedulers and the
fluid simulator inspectable in tests and debuggable in examples without any
printing inside the hot loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .events import Event

__all__ = ["EventTrace", "TraceRecord"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One dispatched event: when it fired and what it carried."""

    time: float
    label: str
    payload: Any


class EventTrace:
    """An append-only record of dispatched events.

    Parameters
    ----------
    capacity:
        Optional bound; older records are dropped FIFO once exceeded (keeps
        long simulations memory-bounded when only the tail matters).
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._records: list[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0

    def record(self, event: Event) -> None:
        """Record a dispatched :class:`~repro.sim.events.Event`."""
        label = getattr(event.callback, "__name__", repr(event.callback))
        self.append(event.time, label, event.payload)

    def append(self, time: float, label: str, payload: Any = None) -> None:
        """Record an arbitrary row (schedulers log decisions through this)."""
        self._records.append(TraceRecord(time, label, payload))
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self._records[index]

    @property
    def dropped(self) -> int:
        """Number of records evicted due to the capacity bound."""
        return self._dropped

    def filter(self, label: str) -> list[TraceRecord]:
        """All records with the given label."""
        return [r for r in self._records if r.label == label]

    def times(self) -> list[float]:
        """Dispatch times, in order."""
        return [r.time for r in self._records]

    def summary(self) -> dict[str, Any]:
        """Digest of the trace: retained/dropped counts and label histogram.

        ``dropped`` counts FIFO evictions by the capacity bound, so
        ``recorded = retained + dropped`` is the true number of dispatches
        even when only the tail was kept.  Admission-shaped payloads are
        tallied too: any record whose payload carries a ``reason`` (a
        :class:`~repro.core.booking.RejectReason` or its string value —
        ``shard-unreachable`` being the one chaos drills care about) lands
        in ``reject_reasons``, and records labeled as re-admissions count
        toward ``readmissions``.
        """
        labels: dict[str, int] = {}
        reject_reasons: dict[str, int] = {}
        readmissions = 0
        for record in self._records:
            labels[record.label] = labels.get(record.label, 0) + 1
            reason = self._reason_of(record.payload)
            if reason is not None:
                reject_reasons[reason] = reject_reasons.get(reason, 0) + 1
            if "readmit" in record.label:
                readmissions += 1
        return {
            "retained": len(self._records),
            "dropped": self._dropped,
            "recorded": len(self._records) + self._dropped,
            "labels": dict(sorted(labels.items())),
            "reject_reasons": dict(sorted(reject_reasons.items())),
            "readmissions": readmissions,
            "first_time": self._records[0].time if self._records else None,
            "last_time": self._records[-1].time if self._records else None,
        }

    @staticmethod
    def _reason_of(payload: Any) -> str | None:
        """Normalised reject reason carried by a payload, if any."""
        reason: Any = None
        if isinstance(payload, dict):
            reason = payload.get("reason")
        elif hasattr(payload, "reason"):
            reason = payload.reason
        if reason is None:
            return None
        value = getattr(reason, "value", reason)  # RejectReason -> its string
        return value if isinstance(value, str) else str(value)
