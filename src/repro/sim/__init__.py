"""Discrete-event simulation substrate.

A deterministic heap-based engine used by the fluid (max-min) baseline and
the overlay control plane.  See :class:`Simulator`.
"""

from .engine import Simulator
from .events import Event, EventQueue
from .trace import EventTrace, TraceRecord

__all__ = ["Event", "EventQueue", "EventTrace", "Simulator", "TraceRecord"]
