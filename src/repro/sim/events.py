"""Event primitives for the discrete-event simulation engine.

Events are ordered by ``(time, priority, sequence)``.  The sequence number is
assigned by the queue at insertion, making ordering deterministic for
same-time events regardless of payload type.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

__all__ = ["Event", "EventQueue"]


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Comparison uses ``(time, priority, seq)`` only; the callback and payload
    never participate in ordering.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[Event], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(
        self,
        time: float,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at ``time``; returns the (cancellable) event."""
        event = Event(time=time, priority=priority, seq=next(self._counter), callback=callback, payload=payload)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Remove and return the earliest live event, or ``None`` when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the earliest live event, or ``None`` when empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
