"""A small deterministic discrete-event simulation engine.

The engine advances a simulation clock through an :class:`EventQueue`,
invoking callbacks in ``(time, priority, insertion)`` order.  It underpins
the max-min fluid simulator (:mod:`repro.fairness.fluid`) and the control
plane (:mod:`repro.control`); the admission heuristics themselves only need
sorted arrival processing and use lighter-weight loops.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import Any

from ..obs.telemetry import get_telemetry
from .events import Event, EventQueue
from .trace import EventTrace

__all__ = ["Simulator"]


class Simulator:
    """Discrete-event simulation driver.

    Parameters
    ----------
    start_time:
        Initial clock value.
    trace:
        Optional :class:`EventTrace` receiving a record of every dispatched
        event (useful for debugging schedulers and for the tests).
    """

    def __init__(self, start_time: float = 0.0, trace: EventTrace | None = None) -> None:
        self.queue = EventQueue()
        self._now = start_time
        self.trace = trace
        self._steps = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """The current simulation time."""
        return self._now

    @property
    def steps(self) -> int:
        """Number of events dispatched so far."""
        return self._steps

    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` (never in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule at {time} before now={self._now}")
        return self.queue.push(time, callback, payload, priority)

    def after(
        self,
        delay: float,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.queue.push(self._now + delay, callback, payload, priority)

    def every(
        self,
        interval: float,
        callback: Callable[[Event], None],
        payload: Any = None,
        priority: int = 0,
        *,
        start: float | None = None,
        until: float = math.inf,
    ) -> Event:
        """Schedule ``callback`` periodically: at ``start`` (default
        ``now + interval``) and every ``interval`` after, while the next
        occurrence is ``<= until``.

        Each firing re-schedules the next one lazily, so an infinite
        series costs one pending event at a time and :meth:`run`'s own
        ``until`` bound still terminates it.  Returns the first event.
        Periodic housekeeping (hold-expiry sweeps, progress samples) uses
        this instead of hand-rolled re-scheduling callbacks.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        first = (self._now + interval) if start is None else start

        def fire(event: Event) -> None:
            callback(event)
            next_time = event.time + interval
            if next_time <= until:
                self.queue.push(next_time, fire, payload, priority)

        return self.at(first, fire, payload, priority)

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self._now:
            raise RuntimeError(f"time went backwards: {event.time} < {self._now}")
        self._now = event.time
        self._steps += 1
        if self.trace is not None:
            self.trace.record(event)
        tel = get_telemetry()
        if tel.enabled:
            label = getattr(event.callback, "__name__", "event")
            tel.metrics.counter(
                "sim_events_total", "Simulation events dispatched, by callback."
            ).inc(label=label)
            tel.tracer.instant(f"sim.{label}", event.time, cat="sim")
        event.callback(event)
        return True

    def run(self, until: float = math.inf, max_steps: int | None = None) -> float:
        """Run until the queue drains, ``until`` is passed, or ``max_steps``.

        Events scheduled exactly at ``until`` are still dispatched.  Returns
        the final clock value.
        """
        started_at = self._now
        steps = 0
        while True:
            next_time = self.queue.peek_time()
            if next_time is None or next_time > until:
                break
            if max_steps is not None and steps >= max_steps:
                break
            self.step()
            steps += 1
        if next_time is not None and next_time > until:
            self._now = max(self._now, until)
        elif self.queue.peek_time() is None and until is not math.inf:
            self._now = max(self._now, until)
        tel = get_telemetry()
        if tel.enabled:
            tel.tracer.complete("sim.run", started_at, self._now, cat="sim", steps=steps)
            tel.emit("sim.run", self._now, started_at=started_at, steps=steps)
        return self._now
