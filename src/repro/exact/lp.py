"""LP relaxation bound for rigid MAX-REQUESTS.

Relaxing the accept variables to ``[0, 1]`` yields a polynomially-computable
upper bound on the optimal accepted count.  Heuristic accept counts can be
reported as a fraction of this bound on instances too large for the exact
solvers.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance
from .milp import _rigid_capacity_matrix

__all__ = ["rigid_lp_bound"]


def rigid_lp_bound(problem: ProblemInstance) -> float:
    """Upper bound on the maximum number of acceptable rigid requests."""
    requests = list(problem.requests)
    for request in requests:
        if not request.is_rigid:
            raise ConfigurationError(f"request {request.rid} is flexible; LP bound handles rigid only")
    if not requests:
        return 0.0

    matrix, upper = _rigid_capacity_matrix(problem)
    k = len(requests)
    if matrix.shape[0] == 0:
        return float(k)
    res = linprog(
        c=-np.ones(k),
        A_ub=matrix,
        b_ub=upper * (1 + 1e-12),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"LP solver failed: {res.message}")
    return float(-res.fun)
