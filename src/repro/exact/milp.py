"""Exact MAX-REQUESTS solvers via mixed-integer linear programming.

Two exact formulations built on :func:`scipy.optimize.milp` (HiGHS):

- :func:`max_requests_rigid_exact` — rigid requests: binary accept
  variables, one capacity row per (port, decomposition interval);
- :func:`max_requests_unit_slotted_exact` — the MAX-REQUESTS-DEC structure
  of Theorem 1: unit-bandwidth, unit-duration requests with integral
  windows; binary variables per (request, feasible start slot).

Both return optimal :class:`ScheduleResult` objects that pass
:func:`repro.core.verify_schedule`, plus the LP relaxation is exposed in
:mod:`repro.exact.lp` for bounding heuristics on larger instances.

These solvers are exponential-time in the worst case (the problem is
NP-complete, §3) and intended for instances of at most a few hundred
variables — validating heuristics and the reduction, not production
scheduling.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance

__all__ = ["max_requests_rigid_exact", "max_requests_unit_slotted_exact"]


def _rigid_capacity_matrix(problem: ProblemInstance):
    """Sparse constraint matrix: one row per (port, interval) with demand."""
    requests = list(problem.requests)
    breakpoints = problem.requests.breakpoints()
    platform = problem.platform

    rows: dict[tuple[str, int, int], dict[int, float]] = {}
    for col, request in enumerate(requests):
        bw = request.min_rate
        lo = int(np.searchsorted(breakpoints, request.t_start))
        hi = int(np.searchsorted(breakpoints, request.t_end))
        for interval in range(lo, hi):
            rows.setdefault(("in", request.ingress, interval), {})[col] = bw
            rows.setdefault(("out", request.egress, interval), {})[col] = bw

    data, row_idx, col_idx, upper = [], [], [], []
    for r, (key, coeffs) in enumerate(rows.items()):
        side, port, _ = key
        cap = platform.bin(port) if side == "in" else platform.bout(port)
        upper.append(cap)
        for col, bw in coeffs.items():
            data.append(bw)
            row_idx.append(r)
            col_idx.append(col)
    matrix = csr_matrix((data, (row_idx, col_idx)), shape=(len(rows), len(requests)))
    return matrix, np.asarray(upper)


def max_requests_rigid_exact(
    problem: ProblemInstance,
    *,
    weights: dict[int, float] | None = None,
    time_limit: float | None = None,
) -> ScheduleResult:
    """Optimal accept/reject decisions for a rigid instance.

    With ``weights`` (a ``rid -> weight`` mapping, default 1 per request)
    the objective becomes weighted MAX-REQUESTS — e.g. prioritising large
    or paying users; unspecified rids weigh 1.

    Raises :class:`ConfigurationError` when the instance contains flexible
    requests (their start/rate freedom needs the slotted formulation).
    """
    requests = list(problem.requests)
    for request in requests:
        if not request.is_rigid:
            raise ConfigurationError(
                f"request {request.rid} is flexible; use max_requests_unit_slotted_exact"
            )
    result = ScheduleResult(scheduler="milp-rigid")
    if not requests:
        return result

    matrix, upper = _rigid_capacity_matrix(problem)
    k = len(requests)
    objective = np.ones(k)
    if weights is not None:
        for col, request in enumerate(requests):
            objective[col] = float(weights.get(request.rid, 1.0))
        if np.any(objective < 0):
            raise ConfigurationError("weights must be non-negative")
    constraints = (
        [LinearConstraint(matrix, -np.inf, upper * (1 + 1e-12))] if matrix.shape[0] else []
    )
    res = milp(
        c=-objective,  # maximise (weighted) accepted count
        integrality=np.ones(k),
        bounds=Bounds(0, 1),
        constraints=constraints,
        options={} if time_limit is None else {"time_limit": time_limit},
    )
    if res.x is None:
        raise RuntimeError(f"MILP solver failed: {res.message}")
    accepted = res.x > 0.5
    for request, take in zip(requests, accepted):
        if take:
            result.accept(Allocation.for_request(request, request.min_rate))
        else:
            result.reject(request.rid)
    result.meta["milp_status"] = res.message
    return result


def max_requests_unit_slotted_exact(
    problem: ProblemInstance, *, slot_length: float = 1.0, time_limit: float | None = None
) -> ScheduleResult:
    """Optimal scheduling of unit-bandwidth, unit-slot requests.

    Every request must need exactly one slot at ``MaxRate`` (``vol =
    MaxRate × slot_length``) and have a window aligned to the slot grid —
    the structure of MAX-REQUESTS-DEC (Definition 1).  Variables are
    (request, start-slot) pairs; a request may also be rejected.
    """
    requests = list(problem.requests)
    platform = problem.platform
    result = ScheduleResult(scheduler="milp-unit-slotted")
    if not requests:
        return result

    variables: list[tuple[int, int]] = []  # (request index, slot)
    for idx, request in enumerate(requests):
        duration = request.volume / request.max_rate
        if not math.isclose(duration, slot_length, rel_tol=1e-9):
            raise ConfigurationError(
                f"request {request.rid}: transfer takes {duration}, not one slot"
            )
        first = request.t_start / slot_length
        last = request.t_end / slot_length - 1
        if not (
            math.isclose(first, round(first), abs_tol=1e-9)
            and math.isclose(last, round(last), abs_tol=1e-9)
        ):
            raise ConfigurationError(f"request {request.rid}: window not slot-aligned")
        for slot in range(round(first), round(last) + 1):
            variables.append((idx, slot))

    # Rows: per-request "at most one start" + per (port, slot) capacity.
    row_map: dict[tuple, dict[int, float]] = {}
    for col, (idx, slot) in enumerate(variables):
        request = requests[idx]
        row_map.setdefault(("req", idx), {})[col] = 1.0
        row_map.setdefault(("in", request.ingress, slot), {})[col] = request.max_rate
        row_map.setdefault(("out", request.egress, slot), {})[col] = request.max_rate

    data, row_idx, col_idx, upper = [], [], [], []
    for r, (key, coeffs) in enumerate(row_map.items()):
        if key[0] == "req":
            upper.append(1.0)
        elif key[0] == "in":
            upper.append(platform.bin(key[1]))
        else:
            upper.append(platform.bout(key[1]))
        for col, coeff in coeffs.items():
            data.append(coeff)
            row_idx.append(r)
            col_idx.append(col)
    matrix = csr_matrix((data, (row_idx, col_idx)), shape=(len(row_map), len(variables)))

    res = milp(
        c=-np.ones(len(variables)),
        integrality=np.ones(len(variables)),
        bounds=Bounds(0, 1),
        constraints=[LinearConstraint(matrix, -np.inf, np.asarray(upper) * (1 + 1e-12))],
        options={} if time_limit is None else {"time_limit": time_limit},
    )
    if res.x is None:
        raise RuntimeError(f"MILP solver failed: {res.message}")

    chosen = res.x > 0.5
    decided: set[int] = set()
    for col, take in enumerate(chosen):
        if not take:
            continue
        idx, slot = variables[col]
        request = requests[idx]
        if idx in decided:  # pragma: no cover - excluded by the ≤1 rows
            continue
        decided.add(idx)
        result.accept(
            Allocation.for_request(request, bw=request.max_rate, sigma=slot * slot_length)
        )
    for idx, request in enumerate(requests):
        if idx not in decided:
            result.reject(request.rid)
    result.meta["milp_status"] = res.message
    return result
