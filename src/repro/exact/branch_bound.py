"""Pure-Python branch-and-bound for rigid MAX-REQUESTS.

An independent exact solver (no MILP dependency) used to cross-check the
scipy formulation and to let the benchmarks measure heuristic optimality
gaps on small instances.  Depth-first search over accept/reject decisions
in arrival order, with two prunes:

- **count bound**: accepted so far + requests left ≤ best known;
- **feasibility**: accept branches only when the request fits the current
  partial ledger (Eq. 1 is monotone — adding requests never helps).

Worst case exponential (the problem is NP-complete, §3); intended for
instances up to ~30 requests.
"""

from __future__ import annotations

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance

__all__ = ["max_requests_rigid_bb"]


def max_requests_rigid_bb(problem: ProblemInstance, *, max_nodes: int = 2_000_000) -> ScheduleResult:
    """Optimal rigid accept set by branch and bound.

    Raises ``RuntimeError`` if the node budget is exhausted before the
    search completes (result would not be provably optimal).
    """
    requests = sorted(problem.requests, key=lambda r: (r.t_start, r.rid))
    for request in requests:
        if not request.is_rigid:
            raise ConfigurationError(f"request {request.rid} is flexible; B&B handles rigid only")

    best: list[int] = []
    current: list[int] = []
    ledger = PortLedger(problem.platform)
    nodes = 0
    k = len(requests)

    def dfs(pos: int) -> None:
        nonlocal nodes, best
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(f"branch-and-bound node budget ({max_nodes}) exhausted")
        if len(current) + (k - pos) <= len(best):
            return  # cannot beat the incumbent
        if pos == k:
            if len(current) > len(best):
                best = list(current)
            return
        request = requests[pos]
        # Accept branch first: good incumbents early tighten the bound.
        if ledger.fits(request.ingress, request.egress, request.t_start, request.t_end, request.min_rate):
            ledger.allocate(
                request.ingress, request.egress, request.t_start, request.t_end, request.min_rate
            )
            current.append(request.rid)
            dfs(pos + 1)
            current.pop()
            ledger.release(
                request.ingress, request.egress, request.t_start, request.t_end, request.min_rate
            )
        dfs(pos + 1)

    dfs(0)

    result = ScheduleResult(scheduler="branch-bound", meta={"nodes": nodes})
    accepted = set(best)
    by_rid = {r.rid: r for r in requests}
    for rid in accepted:
        request = by_rid[rid]
        result.accept(Allocation.for_request(request, request.min_rate))
    for request in requests:
        if request.rid not in accepted:
            result.reject(request.rid)
    return result
