"""Time-indexed LP upper bound for flexible MAX-REQUESTS.

The rigid LP bound (:mod:`repro.exact.lp`) does not apply to flexible
requests, whose start time and rate are free.  This module relaxes the
problem further — accepted fraction ``x_r ∈ [0, 1]`` and a *variable-rate*
profile ``y_{r,s} ≥ 0`` per time slot ``s`` — and maximises ``Σ x_r``
subject to

- volume delivery:  ``Σ_s y_{r,s} · len(s) = vol(r) · x_r``,
- host limit:       ``y_{r,s} ≤ MaxRate(r) · x_r``,
- window:           ``y_{r,s} = 0`` outside ``[t_s(r), t_f(r)]``,
- port capacity:    ``Σ_r y_{r,s} ≤ B`` at every port and slot.

Every feasible constant-rate schedule maps onto a feasible point (set
``y = bw`` on ``[σ, τ]``), so the LP optimum upper-bounds the true
MAX-REQUESTS optimum.  Slot boundaries are the union of request window
endpoints (no discretisation error), optionally coarsened to bound the LP
size on long traces.

Used by the benchmarks to report optimality gaps for GREEDY, WINDOW and
the book-ahead extension.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance

__all__ = ["flexible_lp_bound"]


def _slot_edges(problem: ProblemInstance, max_slots: int) -> np.ndarray:
    edges = problem.requests.breakpoints()
    if edges.size < 2:
        raise ConfigurationError("need at least one non-empty window")
    if edges.size - 1 <= max_slots:
        return edges
    # Coarsen: uniform grid over the span, keeping the exact endpoints.
    # Coarsening only loosens the bound (rates may move freely inside a
    # slot), so it stays a valid upper bound.
    lo, hi = float(edges[0]), float(edges[-1])
    return np.linspace(lo, hi, max_slots + 1)


def flexible_lp_bound(problem: ProblemInstance, *, max_slots: int = 300) -> float:
    """Upper bound on the number of acceptable (flexible) requests."""
    requests = list(problem.requests)
    if not requests:
        return 0.0
    platform = problem.platform
    edges = _slot_edges(problem, max_slots)
    lengths = np.diff(edges)
    num_slots = lengths.size

    # Variable layout: x_r for r in 0..K-1, then y_{r,s} for the (r, s)
    # pairs where the window overlaps the slot.
    k = len(requests)
    y_index: dict[tuple[int, int], int] = {}
    next_var = k
    slots_of: list[list[int]] = []
    for r_idx, request in enumerate(requests):
        lo = int(np.searchsorted(edges, request.t_start, side="right") - 1)
        hi = int(np.searchsorted(edges, request.t_end, side="left"))
        lo = max(lo, 0)
        hi = min(hi, num_slots)
        cols = []
        for s in range(lo, hi):
            # Overlap of the window with slot s; a coarsened slot may stick
            # out of the window, in which case the deliverable volume is
            # proportionally limited through the host-rate row below.
            y_index[(r_idx, s)] = next_var
            cols.append(s)
            next_var += 1
        if not cols:
            raise ConfigurationError(f"request {request.rid}: window misses every slot")
        slots_of.append(cols)
    num_vars = next_var

    rows_ub: list[tuple[dict[int, float], float]] = []
    rows_eq: list[tuple[dict[int, float], float]] = []

    for r_idx, request in enumerate(requests):
        # volume: sum_s y * overlap_len - vol * x = 0
        coeffs: dict[int, float] = {r_idx: -request.volume}
        for s in slots_of[r_idx]:
            overlap = min(edges[s + 1], request.t_end) - max(edges[s], request.t_start)
            coeffs[y_index[(r_idx, s)]] = max(overlap, 0.0)
        rows_eq.append((coeffs, 0.0))
        # host limit: y - MaxRate * x <= 0
        for s in slots_of[r_idx]:
            rows_ub.append(({y_index[(r_idx, s)]: 1.0, r_idx: -request.max_rate}, 0.0))

    # capacity rows per (port, slot) with any demand
    port_rows: dict[tuple[str, int, int], dict[int, float]] = {}
    for r_idx, request in enumerate(requests):
        for s in slots_of[r_idx]:
            port_rows.setdefault(("in", request.ingress, s), {})[y_index[(r_idx, s)]] = 1.0
            port_rows.setdefault(("out", request.egress, s), {})[y_index[(r_idx, s)]] = 1.0
    for (side, port, _s), coeffs in port_rows.items():
        cap = platform.bin(port) if side == "in" else platform.bout(port)
        rows_ub.append((coeffs, cap))

    def build(rows):
        data, ri, ci, rhs = [], [], [], []
        for r, (coeffs, bound) in enumerate(rows):
            rhs.append(bound)
            for col, val in coeffs.items():
                data.append(val)
                ri.append(r)
                ci.append(col)
        return csr_matrix((data, (ri, ci)), shape=(len(rows), num_vars)), np.asarray(rhs)

    a_ub, b_ub = build(rows_ub)
    a_eq, b_eq = build(rows_eq)

    c = np.zeros(num_vars)
    c[:k] = -1.0  # maximise accepted fractions
    bounds = [(0.0, 1.0)] * k + [(0.0, None)] * (num_vars - k)
    res = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if not res.success:
        raise RuntimeError(f"flexible LP failed: {res.message}")
    return float(-res.fun)
