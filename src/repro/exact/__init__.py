"""Exact solvers and the NP-completeness machinery (§3).

- 3-DM instances and solver (:mod:`repro.exact.three_dm`);
- the Theorem 1 reduction 3-DM → MAX-REQUESTS-DEC
  (:mod:`repro.exact.reduction`);
- exact MILP solvers for rigid and unit-slotted instances
  (:mod:`repro.exact.milp`), a pure-Python branch-and-bound cross-check
  (:mod:`repro.exact.branch_bound`) and the LP relaxation bound
  (:mod:`repro.exact.lp`);
- the polynomial single-pair algorithms (:mod:`repro.exact.single_pair`).
"""

from .branch_bound import max_requests_rigid_bb
from .flexible_lp import flexible_lp_bound
from .lp import rigid_lp_bound
from .milp import max_requests_rigid_exact, max_requests_unit_slotted_exact
from .reduction import ReducedInstance, reduce_3dm, schedule_from_matching
from .single_pair import edf_single_pair_unit, greedy_single_pair_rigid
from .three_dm import ThreeDMInstance, random_3dm, solve_3dm

__all__ = [
    "ReducedInstance",
    "ThreeDMInstance",
    "edf_single_pair_unit",
    "flexible_lp_bound",
    "greedy_single_pair_rigid",
    "max_requests_rigid_bb",
    "max_requests_rigid_exact",
    "max_requests_unit_slotted_exact",
    "random_3dm",
    "reduce_3dm",
    "rigid_lp_bound",
    "schedule_from_matching",
    "solve_3dm",
]
