"""3-Dimensional Matching instances and a backtracking solver.

Theorem 1 proves MAX-REQUESTS-DEC NP-complete by reduction from 3-DM
(Garey & Johnson [12]): given disjoint sets ``X, Y, Z`` of cardinality ``n``
and triples ``T ⊆ X × Y × Z``, does ``T`` contain ``n`` triples no two of
which agree in any coordinate?

Coordinates here are 0-based integers in ``[0, n)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from ..core.errors import ConfigurationError, InternalInvariantError

__all__ = ["ThreeDMInstance", "solve_3dm", "random_3dm"]


@dataclass(frozen=True)
class ThreeDMInstance:
    """A 3-DM instance: ``n`` elements per dimension plus the triple set."""

    n: int
    triples: tuple[tuple[int, int, int], ...]

    def __init__(self, n: int, triples: Iterable[Sequence[int]]) -> None:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        normalised = []
        for t in triples:
            x, y, z = (int(v) for v in t)
            for coord in (x, y, z):
                if not (0 <= coord < n):
                    raise ConfigurationError(f"triple {t} outside [0, {n})")
            normalised.append((x, y, z))
        if len(set(normalised)) != len(normalised):
            raise ConfigurationError("duplicate triples")
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "triples", tuple(normalised))

    @property
    def num_triples(self) -> int:
        """|T|."""
        return len(self.triples)

    def is_matching(self, selection: Sequence[int]) -> bool:
        """True when the selected triple indices form a perfect matching."""
        if len(selection) != self.n:
            return False
        xs: set[int] = set()
        ys: set[int] = set()
        zs: set[int] = set()
        for idx in selection:
            x, y, z = self.triples[idx]
            if x in xs or y in ys or z in zs:
                return False
            xs.add(x)
            ys.add(y)
            zs.add(z)
        return True


def solve_3dm(instance: ThreeDMInstance) -> tuple[int, ...] | None:
    """Find a perfect matching by backtracking, or ``None``.

    Branches on the uncovered X element with the fewest remaining candidate
    triples (fail-first ordering), which keeps tiny instances instant and
    moderate ones tractable.
    """
    n = instance.n
    by_x: list[list[int]] = [[] for _ in range(n)]
    for idx, (x, _, _) in enumerate(instance.triples):
        by_x[x].append(idx)
    if any(not cands for cands in by_x):
        return None

    used_y = [False] * n
    used_z = [False] * n
    chosen: list[int] = []
    remaining_x = list(range(n))

    def backtrack() -> bool:
        if not remaining_x:
            return True
        # fail-first: pick the x with fewest currently feasible triples
        def feasible_count(x: int) -> int:
            return sum(
                1
                for idx in by_x[x]
                if not used_y[instance.triples[idx][1]] and not used_z[instance.triples[idx][2]]
            )

        x = min(remaining_x, key=feasible_count)
        remaining_x.remove(x)
        for idx in by_x[x]:
            _, y, z = instance.triples[idx]
            if used_y[y] or used_z[z]:
                continue
            used_y[y] = used_z[z] = True
            chosen.append(idx)
            if backtrack():
                return True
            chosen.pop()
            used_y[y] = used_z[z] = False
        remaining_x.append(x)
        return False

    if backtrack():
        if not instance.is_matching(chosen):
            raise InternalInvariantError("backtracker returned a non-matching triple set")
        return tuple(sorted(chosen))
    return None


def random_3dm(
    n: int,
    num_extra: int,
    rng: np.random.Generator,
    *,
    plant_matching: bool = True,
) -> ThreeDMInstance:
    """A random 3-DM instance.

    With ``plant_matching`` (default) a hidden perfect matching is embedded,
    then ``num_extra`` random distractor triples are added; without it, all
    ``n + num_extra`` triples are random (solvable only by luck).
    """
    triples: set[tuple[int, int, int]] = set()
    if plant_matching:
        ys = rng.permutation(n)
        zs = rng.permutation(n)
        for x in range(n):
            triples.add((x, int(ys[x]), int(zs[x])))
    attempts = 0
    while len(triples) < (n if plant_matching else 0) + num_extra:
        candidate = tuple(int(v) for v in rng.integers(0, n, size=3))
        triples.add(candidate)  # set dedups
        attempts += 1
        if attempts > 100 * (num_extra + 1) + 1000:
            break  # dense instance: not enough distinct triples exist
    return ThreeDMInstance(n, sorted(triples))
