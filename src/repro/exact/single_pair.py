"""Polynomial algorithms for the single ingress–egress pair case (§3).

Theorem 1's hardness needs several ports: the paper notes that on a single
ingress–egress pair with uniform requests a greedy algorithm is optimal.
Two polynomial algorithms realise that claim:

- :func:`greedy_single_pair_rigid` — rigid uniform-bandwidth requests are
  ``k``-track interval scheduling (``k = ⌊bottleneck / bw⌋`` parallel
  lanes): accepting compatible requests in earliest-finish-time order is
  the classic exchange-argument optimum;
- :func:`edf_single_pair_unit` — flexible unit-slot requests: at each slot,
  serve the released, unexpired requests with the earliest deadlines.

Tests cross-check both against the exact MILP solver on random instances.
"""

from __future__ import annotations

import heapq
import math

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError, InternalInvariantError
from ..core.ledger import PortLedger
from ..core.problem import ProblemInstance
from ..core.request import Request

__all__ = ["greedy_single_pair_rigid", "edf_single_pair_unit"]


def _require_single_pair(problem: ProblemInstance) -> tuple[int, int]:
    pairs = {(r.ingress, r.egress) for r in problem.requests}
    if len(pairs) > 1:
        raise ConfigurationError(f"instance uses {len(pairs)} pairs; single-pair algorithms need one")
    return next(iter(pairs)) if pairs else (0, 0)


def _uniform_bw(problem: ProblemInstance) -> float:
    bws = {round(r.min_rate, 12) for r in problem.requests}
    if len(bws) > 1:
        raise ConfigurationError("requests are not uniform-bandwidth")
    return next(iter(bws))


def greedy_single_pair_rigid(problem: ProblemInstance) -> ScheduleResult:
    """Optimal accept set for rigid uniform requests on one pair.

    Earliest-finish-time order, accepting whenever the candidate is
    pointwise feasible against the already-accepted set (the Faigle–Nawijn
    greedy for ``k``-machine interval scheduling, which is optimal).
    """
    result = ScheduleResult(scheduler="single-pair-greedy")
    requests = list(problem.requests)
    if not requests:
        return result
    for request in requests:
        if not request.is_rigid:
            raise ConfigurationError(f"request {request.rid} is flexible")
    _require_single_pair(problem)
    _uniform_bw(problem)

    # Earliest finish first, accept whenever pointwise feasible (a set of
    # intervals fits k tracks iff no instant is covered more than k times,
    # which the ledger checks exactly) — the Faigle–Nawijn greedy.
    ledger = PortLedger(problem.platform)
    for request in sorted(requests, key=lambda r: (r.t_end, r.t_start, r.rid)):
        bw = request.min_rate
        if ledger.fits(request.ingress, request.egress, request.t_start, request.t_end, bw):
            ledger.allocate(request.ingress, request.egress, request.t_start, request.t_end, bw)
            result.accept(Allocation.for_request(request, bw))
        else:
            result.reject(request.rid)
    return result


def edf_single_pair_unit(problem: ProblemInstance, *, slot_length: float = 1.0) -> ScheduleResult:
    """Earliest-deadline-first for flexible unit-slot requests on one pair.

    Requests must take exactly one slot at ``MaxRate`` and carry
    slot-aligned windows (the MAX-REQUESTS-DEC shape).  At each slot, the
    ``k`` released, unexpired requests with the earliest deadlines run;
    expired requests are rejected.
    """
    result = ScheduleResult(scheduler="single-pair-edf")
    requests = list(problem.requests)
    if not requests:
        return result
    ingress, egress = _require_single_pair(problem)
    bw = None
    for request in requests:
        duration = request.volume / request.max_rate
        if not math.isclose(duration, slot_length, rel_tol=1e-9):
            raise ConfigurationError(f"request {request.rid}: transfer is not one slot")
        if bw is None:
            bw = request.max_rate
        elif not math.isclose(bw, request.max_rate, rel_tol=1e-9):
            raise ConfigurationError("requests are not uniform-bandwidth")
    if bw is None:
        raise InternalInvariantError("non-empty request list produced no common bandwidth")
    k = int(problem.platform.bottleneck(ingress, egress) / bw * (1 + 1e-12))

    def slot_of(t: float) -> int:
        s = t / slot_length
        if not math.isclose(s, round(s), abs_tol=1e-9):
            raise ConfigurationError(f"time {t} not slot-aligned")
        return round(s)

    by_release: dict[int, list[Request]] = {}
    first = math.inf
    last = -math.inf
    for request in requests:
        release = slot_of(request.t_start)
        deadline = slot_of(request.t_end)  # exclusive: last start slot is deadline-1
        by_release.setdefault(release, []).append(request)
        first = min(first, release)
        last = max(last, deadline)

    pending: list[tuple[int, int, Request]] = []  # (deadline slot, rid, request)
    for slot in range(int(first), int(last)):
        for request in by_release.get(slot, []):
            heapq.heappush(pending, (slot_of(request.t_end), request.rid, request))
        served = 0
        while pending and served < k:
            deadline, _, request = heapq.heappop(pending)
            if deadline <= slot:  # window closed before this slot
                result.reject(request.rid)
                continue
            result.accept(
                Allocation.for_request(request, bw=request.max_rate, sigma=slot * slot_length)
            )
            served += 1
    while pending:
        _, _, request = heapq.heappop(pending)
        result.reject(request.rid)
    return result
