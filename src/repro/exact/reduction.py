"""The Theorem 1 reduction: 3-DM → MAX-REQUESTS-DEC.

Builds, from a 3-DM instance with ``n ≥ 2``, the bandwidth-sharing instance
of the NP-completeness proof:

- ``n + 1`` ingress and ``n + 1`` egress points; the first ``n`` ("regular")
  have capacity 1, the last ("special") has capacity ``n − 1``;
- one **regular request** per triple ``(x, y, z)``: unit bandwidth from
  ingress ``x`` to egress ``y``, rigid window ``[z, z + 1]``;
- ``n − 1`` **special requests** per regular ingress ``i`` (to the special
  egress) and per regular egress ``e`` (from the special ingress), each a
  unit-bandwidth, unit-duration transfer flexible anywhere in ``[0, n]``;
- the acceptance target ``K = n + 2n(n − 1)``.

The paper proves: the 3-DM instance has a perfect matching **iff** at least
``K`` requests can be accepted.  :func:`schedule_from_matching` materialises
the forward direction explicitly (the proof's constructive schedule), which
the tests validate with :func:`repro.core.verify_schedule`; the reverse
direction is checked against the exact MILP solver on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..core.problem import ProblemInstance
from ..core.request import Request, RequestSet
from .three_dm import ThreeDMInstance

__all__ = ["ReducedInstance", "reduce_3dm", "schedule_from_matching"]


@dataclass(frozen=True)
class ReducedInstance:
    """Output of the reduction: the problem, the target ``K`` and the
    bookkeeping linking requests back to triples."""

    source: ThreeDMInstance
    problem: ProblemInstance
    target: int
    #: rid of the regular request associated with each triple index.
    triple_rid: tuple[int, ...]

    @property
    def num_regular(self) -> int:
        """Number of regular (triple) requests."""
        return len(self.triple_rid)

    @property
    def num_special(self) -> int:
        """Number of special requests, ``2n(n − 1)``."""
        return self.problem.num_requests - self.num_regular


def reduce_3dm(instance: ThreeDMInstance) -> ReducedInstance:
    """Build the Theorem 1 instance ``B2`` from a 3-DM instance ``B1``."""
    n = instance.n
    if n < 2:
        raise ConfigurationError("the reduction needs n >= 2 (special ports have capacity n-1)")

    capacities = [1.0] * n + [float(n - 1)]
    platform = Platform(capacities, capacities)
    special = n  # index of the special ingress/egress point

    requests: list[Request] = []
    triple_rid: list[int] = []
    rid = 0
    for x, y, z in instance.triples:
        # rigid unit request pinned to slot z: window [z, z+1], bw = 1
        requests.append(Request.rigid(rid, x, y, volume=1.0, t_start=float(z), t_end=float(z + 1)))
        triple_rid.append(rid)
        rid += 1
    for i in range(n):
        for _ in range(n - 1):
            # flexible: unit transfer, schedulable in any slot of [0, n]
            requests.append(
                Request(rid, i, special, volume=1.0, t_start=0.0, t_end=float(n), max_rate=1.0)
            )
            rid += 1
    for e in range(n):
        for _ in range(n - 1):
            requests.append(
                Request(rid, special, e, volume=1.0, t_start=0.0, t_end=float(n), max_rate=1.0)
            )
            rid += 1

    problem = ProblemInstance(platform, RequestSet(requests))
    target = n + 2 * n * (n - 1)
    return ReducedInstance(instance, problem, target, tuple(triple_rid))


def schedule_from_matching(reduced: ReducedInstance, matching: tuple[int, ...]) -> ScheduleResult:
    """The proof's constructive schedule for a perfect matching ``T'``.

    For each slot ``z`` the matching selects exactly one triple
    ``(x, y, z)``; its regular request runs in that slot, together with one
    special request from every regular ingress except ``x`` and one to every
    regular egress except ``y``.  Every regular point is busy in every slot
    and all ``K`` requests are accepted.
    """
    instance = reduced.source
    n = instance.n
    if not instance.is_matching(matching):
        raise ConfigurationError("selection is not a perfect matching")

    result = ScheduleResult(scheduler="reduction-constructive")
    requests = reduced.problem.requests

    # Special request rids grouped per regular point, in construction order.
    num_regular = reduced.num_regular
    ingress_specials = {
        i: [num_regular + i * (n - 1) + k for k in range(n - 1)] for i in range(n)
    }
    egress_specials = {
        e: [num_regular + n * (n - 1) + e * (n - 1) + k for k in range(n - 1)] for e in range(n)
    }
    ingress_cursor = {i: 0 for i in range(n)}
    egress_cursor = {e: 0 for e in range(n)}

    matched_rids = set()
    for idx in matching:
        x, y, z = instance.triples[idx]
        rid = reduced.triple_rid[idx]
        matched_rids.add(rid)
        result.accept(Allocation.for_request(requests.by_rid(rid), bw=1.0))
        for i in range(n):
            if i == x:
                continue
            srid = ingress_specials[i][ingress_cursor[i]]
            ingress_cursor[i] += 1
            result.accept(Allocation.for_request(requests.by_rid(srid), bw=1.0, sigma=float(z)))
        for e in range(n):
            if e == y:
                continue
            srid = egress_specials[e][egress_cursor[e]]
            egress_cursor[e] += 1
            result.accept(Allocation.for_request(requests.by_rid(srid), bw=1.0, sigma=float(z)))

    for request in requests:
        if request.rid not in result.accepted:
            result.reject(request.rid)
    return result
