"""Overlay router reservation state.

Each access point (ingress or egress) is guarded by a router agent that
tracks, at its own local time, the bandwidth **committed** to running
transfers (released when they finish) and **held** for in-flight two-phase
reservations (released on commit or abort).  Admission decisions only ever
read local agent state — the distributed analogue of the ``ali``/``ale``
bookkeeping in Algorithms 2–3.
"""

from __future__ import annotations

import heapq

from ..core.errors import CapacityError
from ..core.capacity import CAPACITY_SLACK

__all__ = ["PortAgent"]


class PortAgent:
    """Reservation bookkeeping for one access port of an overlay router."""

    __slots__ = ("capacity", "_committed", "_held", "_releases")

    def __init__(self, capacity: float) -> None:
        if capacity <= 0:
            raise CapacityError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._committed = 0.0
        self._held = 0.0
        self._releases: list[tuple[float, float]] = []  # (release time, bw)

    # ------------------------------------------------------------------
    def release_due(self, t: float) -> None:
        """Return bandwidth of transfers finished at or before ``t``."""
        while self._releases and self._releases[0][0] <= t:
            _, bw = heapq.heappop(self._releases)
            self._committed -= bw

    def free(self, t: float) -> float:
        """Uncommitted, unheld bandwidth at local time ``t``."""
        self.release_due(t)
        return self.capacity - self._committed - self._held

    def can_hold(self, t: float, bw: float) -> bool:
        """Would a hold of ``bw`` keep the port within capacity?"""
        return bw <= self.free(t) + self.capacity * CAPACITY_SLACK

    # ------------------------------------------------------------------
    def hold(self, t: float, bw: float) -> bool:
        """Place a hold; returns False (no state change) when it cannot fit."""
        if not self.can_hold(t, bw):
            return False
        self._held += bw
        return True

    def unhold(self, bw: float) -> None:
        """Abort a hold."""
        self._held -= bw
        if self._held < -CAPACITY_SLACK * self.capacity:
            raise CapacityError("released more held bandwidth than outstanding")
        self._held = max(self._held, 0.0)

    def commit(self, bw: float, release_at: float) -> None:
        """Convert a hold into a commitment released at ``release_at``."""
        self.unhold(bw)
        self._committed += bw
        heapq.heappush(self._releases, (release_at, bw))

    # ------------------------------------------------------------------
    @property
    def committed(self) -> float:
        """Bandwidth of running transfers (as of the last release sweep)."""
        return self._committed

    @property
    def held(self) -> float:
        """Bandwidth locked by in-flight reservations."""
        return self._held
