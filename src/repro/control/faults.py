"""Online failure injection for the reservation control plane.

The offline abort model (:mod:`repro.grid.failures`) post-processes a
finished schedule; this module injects failures **while the service
runs**, as events of the discrete-event engine (:mod:`repro.sim`):

- :class:`AbortFault` — a transfer dies mid-flight at a given instant;
- :class:`PortFault` — a port loses ``amount`` MB/s over ``[start, end)``
  (a full outage when the amount reaches the port capacity).

:class:`FaultInjector` schedules these against a live
:class:`~repro.control.service.ReservationService` and drives recovery:
reservations displaced by a port fault have their residual volume
(``volume − carried``) resubmitted with exponential backoff and jitter
(:class:`~repro.schedulers.retry.BackoffSchedule`) until the rebooking is
admitted, the deadline becomes unreachable, or the attempt budget runs
out.

:func:`run_fault_drill` wires a whole experiment — workload arrivals,
random aborts, planned port faults — through one simulator, and is what
the fault benchmark, the example scenario, and the end-to-end tests run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

from ..core.booking import deadline_tolerance
from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..core.request import Request
from ..schedulers.policies import BandwidthPolicy
from ..schedulers.retry import BackoffSchedule
from ..sim.engine import Simulator
from .journal import Journal
from .service import Reservation, ReservationService

__all__ = [
    "AbortFault",
    "PortFault",
    "FaultInjector",
    "FaultDrillReport",
    "run_fault_drill",
]


@dataclass(frozen=True, slots=True)
class AbortFault:
    """Kill reservation ``rid`` at time ``at`` (a mid-flight failure)."""

    rid: int
    at: float


@dataclass(frozen=True, slots=True)
class PortFault:
    """Remove ``amount`` MB/s from a port over ``[start, end)``."""

    side: str  # "ingress" | "egress"
    port: int
    amount: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be 'ingress' or 'egress', got {self.side!r}")
        if not (self.end > self.start):
            raise ConfigurationError(f"empty fault window [{self.start}, {self.end})")
        if self.amount <= 0:
            raise ConfigurationError(f"fault amount must be positive, got {self.amount}")

    @classmethod
    def outage(cls, side: str, port: int, capacity: float, start: float, end: float) -> PortFault:
        """A full outage: the whole ``capacity`` disappears over the window."""
        return cls(side=side, port=port, amount=capacity, start=start, end=end)


class FaultInjector:
    """Schedules faults as simulation events and drives rebooking.

    Parameters
    ----------
    sim:
        The discrete-event engine the service traffic runs on.
    service:
        The reservation service under test.
    rebook:
        Backoff schedule for resubmitting displaced residual volumes;
        ``None`` disables automatic rebooking.
    seed:
        Seed of the injector's private RNG (backoff jitter, random abort
        sampling).  The RNG never touches the service itself, so journal
        replay stays deterministic regardless of jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        service: ReservationService,
        *,
        rebook: BackoffSchedule | None = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.service = service
        self.rebook = rebook
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def schedule_abort(self, fault: AbortFault) -> None:
        """Arrange for a reservation to abort at ``fault.at``."""
        self.sim.at(fault.at, self._on_abort, payload=fault)

    def schedule_fault(self, fault: PortFault) -> None:
        """Arrange for a port degradation to strike at ``fault.start``."""
        self.sim.at(fault.start, self._on_port_fault, payload=fault)

    def maybe_abort(self, reservation: Reservation, abort_rate: float) -> AbortFault | None:
        """Sample a mid-flight abort for a freshly confirmed reservation.

        With probability ``abort_rate`` the transfer dies at a uniform
        point of the part of its ``[σ, τ)`` run still ahead of the clock
        (mirroring the offline model of :mod:`repro.grid.failures`).
        """
        if reservation.allocation is None or self.rng.random() >= abort_rate:
            return None
        alloc = reservation.allocation
        lo = max(self.sim.now, alloc.sigma)
        if lo >= alloc.tau:
            return None
        fault = AbortFault(rid=reservation.rid, at=self.rng.uniform(lo, alloc.tau))
        self.schedule_abort(fault)
        return fault

    # ------------------------------------------------------------------
    def _on_abort(self, event) -> None:
        fault: AbortFault = event.payload
        self.service.abort(fault.rid, now=self.sim.now)

    def _on_port_fault(self, event) -> None:
        fault: PortFault = event.payload
        displaced = self.service.degrade(
            side=fault.side,
            port=fault.port,
            amount=fault.amount,
            start=fault.start,
            end=fault.end,
            now=self.sim.now,
        )
        if self.rebook is None:
            return
        for reservation in displaced:
            self._schedule_rebook(reservation, attempt=1)

    def _schedule_rebook(self, displaced: Reservation, attempt: int) -> None:
        """Queue rebooking attempt ``attempt`` for a displaced residual."""
        if attempt > self.rebook.max_attempts:
            return
        residual = displaced.residual
        if residual <= 0:
            return
        request = displaced.request
        at = self.sim.now + self.rebook.delay(attempt, self.rng)
        # Give up when not even MaxRate can deliver the residual by the
        # deadline from the attempt time.
        if at + residual / request.max_rate > request.t_end + deadline_tolerance(request.t_end):
            return
        self.sim.at(at, self._on_rebook, payload=(displaced, attempt))

    def _on_rebook(self, event) -> None:
        displaced, attempt = event.payload
        request = displaced.request
        rebooked = self.service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=displaced.residual,
            deadline=request.t_end,
            now=self.sim.now,
            max_rate=request.max_rate,
            origin=displaced.rid,
        )
        if not rebooked.confirmed:
            self._schedule_rebook(displaced, attempt + 1)


@dataclass
class FaultDrillReport:
    """Everything a fault-injection run produces."""

    service: ReservationService
    injector: FaultInjector
    aborts: list[AbortFault] = field(default_factory=list)
    faults: list[PortFault] = field(default_factory=list)

    @property
    def journal(self) -> Journal | None:
        """The service's operation journal (when one was attached)."""
        return self.service.journal


def run_fault_drill(
    platform: Platform,
    requests: Iterable[Request],
    *,
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    faults: Sequence[PortFault] = (),
    rebook: BackoffSchedule | None = None,
    backlog_limit: int = 0,
    journal: Journal | None = None,
    seed: int = 0,
    until: float | None = None,
) -> FaultDrillReport:
    """Drive a workload plus failures through one online simulation.

    Each request is submitted at its ``t_start``; confirmed reservations
    abort mid-flight with probability ``abort_rate``; the planned port
    ``faults`` strike at their start times, displacing reservations whose
    residual volume is then rebooked per ``rebook``.  Returns the finished
    service (inspect ``service.stats``, ``service.snapshot()``, or verify
    Eq. 1 via ``service.surviving_schedule()``).
    """
    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")
    service = ReservationService(
        platform, policy=policy, backlog_limit=backlog_limit, journal=journal
    )
    sim = Simulator()
    injector = FaultInjector(sim, service, rebook=rebook, seed=seed)
    report = FaultDrillReport(service=service, injector=injector, faults=list(faults))

    def on_arrival(event) -> None:
        request: Request = event.payload
        reservation = service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=sim.now,
            max_rate=request.max_rate,
        )
        if abort_rate > 0.0:
            fault = injector.maybe_abort(reservation, abort_rate)
            if fault is not None:
                report.aborts.append(fault)

    for request in sorted(requests, key=lambda r: (r.t_start, r.rid)):
        sim.at(request.t_start, on_arrival, payload=request)
    for fault in faults:
        injector.schedule_fault(fault)
    sim.run(until=until if until is not None else float("inf"))
    return report
