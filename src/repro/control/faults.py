"""Online failure injection for the reservation control plane.

The offline abort model (:mod:`repro.grid.failures`) post-processes a
finished schedule; this module injects failures **while the service
runs**, as events of the discrete-event engine (:mod:`repro.sim`):

- :class:`AbortFault` — a transfer dies mid-flight at a given instant;
- :class:`PortFault` — a port loses ``amount`` MB/s over ``[start, end)``
  (a full outage when the amount reaches the port capacity).

:class:`FaultInjector` schedules these against a live
:class:`~repro.control.service.ReservationService` and drives recovery:
reservations displaced by a port fault have their residual volume
(``volume − carried``) resubmitted with exponential backoff and jitter
(:class:`~repro.schedulers.retry.BackoffSchedule`) until the rebooking is
admitted, the deadline becomes unreachable, or the attempt budget runs
out.

:func:`run_fault_drill` wires a whole experiment — workload arrivals,
random aborts, planned port faults — through one simulator, and is what
the fault benchmark, the example scenario, and the end-to-end tests run.
:func:`run_gateway_fault_drill` is its sharded sibling: the same workload
and faults served by a :class:`~repro.gateway.Gateway`, plus
:class:`BrokerCrash` events that kill shard brokers mid-protocol (their
volatile holds are wiped and in-flight two-phase transactions abort).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

from ..core.booking import deadline_tolerance
from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..core.request import Request
from ..schedulers.policies import BandwidthPolicy
from ..schedulers.retry import BackoffSchedule
from ..sim.engine import Simulator
from .journal import Journal
from .service import Reservation, ReservationService

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from ..gateway import Gateway
    from ..gateway.edge import EdgeLimit

__all__ = [
    "AbortFault",
    "BrokerCrash",
    "PortFault",
    "FaultInjector",
    "FaultDrillReport",
    "GatewayDrillReport",
    "run_fault_drill",
    "run_gateway_fault_drill",
]


@dataclass(frozen=True, slots=True)
class AbortFault:
    """Kill reservation ``rid`` at time ``at`` (a mid-flight failure)."""

    rid: int
    at: float


@dataclass(frozen=True, slots=True)
class PortFault:
    """Remove ``amount`` MB/s from a port over ``[start, end)``."""

    side: str  # "ingress" | "egress"
    port: int
    amount: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be 'ingress' or 'egress', got {self.side!r}")
        if not (self.end > self.start):
            raise ConfigurationError(f"empty fault window [{self.start}, {self.end})")
        if self.amount <= 0:
            raise ConfigurationError(f"fault amount must be positive, got {self.amount}")

    @classmethod
    def outage(cls, side: str, port: int, capacity: float, start: float, end: float) -> PortFault:
        """A full outage: the whole ``capacity`` disappears over the window."""
        return cls(side=side, port=port, amount=capacity, start=start, end=end)


@dataclass(frozen=True, slots=True)
class BrokerCrash:
    """Kill shard broker ``shard`` at ``at``; restart it at ``restart_at``.

    A crash wipes the broker's volatile two-phase holds (the reserved
    capacity returns instantly) and makes every prepare/commit against it
    fail until restart — requests pending in the gateway batch at the
    crash instant exercise the mid-prepare abort path.  ``restart_at``
    ``None`` leaves the broker down for the rest of the drill.
    """

    shard: int
    at: float
    restart_at: float | None = None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.restart_at is not None and not (self.restart_at > self.at):
            raise ConfigurationError(
                f"restart_at must follow the crash: {self.restart_at} <= {self.at}"
            )


class FaultInjector:
    """Schedules faults as simulation events and drives rebooking.

    Parameters
    ----------
    sim:
        The discrete-event engine the service traffic runs on.
    service:
        The reservation service under test.
    rebook:
        Backoff schedule for resubmitting displaced residual volumes;
        ``None`` disables automatic rebooking.
    seed:
        Seed of the injector's private RNG (backoff jitter, random abort
        sampling).  The RNG never touches the service itself, so journal
        replay stays deterministic regardless of jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        service: ReservationService,
        *,
        rebook: BackoffSchedule | None = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.service = service
        self.rebook = rebook
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def schedule_abort(self, fault: AbortFault) -> None:
        """Arrange for a reservation to abort at ``fault.at``."""
        self.sim.at(fault.at, self._on_abort, payload=fault)

    def schedule_fault(self, fault: PortFault) -> None:
        """Arrange for a port degradation to strike at ``fault.start``."""
        self.sim.at(fault.start, self._on_port_fault, payload=fault)

    def maybe_abort(self, reservation: Reservation, abort_rate: float) -> AbortFault | None:
        """Sample a mid-flight abort for a freshly confirmed reservation.

        With probability ``abort_rate`` the transfer dies at a uniform
        point of the part of its ``[σ, τ)`` run still ahead of the clock
        (mirroring the offline model of :mod:`repro.grid.failures`).
        """
        if reservation.allocation is None or self.rng.random() >= abort_rate:
            return None
        alloc = reservation.allocation
        lo = max(self.sim.now, alloc.sigma)
        if lo >= alloc.tau:
            return None
        fault = AbortFault(rid=reservation.rid, at=self.rng.uniform(lo, alloc.tau))
        self.schedule_abort(fault)
        return fault

    # ------------------------------------------------------------------
    def _on_abort(self, event) -> None:
        fault: AbortFault = event.payload
        self.service.abort(fault.rid, now=self.sim.now)

    def _on_port_fault(self, event) -> None:
        fault: PortFault = event.payload
        displaced = self.service.degrade(
            side=fault.side,
            port=fault.port,
            amount=fault.amount,
            start=fault.start,
            end=fault.end,
            now=self.sim.now,
        )
        if self.rebook is None:
            return
        for reservation in displaced:
            self._schedule_rebook(reservation, attempt=1)

    def _schedule_rebook(self, displaced: Reservation, attempt: int) -> None:
        """Queue rebooking attempt ``attempt`` for a displaced residual."""
        if attempt > self.rebook.max_attempts:
            return
        residual = displaced.residual
        if residual <= 0:
            return
        request = displaced.request
        at = self.sim.now + self.rebook.delay(attempt, self.rng)
        # Give up when not even MaxRate can deliver the residual by the
        # deadline from the attempt time.
        if at + residual / request.max_rate > request.t_end + deadline_tolerance(request.t_end):
            return
        self.sim.at(at, self._on_rebook, payload=(displaced, attempt))

    def _on_rebook(self, event) -> None:
        displaced, attempt = event.payload
        request = displaced.request
        rebooked = self.service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=displaced.residual,
            deadline=request.t_end,
            now=self.sim.now,
            max_rate=request.max_rate,
            origin=displaced.rid,
        )
        if not rebooked.confirmed:
            self._schedule_rebook(displaced, attempt + 1)


@dataclass
class FaultDrillReport:
    """Everything a fault-injection run produces."""

    service: ReservationService
    injector: FaultInjector
    aborts: list[AbortFault] = field(default_factory=list)
    faults: list[PortFault] = field(default_factory=list)

    @property
    def journal(self) -> Journal | None:
        """The service's operation journal (when one was attached)."""
        return self.service.journal


def run_fault_drill(
    platform: Platform,
    requests: Iterable[Request],
    *,
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    faults: Sequence[PortFault] = (),
    rebook: BackoffSchedule | None = None,
    backlog_limit: int = 0,
    journal: Journal | None = None,
    seed: int = 0,
    until: float | None = None,
) -> FaultDrillReport:
    """Drive a workload plus failures through one online simulation.

    Each request is submitted at its ``t_start``; confirmed reservations
    abort mid-flight with probability ``abort_rate``; the planned port
    ``faults`` strike at their start times, displacing reservations whose
    residual volume is then rebooked per ``rebook``.  Returns the finished
    service (inspect ``service.stats``, ``service.snapshot()``, or verify
    Eq. 1 via ``service.surviving_schedule()``).
    """
    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")
    service = ReservationService(
        platform, policy=policy, backlog_limit=backlog_limit, journal=journal
    )
    sim = Simulator()
    injector = FaultInjector(sim, service, rebook=rebook, seed=seed)
    report = FaultDrillReport(service=service, injector=injector, faults=list(faults))

    def on_arrival(event) -> None:
        request: Request = event.payload
        reservation = service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=sim.now,
            max_rate=request.max_rate,
        )
        if abort_rate > 0.0:
            fault = injector.maybe_abort(reservation, abort_rate)
            if fault is not None:
                report.aborts.append(fault)

    for request in sorted(requests, key=lambda r: (r.t_start, r.rid)):
        sim.at(request.t_start, on_arrival, payload=request)
    for fault in faults:
        injector.schedule_fault(fault)
    sim.run(until=until if until is not None else float("inf"))
    return report


@dataclass
class GatewayDrillReport:
    """Everything a sharded (gateway) fault-injection run produces."""

    gateway: Any  # repro.gateway.Gateway (annotated loosely: cycle guard)
    aborts: list[AbortFault] = field(default_factory=list)
    faults: list[PortFault] = field(default_factory=list)
    crashes: list[BrokerCrash] = field(default_factory=list)

    @property
    def journal(self) -> Journal | None:
        """The gateway's operation journal (when one was attached)."""
        return self.gateway.journal


def run_gateway_fault_drill(
    platform: Platform,
    requests: Iterable[Request],
    *,
    num_shards: int = 1,
    batch_size: int = 1,
    ordering: str = "fifo",
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    faults: Sequence[PortFault] = (),
    crashes: Sequence[BrokerCrash] = (),
    edge: EdgeLimit | None = None,
    hold_ttl: float = 300.0,
    backoff: BackoffSchedule | None = None,
    journal: Journal | None = None,
    seed: int = 0,
    until: float | None = None,
) -> GatewayDrillReport:
    """:func:`run_fault_drill` against a sharded, batched gateway.

    The same experiment shape — arrivals at ``t_start``, sampled
    mid-flight aborts, planned port faults — served by a
    :class:`~repro.gateway.Gateway`, with one extra hazard class:
    :class:`BrokerCrash` events.  At each crash instant arrivals already
    scheduled at that time have been submitted (events at equal times run
    in priority order; crashes run last), so when their batch decides it
    faces the dead broker: prepares fail, placed holds are aborted, and
    the requests reject ``broker-unavailable`` after burning the two-phase
    retry budget.  The trailing open batch is drained at the end of the
    run, so every submission is decided in the returned report.

    Displacement rebooking is a service-drill feature and is not offered
    here; displaced residuals stay unbooked.  Aborts sampled for a batched
    decision are scheduled from the decision (flush) time, mirroring the
    service drill's "from confirmation" semantics.
    """
    from ..gateway import Gateway  # local import: control <-> gateway cycle

    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")
    sim = Simulator()
    rng = random.Random(seed)
    gateway = Gateway(
        platform,
        num_shards=num_shards,
        batch_size=batch_size,
        ordering=ordering,
        policy=policy,
        edge=edge,
        hold_ttl=hold_ttl,
        backoff=backoff,
        journal=journal,
    )
    report = GatewayDrillReport(gateway=gateway, faults=list(faults), crashes=list(crashes))

    def on_decision(reservation: Reservation, now: float) -> None:
        if abort_rate <= 0.0 or reservation.allocation is None:
            return
        if rng.random() >= abort_rate:
            return
        alloc = reservation.allocation
        lo = max(now, alloc.sigma)
        if lo >= alloc.tau:
            return
        fault = AbortFault(rid=reservation.rid, at=rng.uniform(lo, alloc.tau))
        report.aborts.append(fault)
        sim.at(fault.at, on_abort, payload=fault)

    gateway.on_decision = on_decision

    def on_arrival(event) -> None:
        request: Request = event.payload
        gateway.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=sim.now,
            max_rate=request.max_rate,
        )

    def on_abort(event) -> None:
        fault: AbortFault = event.payload
        gateway.abort(fault.rid, now=sim.now)

    def on_port_fault(event) -> None:
        fault: PortFault = event.payload
        gateway.degrade(
            side=fault.side,
            port=fault.port,
            amount=fault.amount,
            start=fault.start,
            end=fault.end,
            now=sim.now,
        )

    def on_crash(event) -> None:
        crash: BrokerCrash = event.payload
        gateway.crash_broker(crash.shard, now=sim.now)

    def on_restart(event) -> None:
        crash: BrokerCrash = event.payload
        gateway.restart_broker(crash.shard, now=sim.now)

    for request in sorted(requests, key=lambda r: (r.t_start, r.rid)):
        sim.at(request.t_start, on_arrival, payload=request)
    for fault in faults:
        sim.at(fault.start, on_port_fault, payload=fault)
    for crash in crashes:
        # priority 1: a crash at time t strikes after the arrivals at t
        # have been submitted but (batch permitting) before they decide.
        sim.at(crash.at, on_crash, payload=crash, priority=1)
        if crash.restart_at is not None:
            sim.at(crash.restart_at, on_restart, payload=crash)
    horizon = until if until is not None else float("inf")
    sim.run(until=horizon)
    gateway.drain(sim.now)
    # The trailing drain can sample fresh mid-flight aborts; run them too.
    sim.run(until=horizon)
    return report
