"""Online failure injection for the reservation control plane.

The offline abort model (:mod:`repro.grid.failures`) post-processes a
finished schedule; this module injects failures **while the service
runs**, as events of the discrete-event engine (:mod:`repro.sim`):

- :class:`AbortFault` — a transfer dies mid-flight at a given instant;
- :class:`PortFault` — a port loses ``amount`` MB/s over ``[start, end)``
  (a full outage when the amount reaches the port capacity).

:class:`FaultInjector` schedules these against a live
:class:`~repro.control.service.ReservationService` and drives recovery:
reservations displaced by a port fault have their residual volume
(``volume − carried``) resubmitted with exponential backoff and jitter
(:class:`~repro.schedulers.retry.BackoffSchedule`) until the rebooking is
admitted, the deadline becomes unreachable, or the attempt budget runs
out.

:func:`run_fault_drill` wires a whole experiment — workload arrivals,
random aborts, planned port faults — through one simulator, and is what
the fault benchmark, the example scenario, and the end-to-end tests run.
:func:`run_gateway_fault_drill` is its sharded sibling: the same workload
and faults served by a :class:`~repro.gateway.Gateway`, plus
:class:`BrokerCrash` events that kill shard brokers mid-protocol (their
volatile holds are wiped and in-flight two-phase transactions abort).

On top of the drill sits the **chaos matrix**
(:func:`run_chaos_matrix`): seeds × scenarios — clean, lossy, partition,
duplicate-storm, crash-mid-2PC (:data:`CHAOS_SCENARIOS`) — each cell a
full drill with a :class:`~repro.gateway.rpc.ChaosPolicy` attached,
quiesced past the hold TTL, and audited by
:func:`~repro.gateway.invariants.check_gateway` (no overcommit, presumed
abort, ledger reconciliation, journal replay convergence).  CI runs the
smoke tier of the matrix and fails on any violation.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Sequence
from typing import TYPE_CHECKING, Any

from ..core.booking import deadline_tolerance
from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..core.request import Request
from ..schedulers.policies import BandwidthPolicy
from ..schedulers.retry import BackoffSchedule
from ..sim.engine import Simulator
from .journal import Journal
from .service import Reservation, ReservationService

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from ..gateway import Gateway
    from ..gateway.edge import EdgeLimit
    from ..gateway.rpc import ChaosPolicy
    from ..obs.recorder import FlightRecorder
    from ..obs.slo import SloRule, SloWatchdog
    from ..obs.telemetry import Telemetry

__all__ = [
    "AbortFault",
    "BrokerCrash",
    "CHAOS_SCENARIOS",
    "ChaosMatrixReport",
    "PortFault",
    "FaultInjector",
    "FaultDrillReport",
    "GatewayDrillReport",
    "chaos_scenario",
    "run_chaos_matrix",
    "run_fault_drill",
    "run_gateway_fault_drill",
]


@dataclass(frozen=True, slots=True)
class AbortFault:
    """Kill reservation ``rid`` at time ``at`` (a mid-flight failure)."""

    rid: int
    at: float


@dataclass(frozen=True, slots=True)
class PortFault:
    """Remove ``amount`` MB/s from a port over ``[start, end)``."""

    side: str  # "ingress" | "egress"
    port: int
    amount: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be 'ingress' or 'egress', got {self.side!r}")
        if not (self.end > self.start):
            raise ConfigurationError(f"empty fault window [{self.start}, {self.end})")
        if self.amount <= 0:
            raise ConfigurationError(f"fault amount must be positive, got {self.amount}")

    @classmethod
    def outage(cls, side: str, port: int, capacity: float, start: float, end: float) -> PortFault:
        """A full outage: the whole ``capacity`` disappears over the window."""
        return cls(side=side, port=port, amount=capacity, start=start, end=end)


@dataclass(frozen=True, slots=True)
class BrokerCrash:
    """Kill shard broker ``shard`` at ``at``; restart it at ``restart_at``.

    A crash wipes the broker's volatile two-phase holds (the reserved
    capacity returns instantly) and makes every prepare/commit against it
    fail until restart — requests pending in the gateway batch at the
    crash instant exercise the mid-prepare abort path.  ``restart_at``
    ``None`` leaves the broker down for the rest of the drill.
    """

    shard: int
    at: float
    restart_at: float | None = None

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if self.restart_at is not None and not (self.restart_at > self.at):
            raise ConfigurationError(
                f"restart_at must follow the crash: {self.restart_at} <= {self.at}"
            )


class FaultInjector:
    """Schedules faults as simulation events and drives rebooking.

    Parameters
    ----------
    sim:
        The discrete-event engine the service traffic runs on.
    service:
        The reservation service under test.
    rebook:
        Backoff schedule for resubmitting displaced residual volumes;
        ``None`` disables automatic rebooking.
    seed:
        Seed of the injector's private RNG (backoff jitter, random abort
        sampling).  The RNG never touches the service itself, so journal
        replay stays deterministic regardless of jitter.
    """

    def __init__(
        self,
        sim: Simulator,
        service: ReservationService,
        *,
        rebook: BackoffSchedule | None = None,
        seed: int = 0,
    ) -> None:
        self.sim = sim
        self.service = service
        self.rebook = rebook
        self.rng = random.Random(seed)

    # ------------------------------------------------------------------
    def schedule_abort(self, fault: AbortFault) -> None:
        """Arrange for a reservation to abort at ``fault.at``."""
        self.sim.at(fault.at, self._on_abort, payload=fault)

    def schedule_fault(self, fault: PortFault) -> None:
        """Arrange for a port degradation to strike at ``fault.start``."""
        self.sim.at(fault.start, self._on_port_fault, payload=fault)

    def maybe_abort(self, reservation: Reservation, abort_rate: float) -> AbortFault | None:
        """Sample a mid-flight abort for a freshly confirmed reservation.

        With probability ``abort_rate`` the transfer dies at a uniform
        point of the part of its ``[σ, τ)`` run still ahead of the clock
        (mirroring the offline model of :mod:`repro.grid.failures`).
        """
        if reservation.allocation is None or self.rng.random() >= abort_rate:
            return None
        alloc = reservation.allocation
        lo = max(self.sim.now, alloc.sigma)
        if lo >= alloc.tau:
            return None
        fault = AbortFault(rid=reservation.rid, at=self.rng.uniform(lo, alloc.tau))
        self.schedule_abort(fault)
        return fault

    # ------------------------------------------------------------------
    def _on_abort(self, event) -> None:
        fault: AbortFault = event.payload
        self.service.abort(fault.rid, now=self.sim.now)

    def _on_port_fault(self, event) -> None:
        fault: PortFault = event.payload
        displaced = self.service.degrade(
            side=fault.side,
            port=fault.port,
            amount=fault.amount,
            start=fault.start,
            end=fault.end,
            now=self.sim.now,
        )
        if self.rebook is None:
            return
        for reservation in displaced:
            self._schedule_rebook(reservation, attempt=1)

    def _schedule_rebook(self, displaced: Reservation, attempt: int) -> None:
        """Queue rebooking attempt ``attempt`` for a displaced residual."""
        if attempt > self.rebook.max_attempts:
            return
        residual = displaced.residual
        if residual <= 0:
            return
        request = displaced.request
        at = self.sim.now + self.rebook.delay(attempt, self.rng)
        # Give up when not even MaxRate can deliver the residual by the
        # deadline from the attempt time.
        if at + residual / request.max_rate > request.t_end + deadline_tolerance(request.t_end):
            return
        self.sim.at(at, self._on_rebook, payload=(displaced, attempt))

    def _on_rebook(self, event) -> None:
        displaced, attempt = event.payload
        request = displaced.request
        rebooked = self.service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=displaced.residual,
            deadline=request.t_end,
            now=self.sim.now,
            max_rate=request.max_rate,
            origin=displaced.rid,
        )
        if not rebooked.confirmed:
            self._schedule_rebook(displaced, attempt + 1)


@dataclass
class FaultDrillReport:
    """Everything a fault-injection run produces."""

    service: ReservationService
    injector: FaultInjector
    aborts: list[AbortFault] = field(default_factory=list)
    faults: list[PortFault] = field(default_factory=list)

    @property
    def journal(self) -> Journal | None:
        """The service's operation journal (when one was attached)."""
        return self.service.journal


def run_fault_drill(
    platform: Platform,
    requests: Iterable[Request],
    *,
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    faults: Sequence[PortFault] = (),
    rebook: BackoffSchedule | None = None,
    backlog_limit: int = 0,
    journal: Journal | None = None,
    seed: int = 0,
    until: float | None = None,
) -> FaultDrillReport:
    """Drive a workload plus failures through one online simulation.

    Each request is submitted at its ``t_start``; confirmed reservations
    abort mid-flight with probability ``abort_rate``; the planned port
    ``faults`` strike at their start times, displacing reservations whose
    residual volume is then rebooked per ``rebook``.  Returns the finished
    service (inspect ``service.stats``, ``service.snapshot()``, or verify
    Eq. 1 via ``service.surviving_schedule()``).
    """
    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")
    service = ReservationService(
        platform, policy=policy, backlog_limit=backlog_limit, journal=journal
    )
    sim = Simulator()
    injector = FaultInjector(sim, service, rebook=rebook, seed=seed)
    report = FaultDrillReport(service=service, injector=injector, faults=list(faults))

    def on_arrival(event) -> None:
        request: Request = event.payload
        reservation = service.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=sim.now,
            max_rate=request.max_rate,
        )
        if abort_rate > 0.0:
            fault = injector.maybe_abort(reservation, abort_rate)
            if fault is not None:
                report.aborts.append(fault)

    for request in sorted(requests, key=lambda r: (r.t_start, r.rid)):
        sim.at(request.t_start, on_arrival, payload=request)
    for fault in faults:
        injector.schedule_fault(fault)
    sim.run(until=until if until is not None else float("inf"))
    return report


@dataclass
class GatewayDrillReport:
    """Everything a sharded (gateway) fault-injection run produces."""

    gateway: Any  # repro.gateway.Gateway (annotated loosely: cycle guard)
    aborts: list[AbortFault] = field(default_factory=list)
    faults: list[PortFault] = field(default_factory=list)
    crashes: list[BrokerCrash] = field(default_factory=list)

    @property
    def journal(self) -> Journal | None:
        """The gateway's operation journal (when one was attached)."""
        return self.gateway.journal


def run_gateway_fault_drill(
    platform: Platform,
    requests: Iterable[Request],
    *,
    num_shards: int = 1,
    batch_size: int = 1,
    ordering: str = "fifo",
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    faults: Sequence[PortFault] = (),
    crashes: Sequence[BrokerCrash] = (),
    edge: EdgeLimit | None = None,
    hold_ttl: float = 300.0,
    backoff: BackoffSchedule | None = None,
    chaos: ChaosPolicy | None = None,
    rpc_deadline: float | None = None,
    backlog_limit: int = 0,
    malleable: bool = False,
    restart_sweep: float | None = None,
    journal: Journal | None = None,
    telemetry: Telemetry | None = None,
    recorder: FlightRecorder | None = None,
    slo: SloWatchdog | None = None,
    seed: int = 0,
    until: float | None = None,
) -> GatewayDrillReport:
    """:func:`run_fault_drill` against a sharded, batched gateway.

    The same experiment shape — arrivals at ``t_start``, sampled
    mid-flight aborts, planned port faults — served by a
    :class:`~repro.gateway.Gateway`, with one extra hazard class:
    :class:`BrokerCrash` events.  At each crash instant arrivals already
    scheduled at that time have been submitted (events at equal times run
    in priority order; crashes run last), so when their batch decides it
    faces the dead broker: prepares fail, placed holds are aborted, and
    the requests reject ``broker-unavailable`` after burning the two-phase
    retry budget.  The trailing open batch is drained at the end of the
    run, so every submission is decided in the returned report.

    ``chaos`` / ``rpc_deadline`` / ``backlog_limit`` wire the message-level
    fault plane straight through to the gateway (see
    :mod:`repro.gateway.rpc`), and ``malleable`` turns on its
    stepwise-profile plane (shaped fallback admission, reshape before
    displacement on degrade).  ``restart_sweep`` schedules a periodic
    janitor that restarts every crashed broker (journaled ``gw_restart``
    ops) — the recovery half of the crash-mid-2PC scenario, where crashes
    are sampled *inside* the protocol by the chaos policy rather than
    planned as :class:`BrokerCrash` events.

    ``telemetry`` / ``recorder`` / ``slo`` attach the observability plane:
    an enabled :class:`~repro.obs.telemetry.Telemetry` (or any
    :class:`~repro.obs.recorder.FlightRecorder`) turns on causal tracing
    for every admission, and an :class:`~repro.obs.slo.SloWatchdog` is fed
    each decision and each batch's health snapshot as the drill runs.

    Displacement rebooking is a service-drill feature and is not offered
    here; displaced residuals stay unbooked (though with a
    ``backlog_limit`` broker-down rejections re-admit themselves).
    Aborts sampled for a batched decision are scheduled from the decision
    (flush) time, mirroring the service drill's "from confirmation"
    semantics.
    """
    from ..gateway import Gateway  # local import: control <-> gateway cycle

    if not (0.0 <= abort_rate <= 1.0):
        raise ConfigurationError(f"abort_rate must be in [0, 1], got {abort_rate}")
    if restart_sweep is not None and restart_sweep <= 0:
        raise ConfigurationError(f"restart_sweep must be positive, got {restart_sweep}")
    sim = Simulator()
    rng = random.Random(seed)
    gateway = Gateway(
        platform,
        num_shards=num_shards,
        batch_size=batch_size,
        ordering=ordering,
        policy=policy,
        edge=edge,
        hold_ttl=hold_ttl,
        backoff=backoff,
        chaos=chaos,
        rpc_deadline=rpc_deadline,
        backlog_limit=backlog_limit,
        malleable=malleable,
        journal=journal,
        telemetry=telemetry,
        recorder=recorder,
        slo=slo,
    )
    report = GatewayDrillReport(gateway=gateway, faults=list(faults), crashes=list(crashes))

    def on_decision(reservation: Reservation, now: float) -> None:
        if abort_rate <= 0.0 or reservation.allocation is None:
            return
        if rng.random() >= abort_rate:
            return
        alloc = reservation.allocation
        lo = max(now, alloc.sigma)
        if lo >= alloc.tau:
            return
        fault = AbortFault(rid=reservation.rid, at=rng.uniform(lo, alloc.tau))
        report.aborts.append(fault)
        sim.at(fault.at, on_abort, payload=fault)

    gateway.on_decision = on_decision

    def on_arrival(event) -> None:
        request: Request = event.payload
        gateway.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=sim.now,
            max_rate=request.max_rate,
        )

    def on_abort(event) -> None:
        fault: AbortFault = event.payload
        gateway.abort(fault.rid, now=sim.now)

    def on_port_fault(event) -> None:
        fault: PortFault = event.payload
        gateway.degrade(
            side=fault.side,
            port=fault.port,
            amount=fault.amount,
            start=fault.start,
            end=fault.end,
            now=sim.now,
        )

    def on_crash(event) -> None:
        crash: BrokerCrash = event.payload
        gateway.crash_broker(crash.shard, now=sim.now)

    def on_restart(event) -> None:
        crash: BrokerCrash = event.payload
        gateway.restart_broker(crash.shard, now=sim.now)

    for request in sorted(requests, key=lambda r: (r.t_start, r.rid)):
        sim.at(request.t_start, on_arrival, payload=request)
    for fault in faults:
        sim.at(fault.start, on_port_fault, payload=fault)
    for crash in crashes:
        # priority 1: a crash at time t strikes after the arrivals at t
        # have been submitted but (batch permitting) before they decide.
        sim.at(crash.at, on_crash, payload=crash, priority=1)
        if crash.restart_at is not None:
            sim.at(crash.restart_at, on_restart, payload=crash)
    if restart_sweep is not None and requests:
        # A periodic janitor for chaos-sampled crashes (crash_after_prepare
        # and friends): restart every dead broker so sampled wipes recover
        # instead of blacking out a shard for the rest of the run.
        def on_sweep(event) -> None:
            for broker in gateway.brokers:
                if broker.crashed:
                    gateway.restart_broker(broker.shard_id, now=sim.now)

        last = max(r.t_start for r in requests) + restart_sweep
        tick = restart_sweep
        while tick <= last:
            sim.at(tick, on_sweep, priority=2)
            tick += restart_sweep
    horizon = until if until is not None else float("inf")
    sim.run(until=horizon)
    gateway.drain(sim.now)
    # The trailing drain can sample fresh mid-flight aborts; run them too.
    sim.run(until=horizon)
    return report


# ----------------------------------------------------------------------
# Chaos matrix: seeds x scenarios, every cell invariant-audited
# ----------------------------------------------------------------------

#: The canonical chaos scenarios the matrix sweeps (see
#: :func:`chaos_scenario` for what each one injects).
CHAOS_SCENARIOS: tuple[str, ...] = (
    "clean",
    "lossy",
    "partition",
    "duplicate-storm",
    "crash-mid-2pc",
)


def chaos_scenario(
    name: str,
    *,
    seed: int = 0,
    num_shards: int = 4,
    horizon: float = 600.0,
) -> tuple[ChaosPolicy | None, tuple[BrokerCrash, ...], float | None]:
    """Build the ``(chaos, crashes, restart_sweep)`` triple for a cell.

    - ``clean`` — no chaos at all; the control row every other scenario's
      decision stream is diffed against.
    - ``lossy`` — uniform drop / duplicate / delay on every
      coordinator<->broker edge (:meth:`~repro.gateway.rpc.ChaosPolicy.lossy`).
    - ``partition`` — one shard unreachable over the middle of the run,
      healing at ``0.6 * horizon``; rejected requests park in the backlog
      and re-admit after the heal.
    - ``duplicate-storm`` — most messages delivered twice; pure
      idempotency pressure, zero loss.
    - ``crash-mid-2pc`` — brokers sampled to die right after
      acknowledging a prepare or commit, plus one planned
      :class:`BrokerCrash`, with a periodic restart sweep as the
      recovery half.
    """
    from ..gateway.rpc import ChaosPolicy

    if num_shards < 1:
        raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be positive, got {horizon}")
    if name == "clean":
        return None, (), None
    if name == "lossy":
        return ChaosPolicy.lossy(seed=seed), (), None
    if name == "partition":
        return (
            ChaosPolicy.with_partition(
                1 % num_shards, 0.25 * horizon, 0.6 * horizon, seed=seed
            ),
            (),
            None,
        )
    if name == "duplicate-storm":
        return ChaosPolicy.duplicate_storm(seed=seed), (), None
    if name == "crash-mid-2pc":
        crashes = (BrokerCrash(shard=0, at=0.3 * horizon, restart_at=0.45 * horizon),)
        return ChaosPolicy.crash_mid_2pc(seed=seed), crashes, horizon / 6.0
    raise ConfigurationError(
        f"unknown chaos scenario {name!r}; expected one of {CHAOS_SCENARIOS}"
    )


@dataclass
class ChaosMatrixReport:
    """Per-cell outcomes of a :func:`run_chaos_matrix` sweep."""

    #: One dict per (seed, scenario) cell: decisions, chaos counters, the
    #: full invariant report and the cell's SLO verdict.
    cells: list[dict[str, Any]] = field(default_factory=list)
    #: Causal-trace artifact covering every cell (``tracing=True`` only).
    telemetry: Any | None = None  # repro.obs.RunTelemetry (cycle guard)
    #: Flight-recorder dumps of failing cells, saved under ``flight_dir``.
    flight_paths: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Did every cell pass every invariant?"""
        return all(cell["invariants"]["ok"] for cell in self.cells)

    @property
    def slo_ok(self) -> bool:
        """Did every cell also hold its service-level objectives?"""
        return all(cell["slo"]["ok"] for cell in self.cells)

    @property
    def violations(self) -> list[str]:
        """Every violation across the matrix, prefixed with its cell."""
        out: list[str] = []
        for cell in self.cells:
            for violation in cell["invariants"]["violations"]:
                out.append(f"[seed={cell['seed']} {cell['scenario']}] {violation}")
        return out

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (the CI artifact)."""
        return {
            "ok": self.ok,
            "slo_ok": self.slo_ok,
            "cells": [dict(cell) for cell in self.cells],
        }


def run_chaos_matrix(
    platform: Platform,
    make_requests: Any,
    *,
    seeds: Sequence[int],
    scenarios: Sequence[str] = CHAOS_SCENARIOS,
    num_shards: int = 4,
    batch_size: int = 4,
    ordering: str = "fifo",
    policy: BandwidthPolicy | None = None,
    abort_rate: float = 0.0,
    hold_ttl: float = 120.0,
    backlog_limit: int = 8,
    rpc_deadline: float | None = 60.0,
    malleable: bool = False,
    make_faults: Any = None,
    horizon: float = 600.0,
    tracing: bool = False,
    slo_rules: Sequence[SloRule] | None = None,
    flight_dir: str | Path | None = None,
) -> ChaosMatrixReport:
    """Sweep seeds x scenarios; quiesce and invariant-audit every cell.

    ``make_requests`` is a callable ``(seed) -> Iterable[Request]`` so
    every seed row gets its own workload.  ``make_faults`` (optional,
    same shape: ``(seed) -> Sequence[PortFault]``) adds planned port
    degradations to every cell, and ``malleable=True`` turns on the
    gateway's stepwise-profile plane — shaped fallback admission and
    reshape-before-displace recovery — so the matrix audits the reshape
    verb under every chaos scenario.  Each cell runs a full
    :func:`run_gateway_fault_drill` with the scenario's chaos policy and
    a journal attached, then drains repeatedly until the gateway has
    quiesced — no live hold on any broker and the clock past every
    request deadline (each drain pass advances the clock one hold TTL, so
    parked backlog entries get their re-admission attempts and any holds
    they strand expire) — and finally runs
    :func:`~repro.gateway.invariants.check_gateway` with
    ``expect_quiesced=True``.  The returned report carries every cell;
    ``report.ok`` is the CI gate.

    Every cell also runs an :class:`~repro.obs.slo.SloWatchdog` over the
    live gateway (``slo_rules`` or :func:`~repro.obs.slo.default_slo_rules`
    scaled to the cell's TTL / deadline / backlog) and reports its verdict
    under ``cell["slo"]`` — ``report.slo_ok`` aggregates them.  With
    ``tracing=True`` each cell gets its own enabled telemetry handle and
    flight recorder; the captures land in ``report.telemetry`` (a
    :class:`~repro.obs.artifact.RunTelemetry` named ``chaos-matrix``) so
    ``grid-obs explain`` can reconstruct any request in any cell.  When a
    cell fails its audit and ``flight_dir`` is given, the attached
    flight-recorder dump is saved there as
    ``FLIGHT_seed<seed>_<scenario>.json`` (paths in ``report.flight_paths``).
    """
    from ..gateway.invariants import check_gateway
    from ..obs.artifact import RunTelemetry
    from ..obs.recorder import FlightRecorder
    from ..obs.slo import SloWatchdog, default_slo_rules
    from ..obs.telemetry import Telemetry

    rules = (
        list(slo_rules)
        if slo_rules is not None
        else default_slo_rules(
            hold_ttl=hold_ttl, rpc_deadline=rpc_deadline, backlog_limit=backlog_limit
        )
    )
    report = ChaosMatrixReport()
    if tracing:
        report.telemetry = RunTelemetry(
            "chaos-matrix", meta={"scenarios": list(scenarios), "seeds": list(seeds)}
        )
    for seed in seeds:
        requests = list(make_requests(seed))
        faults = tuple(make_faults(seed)) if make_faults is not None else ()
        last_deadline = max((r.t_end for r in requests), default=0.0)
        for scenario in scenarios:
            chaos, crashes, restart_sweep = chaos_scenario(
                scenario, seed=seed, num_shards=num_shards, horizon=horizon
            )
            journal = Journal()
            telemetry = Telemetry() if tracing else None
            recorder = FlightRecorder() if tracing else None
            watchdog = SloWatchdog(rules)
            drill = run_gateway_fault_drill(
                platform,
                requests,
                num_shards=num_shards,
                batch_size=batch_size,
                ordering=ordering,
                policy=policy,
                abort_rate=abort_rate,
                faults=faults,
                crashes=crashes,
                hold_ttl=hold_ttl,
                chaos=chaos,
                rpc_deadline=rpc_deadline,
                backlog_limit=backlog_limit,
                malleable=malleable,
                restart_sweep=restart_sweep,
                journal=journal,
                telemetry=telemetry,
                recorder=recorder,
                slo=watchdog,
                seed=seed,
            )
            gateway = drill.gateway
            # Quiesce: backlog re-admissions triggered by a drain can
            # strand fresh holds, so keep sweeping full TTLs until the
            # brokers are empty and the clock is past every deadline
            # (deadline pruning empties the backlog, so this terminates).
            for _ in range(12):
                settled = not any(broker.holds() for broker in gateway.brokers)
                past = gateway.now > last_deadline + deadline_tolerance(last_deadline)
                if settled and past:
                    break
                gateway.drain(gateway.now + hold_ttl + 1.0)
            invariants = check_gateway(
                gateway, journal=journal, now=gateway.now, expect_quiesced=True
            )
            if report.telemetry is not None and telemetry is not None:
                report.telemetry.capture(f"seed={seed}/{scenario}", telemetry)
            if invariants.flight is not None and flight_dir is not None:
                dump_path = Path(flight_dir) / f"FLIGHT_seed{seed}_{scenario}.json"
                dump_path.parent.mkdir(parents=True, exist_ok=True)
                dump_path.write_text(
                    json.dumps(invariants.flight, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8",
                )
                report.flight_paths.append(str(dump_path))
            stats = gateway.stats
            report.cells.append(
                {
                    "seed": seed,
                    "scenario": scenario,
                    "submitted": stats.submits,
                    "accepted": stats.accepted,
                    "rejected": stats.rejected,
                    "shard_unreachable": stats.shard_unreachable,
                    "backlogged": stats.backlogged,
                    "readmitted": stats.readmitted,
                    "compensations": stats.compensations,
                    "displaced": stats.displaced,
                    "reshaped": stats.reshaped,
                    "stranded_holds": stats.stranded_holds,
                    "chaos_drops": stats.chaos_drops,
                    "chaos_duplicates": stats.chaos_duplicates,
                    "chaos_partitioned": stats.chaos_partitioned,
                    "chaos_crashes": stats.chaos_crashes,
                    "invariants": invariants.to_dict(),
                    "slo": watchdog.report(),
                }
            )
    return report
