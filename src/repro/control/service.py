"""A stateful reservation service — the client-facing API (§5.4).

The paper's deployment returns "a scheduled time window and allocated
rate" directly to the client.  :class:`ReservationService` packages the
book-ahead admission logic behind exactly that interface, usable as a
long-running service object:

>>> service = ReservationService(Platform.paper_platform())
>>> r = service.submit(ingress=0, egress=3, volume=200_000, deadline=7200, now=0.0)
>>> r.confirmed, r.allocation.bw     # doctest: +SKIP
(True, 333.3)

Reservations can later be **cancelled**; bandwidth not yet consumed is
returned to the ledger and benefits subsequent submissions (the tests
assert this capacity reuse).  The service clock only moves forward.

Beyond the happy path, the service is the recovery point of the
fault-tolerant control plane (see :mod:`repro.control.faults`):

- :meth:`abort` handles a mid-flight transfer failure — the reservation
  tail returns to the ledger and, when a re-admission backlog is enabled,
  previously rejected requests immediately compete for the freed capacity;
- :meth:`degrade` applies a port capacity reduction or outage, finds the
  reservations the remaining capacity can no longer carry, and cancels
  them with a checkpoint of the volume already carried so their residual
  can be rebooked (``volume − carried``);
- every state-changing operation can be journaled
  (:class:`~repro.control.journal.Journal`) and a crashed service rebuilt
  deterministically via :meth:`replay` — :meth:`snapshot` equality is the
  test oracle.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..core.allocation import Allocation, ScheduleResult
from ..core.booking import (
    FitProbe,
    RejectReason,
    deadline_tolerance,
    earliest_fit,
    earliest_fit_profile,
    shape_profile,
)
from ..core.errors import ConfigurationError, InternalInvariantError, InvalidRequestError
from ..core.capacity import CAPACITY_SLACK
from ..core.ledger import Degradation, PortLedger
from ..core.platform import Platform
from ..core.profile import RateProfile
from ..core.request import Request, RequestSet
from ..metrics.faults import FaultStats
from ..obs.telemetry import Telemetry, get_telemetry
from ..schedulers.policies import BandwidthPolicy, MinRatePolicy, policy_from_name
from .journal import Journal

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from .striped import StripedBooking

__all__ = ["ReservationService", "Reservation", "ReservationState", "RejectReason"]


class ReservationState(enum.Enum):
    """Lifecycle of a reservation."""

    REJECTED = "rejected"
    CONFIRMED = "confirmed"   # booked, transfer not yet started
    ACTIVE = "active"         # transfer in progress
    COMPLETED = "completed"   # transfer window fully elapsed
    CANCELLED = "cancelled"
    ABORTED = "aborted"       # transfer failed mid-flight
    DISPLACED = "displaced"   # cancelled by a port outage/degradation


@dataclass
class Reservation:
    """A client's handle on one submitted transfer."""

    rid: int
    request: Request
    allocation: Allocation | None
    cancelled_at: float | None = None
    aborted_at: float | None = None
    displaced_at: float | None = None
    #: rid of the reservation this one re-admits or rebooks, if any.
    origin: int | None = None
    #: Why admission failed (``None`` on confirmed reservations).
    reject_reason: RejectReason | None = None

    @property
    def confirmed(self) -> bool:
        """Was the reservation admitted?"""
        return self.allocation is not None

    @property
    def terminated_at(self) -> float | None:
        """When the reservation ended early (cancel/abort/displacement)."""
        for t in (self.cancelled_at, self.aborted_at, self.displaced_at):
            if t is not None:
                return t
        return None

    @property
    def carried(self) -> float:
        """MB actually delivered before the transfer ended."""
        if self.allocation is None:
            return 0.0
        stop = self.terminated_at
        end = self.allocation.tau if stop is None else min(stop, self.allocation.tau)
        return self.allocation.carried_before(end)

    @property
    def residual(self) -> float:
        """MB still undelivered when the reservation ended early."""
        return max(0.0, self.request.volume - self.carried)

    def state(self, now: float) -> ReservationState:
        """Lifecycle state as of time ``now``."""
        if self.allocation is None:
            return ReservationState.REJECTED
        if self.aborted_at is not None:
            return ReservationState.ABORTED
        if self.displaced_at is not None:
            return ReservationState.DISPLACED
        if self.cancelled_at is not None:
            return ReservationState.CANCELLED
        if now < self.allocation.sigma:
            return ReservationState.CONFIRMED
        if now < self.allocation.tau:
            return ReservationState.ACTIVE
        return ReservationState.COMPLETED


def _live_allocation(reservation: Reservation) -> Allocation:
    """The allocation of a reservation known to be confirmed.

    Call sites have already established liveness via
    :meth:`Reservation.state`; a missing allocation there means the
    service's bookkeeping is corrupt, not that the caller erred.
    """
    if reservation.allocation is None:
        raise InternalInvariantError(
            f"reservation {reservation.rid} is live but carries no allocation"
        )
    return reservation.allocation


class ReservationService:
    """Online book-ahead admission with submit / cancel / inspect calls.

    Parameters
    ----------
    platform:
        Port capacities.
    policy:
        Bandwidth assignment policy for admitted transfers.
    backlog_limit:
        Keep up to this many rejected requests; whenever capacity frees up
        (cancel / abort / degrade) they are re-offered to the ledger in
        FIFO order.  ``0`` (default) disables re-admission.
    journal:
        Optional operation journal; every state-changing call is appended
        so :meth:`replay` can rebuild the service after a crash.
    telemetry:
        Explicit telemetry handle for this service instance; when omitted,
        every decision is reported through the process-wide handle
        (:func:`~repro.obs.telemetry.get_telemetry`), which defaults to a
        no-op :class:`~repro.obs.telemetry.NullTelemetry`.
    """

    def __init__(
        self,
        platform: Platform,
        policy: BandwidthPolicy | None = None,
        *,
        backlog_limit: int = 0,
        malleable: bool = False,
        journal: Journal | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        if backlog_limit < 0:
            raise ConfigurationError(f"backlog_limit must be >= 0, got {backlog_limit}")
        self.platform = platform
        self.policy = policy or MinRatePolicy()
        self.backlog_limit = backlog_limit
        #: Malleable-transfer mode: shape stepwise profiles into residual
        #: capacity when the constant-rate search fails, and reshape live
        #: reservations before displacing them on degradations.  Off by
        #: default — the constant-rate decision trace stays byte-identical.
        self.malleable = malleable
        self._telemetry = telemetry
        self._ledger = PortLedger(platform)
        self._clock = float("-inf")
        self._next_rid = 0
        self._reservations: dict[int, Reservation] = {}
        self._striped: dict[int, StripedBooking | None] = {}
        self._striped_cancelled: dict[int, float] = {}
        self._backlog: list[int] = []
        self._degradations: list[Degradation] = []
        self.stats = FaultStats()
        self.journal = journal
        if journal is not None:
            header: dict[str, Any] = {
                "platform": platform.to_dict(),
                "policy": self.policy.name,
                "backlog_limit": backlog_limit,
            }
            if malleable:
                # Only written when on, so constant-rate journals stay
                # byte-identical to the pre-profile format.
                header["malleable"] = True
            journal.set_header(header)

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> float:
        if now < self._clock:
            raise ConfigurationError(f"time went backwards: {now} < {self._clock}")
        self._clock = now
        return now

    def _take_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def _record(self, op: str, now: float, **args: Any) -> None:
        if self.journal is not None:
            self.journal.append(op, now, **args)

    @property
    def now(self) -> float:
        """Last observed service time."""
        return self._clock

    @property
    def telemetry(self) -> Telemetry:
        """The handle decisions are reported through (instance or process-wide)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        ingress: int,
        egress: int,
        volume: float,
        deadline: float,
        now: float,
        max_rate: float | None = None,
        origin: int | None = None,
        profile: RateProfile | list[Any] | None = None,
    ) -> Reservation:
        """Submit a transfer; returns a confirmed or rejected reservation.

        ``deadline`` is absolute; the window opens at ``now``.  The service
        books the earliest feasible start within the window at the policy's
        rate, exactly like :class:`~repro.schedulers.advance.EarliestStartFlexible`.

        ``origin`` marks this submission as the rebooking of an earlier
        reservation's residual volume (after an abort or displacement); it
        links the new reservation to the old one for accounting and lets
        :meth:`accept_rate` treat the pair as one client request.

        ``profile`` requests a stepwise (malleable) rate shape instead of
        the paper's constant rate: absolute-time ``(t0, t1, rate)``
        segments that must deliver exactly ``volume`` MB.  The shape is
        granted as-given or slid later within the window
        (:func:`~repro.core.booking.earliest_fit_profile`); a shape that
        fits nowhere rejects with
        :attr:`~repro.core.booking.RejectReason.PROFILE_INFEASIBLE`.
        """
        self._advance(now)
        if max_rate is None:
            max_rate = self.platform.bottleneck(ingress, egress)
        if origin is not None and origin not in self._reservations:
            raise KeyError(f"unknown origin reservation {origin}")
        wanted = RateProfile.maybe_from(profile)
        if wanted is not None and not wanted.conserves(volume):
            raise InvalidRequestError(
                f"profile delivers {wanted.volume} MB but the submission asks for {volume} MB"
            )
        rid = self._take_rid()
        # Structural validation (positive volume, non-empty window, reachable
        # deadline) happens in the Request constructor and propagates as
        # InvalidRequestError — a malformed submission, not a rejection.
        request = Request(
            rid=rid,
            ingress=ingress,
            egress=egress,
            volume=volume,
            t_start=now,
            t_end=deadline,
            max_rate=max_rate,
        )
        if wanted is not None:
            allocation, probe = self._book_profile(request, wanted)
        else:
            allocation, probe = self._book(request)
            if allocation is None and self.malleable:
                allocation, probe = self._book_shaped(request, probe)
        reservation = Reservation(
            rid=rid,
            request=request,
            allocation=allocation,
            origin=origin,
            reject_reason=probe.reason,
        )
        self._reservations[rid] = reservation
        args: dict[str, Any] = {
            "ingress": ingress,
            "egress": egress,
            "volume": volume,
            "deadline": deadline,
            "max_rate": max_rate,
            "origin": origin,
        }
        if wanted is not None:
            args["profile"] = wanted.to_list()
        self._record("submit", now, **args)
        self._observe_submit(reservation, probe, now)
        if origin is not None:
            parent = self._reservations[origin]
            if parent.displaced_at is not None or parent.aborted_at is not None:
                self.stats.rebook_attempts += 1
                if allocation is not None:
                    self.stats.rebooked += 1
                    self.stats.recovered_volume += volume
                    self.stats.rebook_wait_total += now - parent.terminated_at
        elif allocation is None and self.backlog_limit > 0:
            self._backlog.append(rid)
            self.stats.backlogged += 1
            if len(self._backlog) > self.backlog_limit:
                self._backlog.pop(0)
        return reservation

    def _book(self, request: Request) -> tuple[Allocation | None, FitProbe]:
        probe = FitProbe()
        allocation = earliest_fit(
            self._ledger, request, lambda sigma: self.policy.assign(request, sigma), probe=probe
        )
        if allocation is not None:
            self._ledger.allocate(
                allocation.ingress,
                allocation.egress,
                allocation.sigma,
                allocation.tau,
                allocation.bw,
            )
            self._note_port_peaks(allocation)
        return allocation, probe

    def _book_profile(
        self, request: Request, profile: RateProfile
    ) -> tuple[Allocation | None, FitProbe]:
        """Place (possibly sliding) an explicitly requested stepwise profile."""
        probe = FitProbe()
        allocation = earliest_fit_profile(
            self._ledger, request, profile, not_before=request.t_start, probe=probe
        )
        if allocation is not None:
            self._ledger.allocate_segments(
                allocation.ingress, allocation.egress, allocation.segments()
            )
            self._note_port_peaks(allocation)
        return allocation, probe

    def _book_shaped(
        self, request: Request, constant_probe: FitProbe
    ) -> tuple[Allocation | None, FitProbe]:
        """Malleable fallback: shape a profile into residual capacity valleys.

        Tried only after the constant-rate search failed (and only with
        ``malleable=True``); on shaping failure the constant search's
        diagnostics are kept so reject reasons stay the more informative
        of the two.
        """
        probe = FitProbe()
        shaped = shape_profile(self._ledger, request, probe=probe)
        if shaped is None:
            return None, constant_probe
        allocation = Allocation.for_profile(request, shaped)
        self._ledger.allocate_segments(
            allocation.ingress, allocation.egress, allocation.segments(), check=False
        )
        self._note_port_peaks(allocation)
        return allocation, probe

    def _note_port_peaks(self, alloc: Allocation) -> None:
        """Track peak committed utilisation of the two ports just booked on."""
        tel = self.telemetry
        if not tel.enabled:
            return
        gauge = tel.metrics.gauge(
            "service_port_peak_utilization",
            "Peak committed bandwidth over port capacity, per port.",
        )
        in_cap = self.platform.bin(alloc.ingress)
        out_cap = self.platform.bout(alloc.egress)
        if in_cap > 0:
            in_peak = self._ledger.ingress_timeline(alloc.ingress).max_usage(alloc.sigma, alloc.tau)
            gauge.set_max(in_peak / in_cap, side="ingress", port=alloc.ingress)
        if out_cap > 0:
            out_peak = self._ledger.egress_timeline(alloc.egress).max_usage(alloc.sigma, alloc.tau)
            gauge.set_max(out_peak / out_cap, side="egress", port=alloc.egress)

    def _observe_submit(self, reservation: Reservation, probe: FitProbe, now: float) -> None:
        """Report one admission decision: counters, decision event, span."""
        tel = self.telemetry
        if not tel.enabled:
            return
        alloc = reservation.allocation
        outcome = "accepted" if alloc is not None else "rejected"
        tel.metrics.counter(
            "service_submits_total", "Reservation submissions by admission outcome."
        ).inc(outcome=outcome)
        fields: dict[str, Any] = {
            "rid": reservation.rid,
            "ingress": reservation.request.ingress,
            "egress": reservation.request.egress,
            "volume": reservation.request.volume,
            "deadline": reservation.request.t_end,
            "outcome": outcome,
            "candidates": probe.candidates,
        }
        if alloc is not None:
            fields.update(sigma=alloc.sigma, tau=alloc.tau, bw=alloc.bw)
            tel.tracer.complete(
                "reservation",
                alloc.sigma,
                alloc.tau,
                cat="service",
                tid=alloc.ingress,
                rid=reservation.rid,
                bw=alloc.bw,
            )
        else:
            reason = probe.reason.value if probe.reason is not None else "unspecified"
            fields["reason"] = reason
            if probe.ingress_headroom is not None:
                fields["ingress_headroom"] = probe.ingress_headroom
                fields["egress_headroom"] = probe.egress_headroom
            tel.metrics.counter(
                "service_rejects_total", "Reservation rejections by reason."
            ).inc(reason=reason)
        tel.emit("service.submit", now, **fields)

    def submit_striped(
        self,
        *,
        sources: list[int],
        egress: int,
        volume: float,
        deadline: float,
        now: float,
        max_stream_rate: float | None = None,
    ) -> StripedBooking | None:
        """Book a multi-source (striped) staging transfer.

        All stripes start now and finish together as early as the ledger
        allows (see :mod:`repro.control.striped`).  Returns the committed
        booking, or ``None`` (nothing booked) when the deadline cannot be
        met.  The booking is tracked under its base rid (the first stripe's
        rid): it counts in :meth:`accept_rate` and can be cancelled as a
        whole through :meth:`cancel` — stripes model one logical dataset
        staging and are never cancelled individually.
        """
        from .striped import book_striped

        self._advance(now)
        base = self._take_rid()
        # Reserve one id per potential stripe so rids stay unique.
        for _ in range(len(sources) - 1):
            self._take_rid()
        booking = book_striped(
            self._ledger,
            self.platform,
            sources=sources,
            egress=egress,
            volume=volume,
            t_start=now,
            t_end=deadline,
            max_stream_rate=max_stream_rate,
            base_rid=base,
        )
        self._striped[base] = booking
        self._record(
            "submit_striped",
            now,
            sources=list(sources),
            egress=egress,
            volume=volume,
            deadline=deadline,
            max_stream_rate=max_stream_rate,
        )
        tel = self.telemetry
        if tel.enabled:
            outcome = "accepted" if booking is not None else "rejected"
            tel.metrics.counter(
                "service_striped_total", "Striped submissions by outcome."
            ).inc(outcome=outcome)
            tel.emit(
                "service.submit_striped",
                now,
                base=base,
                outcome=outcome,
                stripes=len(booking.allocations) if booking is not None else 0,
            )
        return booking

    # ------------------------------------------------------------------
    def cancel(self, rid: int, *, now: float) -> bool:
        """Cancel a reservation; unconsumed bandwidth returns to the pool.

        Returns True when anything was released (a confirmed or active
        reservation, or a live striped booking addressed by its base rid);
        False for rejected/completed/already-terminated ones.
        """
        self._advance(now)
        if rid in self._striped:
            released = self._cancel_striped(rid, now)
        else:
            released = self._cancel_point(rid, now)
        self._record("cancel", now, rid=rid)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("service_cancels_total", "Cancellations by effect.").inc(
                released=str(released).lower()
            )
            tel.emit("service.cancel", now, rid=rid, released=released)
        if released:
            self._readmit(now)
        return released

    def _cancel_point(self, rid: int, now: float) -> bool:
        reservation = self._reservations.get(rid)
        if reservation is None:
            raise KeyError(f"unknown reservation {rid}")
        if reservation.state(now) not in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            return False
        alloc = _live_allocation(reservation)
        self._release_tail(alloc, now)
        reservation.cancelled_at = now
        return True

    def _cancel_striped(self, base: int, now: float) -> bool:
        booking = self._striped[base]
        if booking is None or base in self._striped_cancelled:
            return False
        if now >= booking.finish:
            return False  # already completed
        for alloc in booking.allocations:
            self._release_tail(alloc, now)
        self._striped_cancelled[base] = now
        return True

    def _release_tail(self, alloc: Allocation, now: float) -> float:
        """Return the unconsumed part of an allocation; MB released."""
        release_from = max(now, alloc.sigma)
        if release_from >= alloc.tau:
            return 0.0
        if alloc.profile is None:
            self._ledger.release(alloc.ingress, alloc.egress, release_from, alloc.tau, alloc.bw)
            return alloc.bw * (alloc.tau - release_from)
        tail = alloc.profile.tail_from(release_from)
        if not tail:
            return 0.0
        self._ledger.release_segments(alloc.ingress, alloc.egress, tail.segments)
        return tail.volume

    # ------------------------------------------------------------------
    # Fault handling
    # ------------------------------------------------------------------
    def abort(self, rid: int, *, now: float) -> bool:
        """A transfer failed mid-flight; free its tail and try re-admission.

        The volume carried so far is wasted (the paper's §6 motivation);
        the reservation tail returns to the ledger and the re-admission
        backlog immediately competes for it.  Returns False when the
        reservation is not live (already completed/terminated/rejected).
        """
        self._advance(now)
        reservation = self._reservations.get(rid)
        if reservation is None:
            raise KeyError(f"unknown reservation {rid}")
        if reservation.state(now) not in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            return False
        alloc = _live_allocation(reservation)
        freed = self._release_tail(alloc, now)
        reservation.aborted_at = now
        self.stats.aborted += 1
        self.stats.wasted_volume += reservation.carried
        self.stats.freed_volume += freed
        self._record("abort", now, rid=rid)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("service_aborts_total", "Mid-flight transfer aborts.").inc()
            tel.emit(
                "service.abort",
                now,
                rid=rid,
                freed=freed,
                wasted=reservation.carried,
            )
        self._readmit(now)
        return True

    def reshape(self, rid: int, *, now: float) -> bool:
        """Re-shape a live reservation's unconsumed tail (malleable verb).

        The tail ``[max(now, σ), τ)`` returns to the ledger and the still
        undelivered volume is re-carved as a stepwise profile into the
        current residual capacity valleys of the same window
        (:func:`~repro.core.booking.shape_profile`) — stretching into
        quieter intervals or dropping to whatever bandwidth each interval
        still has.  The consumed head is preserved exactly, so ``carried``
        accounting is unchanged.  On failure the original tail is restored
        and the ledger left exactly as found.

        Journaled as its own ``reshape`` op; :meth:`replay` re-applies it
        deterministically.  Returns True when the reservation was
        re-shaped.
        """
        self._advance(now)
        reservation = self._reservations.get(rid)
        if reservation is None:
            raise KeyError(f"unknown reservation {rid}")
        if reservation.state(now) in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            ok = self._reshape_tail(reservation, now)
        else:
            ok = False
        self._record("reshape", now, rid=rid)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "service_reshapes_total", "Malleable tail re-shapes by effect."
            ).inc(reshaped=str(ok).lower())
            tel.emit("service.reshape", now, rid=rid, reshaped=ok)
        return ok

    def _reshape_tail(self, reservation: Reservation, now: float) -> bool:
        """Release + re-carve one live tail; restores the ledger on failure."""
        alloc = _live_allocation(reservation)
        release_from = max(now, alloc.sigma)
        if release_from >= alloc.tau:
            return False
        if alloc.profile is not None:
            old_tail = alloc.profile.tail_from(release_from).segments
        else:
            old_tail = ((release_from, alloc.tau, alloc.bw),)
        residual = max(0.0, reservation.request.volume - alloc.carried_before(release_from))
        if residual <= 0.0 or not old_tail:
            return False
        try:
            target = Request(
                rid=reservation.rid,
                ingress=alloc.ingress,
                egress=alloc.egress,
                volume=residual,
                t_start=release_from,
                t_end=reservation.request.t_end,
                max_rate=reservation.request.max_rate,
            )
        except InvalidRequestError:
            return False  # residual window no longer structurally valid
        self._ledger.release_segments(alloc.ingress, alloc.egress, old_tail)
        shaped = shape_profile(self._ledger, target, not_before=release_from)
        if shaped is None:
            # Put the tail back exactly; check=False because it may sit in
            # an already-overcommitted (degraded) region — that was the
            # pre-existing state, not ours to reject.
            self._ledger.allocate_segments(alloc.ingress, alloc.egress, old_tail, check=False)
            return False
        if alloc.profile is not None:
            head = alloc.profile.head_until(release_from)
        elif release_from > alloc.sigma:
            head = RateProfile.constant(alloc.sigma, release_from, alloc.bw)
        else:
            head = RateProfile(())
        self._ledger.allocate_segments(
            alloc.ingress, alloc.egress, shaped.segments, check=False
        )
        reservation.allocation = alloc.with_profile(head.concat(shaped))
        self.stats.reshaped += 1
        return True

    def degrade(
        self,
        *,
        side: str,
        port: int,
        amount: float,
        start: float,
        end: float,
        now: float,
    ) -> list[Reservation]:
        """Apply a capacity reduction; displace what no longer fits.

        ``amount`` MB/s of the port's capacity become unavailable over
        ``[start, end)`` (a full outage when ``amount`` reaches the port
        capacity).  Committed reservations that exceed the remaining
        capacity are cancelled latest-start-first — the most recently
        booked work yields to older commitments — with the carried volume
        checkpointed so callers can rebook the residual (``volume −
        carried``), typically with backoff via
        :class:`~repro.control.faults.FaultInjector`.

        Returns the displaced reservations (empty when everything still
        fits).
        """
        self._advance(now)
        degradation = Degradation(side=side, port=port, t0=start, t1=end, amount=amount)
        self._ledger.degrade(degradation)
        self._degradations.append(degradation)
        self.stats.degradations += 1
        displaced: list[Reservation] = []
        reshaped_rids: list[int] = []
        cap = self.platform.bin(port) if side == "ingress" else self.platform.bout(port)
        tol = CAPACITY_SLACK * max(1.0, cap)
        while self._ledger.overcommit_on(side, port, start, end) > tol:
            victim = self._displacement_victim(side, port, start, end, now)
            if victim is None:
                break  # remaining overcommit is not ours to resolve
            if (
                self.malleable
                and victim.rid not in reshaped_rids
                and self._reshape_tail(victim, now)
            ):
                # Malleable recovery: the victim's tail was re-carved around
                # the degraded window — no displacement needed.  Each rid is
                # tried once per degradation; a reshaped reservation that
                # still blocks the port is displaced on the next pass.
                reshaped_rids.append(victim.rid)
                continue
            alloc = _live_allocation(victim)
            freed = self._release_tail(alloc, now)
            victim.displaced_at = now
            self.stats.displaced += 1
            self.stats.freed_volume += freed
            displaced.append(victim)
        self._record(
            "degrade", now, side=side, port=port, amount=amount, start=start, end=end
        )
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "service_degrades_total", "Capacity degradations applied, by side."
            ).inc(side=side)
            if displaced:
                tel.metrics.counter(
                    "service_displacements_total", "Reservations displaced by degradations."
                ).inc(float(len(displaced)))
            fields: dict[str, Any] = {
                "side": side,
                "port": port,
                "amount": amount,
                "start": start,
                "end": end,
                "displaced": [r.rid for r in displaced],
            }
            if reshaped_rids:
                fields["reshaped"] = reshaped_rids
            tel.emit("service.degrade", now, **fields)
        self._readmit(now)
        return displaced

    def _displacement_victim(
        self, side: str, port: int, start: float, end: float, now: float
    ) -> Reservation | None:
        """Latest-starting live reservation using the port inside the window."""
        best: Reservation | None = None
        for reservation in self._reservations.values():
            if reservation.state(now) not in (
                ReservationState.CONFIRMED,
                ReservationState.ACTIVE,
            ):
                continue
            alloc = _live_allocation(reservation)
            on_port = alloc.ingress == port if side == "ingress" else alloc.egress == port
            if not on_port:
                continue
            # Only the not-yet-consumed part [max(now, σ), τ) still holds
            # ledger capacity; it must overlap the degraded window.
            live_from = max(now, alloc.sigma)
            if live_from >= end or alloc.tau <= start:
                continue
            if best is None or (alloc.sigma, reservation.rid) > (
                best.allocation.sigma,  # type: ignore[union-attr]
                best.rid,
            ):
                best = reservation
        return best

    def _readmit(self, now: float) -> list[Reservation]:
        """Offer freed capacity to the backlog of rejected requests (FIFO)."""
        admitted: list[Reservation] = []
        if not self._backlog:
            return admitted
        keep: list[int] = []
        for rid in self._backlog:
            original = self._reservations[rid].request
            tol = deadline_tolerance(original.t_end)
            if now + original.min_duration > original.t_end + tol:
                continue  # deadline unreachable forever: prune
            try:
                candidate = Request(
                    rid=self._next_rid,
                    ingress=original.ingress,
                    egress=original.egress,
                    volume=original.volume,
                    t_start=max(now, original.t_start),
                    t_end=original.t_end,
                    max_rate=original.max_rate,
                )
            except InvalidRequestError:
                continue  # clipped window borderline-infeasible: prune
            allocation, _probe = self._book(candidate)
            if allocation is None and self.malleable:
                allocation, _probe = self._book_shaped(candidate, _probe)
            if allocation is None:
                keep.append(rid)
                continue
            new_rid = self._take_rid()
            if new_rid != candidate.rid:
                raise InternalInvariantError(
                    f"re-admission rid drifted: took {new_rid}, booked as {candidate.rid}"
                )
            reservation = Reservation(
                rid=new_rid, request=candidate, allocation=allocation, origin=rid
            )
            self._reservations[new_rid] = reservation
            self.stats.readmitted += 1
            self.stats.readmitted_volume += candidate.volume
            admitted.append(reservation)
            tel = self.telemetry
            if tel.enabled:
                tel.metrics.counter(
                    "service_readmissions_total",
                    "Backlogged requests re-admitted after capacity freed up.",
                ).inc()
                tel.emit("service.readmit", now, rid=new_rid, origin=rid)
        self._backlog = keep
        return admitted

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A canonical, JSON-able digest of the full service state.

        Two services are state-identical iff their snapshots compare equal;
        the replay tests rely on this.
        """
        ledger: dict[str, Any] = {"ingress": [], "egress": []}
        for i in range(self.platform.num_ingress):
            ledger["ingress"].append(list(self._ledger.ingress_timeline(i).segments()))
        for e in range(self.platform.num_egress):
            ledger["egress"].append(list(self._ledger.egress_timeline(e).segments()))
        reservations = []
        for rid in sorted(self._reservations):
            r = self._reservations[rid]
            reservations.append(
                {
                    "rid": r.rid,
                    "request": r.request.to_dict(),
                    "allocation": r.allocation.to_dict() if r.allocation else None,
                    "cancelled_at": r.cancelled_at,
                    "aborted_at": r.aborted_at,
                    "displaced_at": r.displaced_at,
                    "origin": r.origin,
                    "reject_reason": r.reject_reason.value if r.reject_reason else None,
                }
            )
        striped = {}
        for base in sorted(self._striped):
            booking = self._striped[base]
            striped[str(base)] = {
                "allocations": [a.to_dict() for a in booking.allocations] if booking else None,
                "finish": booking.finish if booking else None,
                "cancelled_at": self._striped_cancelled.get(base),
            }
        return {
            "clock": self._clock,
            "next_rid": self._next_rid,
            "reservations": reservations,
            "striped": striped,
            "backlog": list(self._backlog),
            "degradations": [d.to_dict() for d in self._degradations],
            "ledger": ledger,
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def replay(cls, journal: Journal) -> ReservationService:
        """Rebuild a service from its operation journal.

        The journal header supplies the configuration; the recorded
        operations are re-applied in order.  Because every operation —
        including internal re-admission and displacement — is
        deterministic, the result is state-identical to the service that
        wrote the journal (``snapshot()`` equality).
        """
        header = journal.header
        if not header:
            raise ConfigurationError("journal has no header; cannot replay")
        platform = Platform.from_dict(header["platform"])
        policy = policy_from_name(header.get("policy", "min-bw"))
        service = cls(
            platform,
            policy=policy,
            backlog_limit=int(header.get("backlog_limit", 0)),
            malleable=bool(header.get("malleable", False)),
            journal=None,
        )
        for entry in journal:
            args = dict(entry.args)
            if entry.op == "submit":
                service.submit(
                    ingress=int(args["ingress"]),
                    egress=int(args["egress"]),
                    volume=float(args["volume"]),
                    deadline=float(args["deadline"]),
                    now=entry.now,
                    max_rate=args.get("max_rate"),
                    origin=args.get("origin"),
                    profile=args.get("profile"),
                )
            elif entry.op == "submit_striped":
                max_stream = args.get("max_stream_rate")
                service.submit_striped(
                    sources=[int(s) for s in args["sources"]],
                    egress=int(args["egress"]),
                    volume=float(args["volume"]),
                    deadline=float(args["deadline"]),
                    now=entry.now,
                    max_stream_rate=float(max_stream) if max_stream is not None else None,
                )
            elif entry.op == "cancel":
                service.cancel(int(args["rid"]), now=entry.now)
            elif entry.op == "abort":
                service.abort(int(args["rid"]), now=entry.now)
            elif entry.op == "reshape":
                service.reshape(int(args["rid"]), now=entry.now)
            elif entry.op == "degrade":
                service.degrade(
                    side=str(args["side"]),
                    port=int(args["port"]),
                    amount=float(args["amount"]),
                    start=float(args["start"]),
                    end=float(args["end"]),
                    now=entry.now,
                )
            else:  # pragma: no cover - Journal validates ops on construction
                raise ConfigurationError(f"unknown journal op {entry.op!r}")
        return service

    # ------------------------------------------------------------------
    def get(self, rid: int) -> Reservation:
        """Look up a reservation by id."""
        try:
            return self._reservations[rid]
        except KeyError:
            raise KeyError(f"unknown reservation {rid}") from None

    def reservations(self) -> list[Reservation]:
        """All point-to-point reservations, in submission order."""
        return [self._reservations[rid] for rid in sorted(self._reservations)]

    def striped_bookings(self) -> dict[int, StripedBooking | None]:
        """Striped submissions by base rid (``None`` marks a rejected one)."""
        return dict(self._striped)

    def degradations(self) -> list[Degradation]:
        """Every capacity degradation applied so far, in order."""
        return list(self._degradations)

    def accept_rate(self) -> float:
        """Served client submissions over all client submissions.

        A client submission counts as served when its own reservation was
        confirmed **or** a later re-admission/rebooking linked to it (via
        ``origin``) was.  Striped submissions count like any other.
        """
        roots = {r.rid for r in self._reservations.values() if r.origin is None}
        total = len(roots) + len(self._striped)
        if total == 0:
            return 0.0
        served: set[int] = set()
        for r in self._reservations.values():
            if r.confirmed:
                served.add(self._root_of(r.rid))
        striped_ok = sum(1 for b in self._striped.values() if b is not None)
        return (len(served & roots) + striped_ok) / total

    def _root_of(self, rid: int) -> int:
        """Follow ``origin`` links back to the original client submission."""
        seen = set()
        while True:
            origin = self._reservations[rid].origin
            if origin is None or origin in seen:
                return rid
            seen.add(rid)
            rid = origin

    def port_usage(self, t: float) -> tuple[list[float], list[float]]:
        """Committed bandwidth per (ingress, egress) port at time ``t``."""
        ins = [self._ledger.ingress_usage_at(i, t) for i in range(self.platform.num_ingress)]
        outs = [self._ledger.egress_usage_at(e, t) for e in range(self.platform.num_egress)]
        return ins, outs

    def max_overcommit(self) -> float:
        """Worst ``usage − effective capacity`` across all ports (≤ 0 ⇔ valid)."""
        return self._ledger.max_overcommit()

    def surviving_schedule(self) -> tuple[RequestSet, ScheduleResult]:
        """The live schedule as (requests, result) for ``verify_schedule``.

        Accepted: every confirmed reservation not terminated early (its
        full allocation holds ledger capacity).  Rejected: client
        submissions that were never admitted.  Terminated reservations
        (cancelled / aborted / displaced) are excluded from both — their
        consumed heads remain in the service ledger but no longer
        constitute scheduled transfers.
        """
        requests = []
        result = ScheduleResult(scheduler=f"service[{self.policy.name}]")
        for r in self.reservations():
            if r.confirmed and r.terminated_at is None:
                requests.append(r.request)
                result.accept(r.allocation)
            elif not r.confirmed:
                requests.append(r.request)
                result.reject(
                    r.rid, r.reject_reason.value if r.reject_reason is not None else "capacity"
                )
        return RequestSet(requests), result
