"""A stateful reservation service — the client-facing API (§5.4).

The paper's deployment returns "a scheduled time window and allocated
rate" directly to the client.  :class:`ReservationService` packages the
book-ahead admission logic behind exactly that interface, usable as a
long-running service object:

>>> service = ReservationService(Platform.paper_platform())
>>> r = service.submit(ingress=0, egress=3, volume=200_000, deadline=7200, now=0.0)
>>> r.confirmed, r.allocation.bw     # doctest: +SKIP
(True, 333.3)

Reservations can later be **cancelled**; bandwidth not yet consumed is
returned to the ledger and benefits subsequent submissions (the tests
assert this capacity reuse).  The service clock only moves forward.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.errors import ConfigurationError
from ..core.ledger import PortLedger
from ..core.platform import Platform
from ..core.request import Request
from ..schedulers.policies import BandwidthPolicy, MinRatePolicy

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from .striped import StripedBooking

__all__ = ["ReservationService", "Reservation", "ReservationState"]


class ReservationState(enum.Enum):
    """Lifecycle of a reservation."""

    REJECTED = "rejected"
    CONFIRMED = "confirmed"   # booked, transfer not yet started
    ACTIVE = "active"         # transfer in progress
    COMPLETED = "completed"   # transfer window fully elapsed
    CANCELLED = "cancelled"


@dataclass
class Reservation:
    """A client's handle on one submitted transfer."""

    rid: int
    request: Request
    allocation: Allocation | None
    cancelled_at: float | None = None

    @property
    def confirmed(self) -> bool:
        """Was the reservation admitted?"""
        return self.allocation is not None

    def state(self, now: float) -> ReservationState:
        """Lifecycle state as of time ``now``."""
        if self.allocation is None:
            return ReservationState.REJECTED
        if self.cancelled_at is not None:
            return ReservationState.CANCELLED
        if now < self.allocation.sigma:
            return ReservationState.CONFIRMED
        if now < self.allocation.tau:
            return ReservationState.ACTIVE
        return ReservationState.COMPLETED


class ReservationService:
    """Online book-ahead admission with submit / cancel / inspect calls.

    Parameters
    ----------
    platform:
        Port capacities.
    policy:
        Bandwidth assignment policy for admitted transfers.
    """

    def __init__(self, platform: Platform, policy: BandwidthPolicy | None = None) -> None:
        self.platform = platform
        self.policy = policy or MinRatePolicy()
        self._ledger = PortLedger(platform)
        self._clock = float("-inf")
        self._ids = itertools.count()
        self._reservations: dict[int, Reservation] = {}

    # ------------------------------------------------------------------
    def _advance(self, now: float) -> float:
        if now < self._clock:
            raise ConfigurationError(f"time went backwards: {now} < {self._clock}")
        self._clock = now
        return now

    @property
    def now(self) -> float:
        """Last observed service time."""
        return self._clock

    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        ingress: int,
        egress: int,
        volume: float,
        deadline: float,
        now: float,
        max_rate: float | None = None,
    ) -> Reservation:
        """Submit a transfer; returns a confirmed or rejected reservation.

        ``deadline`` is absolute; the window opens at ``now``.  The service
        books the earliest feasible start within the window at the policy's
        rate, exactly like :class:`~repro.schedulers.advance.EarliestStartFlexible`.
        """
        self._advance(now)
        if max_rate is None:
            max_rate = self.platform.bottleneck(ingress, egress)
        rid = next(self._ids)
        # Structural validation (positive volume, non-empty window, reachable
        # deadline) happens in the Request constructor and propagates as
        # InvalidRequestError — a malformed submission, not a rejection.
        request = Request(
            rid=rid,
            ingress=ingress,
            egress=egress,
            volume=volume,
            t_start=now,
            t_end=deadline,
            max_rate=max_rate,
        )
        allocation = self._book(request)
        reservation = Reservation(rid=rid, request=request, allocation=allocation)
        self._reservations[rid] = reservation
        return reservation

    def _book(self, request: Request) -> Allocation | None:
        latest = request.t_end - request.min_duration
        if latest < request.t_start:
            return None
        starts = {request.t_start}
        for timeline in (
            self._ledger.ingress_timeline(request.ingress),
            self._ledger.egress_timeline(request.egress),
        ):
            for t in timeline.breakpoints():
                if request.t_start < t <= latest:
                    starts.add(float(t))
        for sigma in sorted(starts):
            bw = self.policy.assign(request, sigma)
            if bw is None:
                continue
            tau = sigma + request.volume / bw
            if tau > request.t_end * (1 + 1e-12):
                continue
            if self._ledger.fits(request.ingress, request.egress, sigma, tau, bw):
                self._ledger.allocate(request.ingress, request.egress, sigma, tau, bw)
                return Allocation.for_request(request, bw, sigma=sigma)
        return None

    def submit_striped(
        self,
        *,
        sources: list[int],
        egress: int,
        volume: float,
        deadline: float,
        now: float,
        max_stream_rate: float | None = None,
    ) -> "StripedBooking | None":
        """Book a multi-source (striped) staging transfer.

        All stripes start now and finish together as early as the ledger
        allows (see :mod:`repro.control.striped`).  Returns the committed
        booking, or ``None`` (nothing booked) when the deadline cannot be
        met.  Striped bookings are not individually cancellable — they
        model one logical dataset staging.
        """
        from .striped import book_striped

        self._advance(now)
        base = next(self._ids)
        # Reserve one id per potential stripe so rids stay unique.
        for _ in range(len(sources) - 1):
            next(self._ids)
        return book_striped(
            self._ledger,
            self.platform,
            sources=sources,
            egress=egress,
            volume=volume,
            t_start=now,
            t_end=deadline,
            max_stream_rate=max_stream_rate,
            base_rid=base,
        )

    # ------------------------------------------------------------------
    def cancel(self, rid: int, *, now: float) -> bool:
        """Cancel a reservation; unconsumed bandwidth returns to the pool.

        Returns True when anything was released (a confirmed or active
        reservation); False for rejected/completed/already-cancelled ones.
        """
        self._advance(now)
        reservation = self._reservations.get(rid)
        if reservation is None:
            raise KeyError(f"unknown reservation {rid}")
        state = reservation.state(now)
        if state not in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            return False
        alloc = reservation.allocation
        assert alloc is not None
        release_from = max(now, alloc.sigma)
        if release_from < alloc.tau:
            self._ledger.release(
                alloc.ingress, alloc.egress, release_from, alloc.tau, alloc.bw
            )
        reservation.cancelled_at = now
        return True

    # ------------------------------------------------------------------
    def get(self, rid: int) -> Reservation:
        """Look up a reservation by id."""
        try:
            return self._reservations[rid]
        except KeyError:
            raise KeyError(f"unknown reservation {rid}") from None

    def reservations(self) -> list[Reservation]:
        """All reservations, in submission order."""
        return [self._reservations[rid] for rid in sorted(self._reservations)]

    def accept_rate(self) -> float:
        """Confirmed over submitted."""
        if not self._reservations:
            return 0.0
        confirmed = sum(r.confirmed for r in self._reservations.values())
        return confirmed / len(self._reservations)

    def port_usage(self, t: float) -> tuple[list[float], list[float]]:
        """Committed bandwidth per (ingress, egress) port at time ``t``."""
        ins = [self._ledger.ingress_usage_at(i, t) for i in range(self.platform.num_ingress)]
        outs = [self._ledger.egress_usage_at(e, t) for e in range(self.platform.num_egress)]
        return ins, outs
