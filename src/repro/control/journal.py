"""Append-only operation journal for crash recovery.

A production reservation service must survive its own process crashes
without losing the ledger.  The journal is a write-ahead log of every
state-changing operation the service performs — ``submit``,
``submit_striped``, ``cancel``, ``abort``, ``degrade`` — together with a
header capturing the service configuration (platform capacities, policy,
backlog limit).  Because the service is deterministic given its
configuration and the operation sequence, replaying the journal through
:meth:`~repro.control.service.ReservationService.replay` rebuilds a
state-identical service (the tests assert snapshot equality).

Serialisation is JSON lines: the header object on the first line, one
operation object per subsequent line (see ``docs/FAULTS.md`` for the
format).  Appends are O(1); nothing is ever rewritten.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterator, Mapping
from typing import Any

from ..core.errors import ConfigurationError

__all__ = ["Journal", "JournalEntry", "JOURNAL_FORMAT"]

#: Format tag written to (and required in) every journal header.
JOURNAL_FORMAT: str = "repro-journal/1"

#: Operations a journal may contain: the service's own, plus the
#: gateway's ``gw_*`` family (see :meth:`repro.gateway.Gateway.replay`).
_KNOWN_OPS = frozenset(
    {
        "submit",
        "submit_striped",
        "cancel",
        "abort",
        "degrade",
        "reshape",
        "gw_submit",
        "gw_drain",
        "gw_cancel",
        "gw_abort",
        "gw_degrade",
        "gw_reshape",
        "gw_crash",
        "gw_restart",
    }
)


@dataclass(frozen=True, slots=True)
class JournalEntry:
    """One journaled operation: its name, service time, and arguments."""

    op: str
    now: float
    args: Mapping[str, Any]

    def __post_init__(self) -> None:
        if self.op not in _KNOWN_OPS:
            raise ConfigurationError(f"unknown journal op {self.op!r}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {"op": self.op, "now": self.now, **dict(self.args)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> JournalEntry:
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        op = str(payload.pop("op"))
        now = float(payload.pop("now"))
        return cls(op=op, now=now, args=payload)


@dataclass
class Journal:
    """An append-only log of service operations plus a config header.

    ``header`` is written by the service on attach (platform, policy,
    backlog limit); entries accumulate via :meth:`append`.  An optional
    ``path`` turns every append into an immediate JSONL write — the
    write-ahead behaviour a crash-recovery log needs.
    """

    header: dict[str, Any] = field(default_factory=dict)
    entries: list[JournalEntry] = field(default_factory=list)
    path: Path | None = None

    def __post_init__(self) -> None:
        if self.path is not None:
            self.path = Path(self.path)

    # ------------------------------------------------------------------
    def set_header(self, header: Mapping[str, Any]) -> None:
        """Record the service configuration; rewrites the file when backed."""
        self.header = {"format": JOURNAL_FORMAT, **dict(header)}
        if self.path is not None:
            with self.path.open("w") as fh:
                fh.write(json.dumps(self.header) + "\n")
                for entry in self.entries:
                    fh.write(json.dumps(entry.to_dict()) + "\n")

    def append(self, op: str, now: float, **args: Any) -> JournalEntry:
        """Append one operation; flushed to disk immediately when backed."""
        entry = JournalEntry(op=op, now=now, args=args)
        self.entries.append(entry)
        if self.path is not None:
            with self.path.open("a") as fh:
                fh.write(json.dumps(entry.to_dict()) + "\n")
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[JournalEntry]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise header + entries as JSON lines."""
        lines = [json.dumps(self.header or {"format": JOURNAL_FORMAT})]
        lines.extend(json.dumps(entry.to_dict()) for entry in self.entries)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> Journal:
        """Inverse of :meth:`to_jsonl`."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ConfigurationError("empty journal")
        header = json.loads(lines[0])
        if header.get("format") != JOURNAL_FORMAT:
            raise ConfigurationError(
                f"not a {JOURNAL_FORMAT} journal (header: {header.get('format')!r})"
            )
        journal = cls(header=header)
        journal.entries = [JournalEntry.from_dict(json.loads(line)) for line in lines[1:]]
        return journal

    def save(self, path: str | Path) -> None:
        """Write the whole journal to ``path`` (JSONL)."""
        Path(path).write_text(self.to_jsonl())

    @classmethod
    def load(cls, path: str | Path) -> Journal:
        """Read a journal previously written by :meth:`save` (or live appends)."""
        journal = cls.from_jsonl(Path(path).read_text())
        journal.path = Path(path)
        return journal
