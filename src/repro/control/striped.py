"""Striped (multi-source) transfers — the GridFTP pattern (§1).

The paper's introduction grounds the model in GridFTP-style tools that
support "parallel, striped, partial, and third-party transfers": a dataset
replicated at several sites can be staged to one destination in parallel
stripes, one per source.  This module books such a transfer against a
:class:`~repro.core.ledger.PortLedger`: all stripes start together, each
at a constant rate, and share the destination's egress capacity.

The planner finds the **earliest common finish time**: candidate finish
times are the ledger breakpoints (headroom is piecewise constant, so the
optimum lies on one); for each candidate, per-source headroom is
water-filled under the egress budget until the volume fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.allocation import Allocation
from ..core.errors import ConfigurationError
from ..core.ledger import PortLedger
from ..core.platform import Platform

__all__ = ["StripedBooking", "plan_striped", "book_striped"]


@dataclass(frozen=True)
class StripedBooking:
    """A feasible striped plan: one allocation per contributing stripe."""

    allocations: tuple[Allocation, ...]
    finish: float

    @property
    def total_rate(self) -> float:
        """Aggregate transfer rate across stripes (MB/s)."""
        return sum(a.bw for a in self.allocations)

    @property
    def volume(self) -> float:
        """Total MB carried by the stripes."""
        return sum(a.transferred for a in self.allocations)


def _stripe_rates(
    ledger: PortLedger,
    platform: Platform,
    sources: list[int],
    egress: int,
    t0: float,
    t1: float,
    needed_rate: float,
    max_stream_rate: float | None,
) -> list[float] | None:
    """Water-fill per-source headroom up to ``needed_rate``; None if short."""
    free_egress = ledger.free_capacity("egress", egress, t0, t1)
    budget = min(needed_rate, free_egress)
    if budget < needed_rate * (1 - 1e-12):
        return None
    rates: list[float] = []
    remaining = needed_rate
    for source in sources:
        free = ledger.free_capacity("ingress", source, t0, t1)
        if max_stream_rate is not None:
            free = min(free, max_stream_rate)
        rate = max(0.0, min(free, remaining))
        rates.append(rate)
        remaining -= rate
    if remaining > needed_rate * 1e-12:
        return None
    return rates


def plan_striped(
    ledger: PortLedger,
    platform: Platform,
    *,
    sources: list[int],
    egress: int,
    volume: float,
    t_start: float,
    t_end: float,
    max_stream_rate: float | None = None,
    base_rid: int = 0,
) -> StripedBooking | None:
    """Plan (without booking) the earliest-finishing striped transfer.

    Returns ``None`` when even finishing exactly at the deadline is
    infeasible.  Stripes with zero assigned rate are omitted from the plan.
    """
    if volume <= 0:
        raise ConfigurationError(f"volume must be positive, got {volume}")
    if not sources:
        raise ConfigurationError("need at least one source")
    if len(set(sources)) != len(sources):
        raise ConfigurationError("duplicate sources")
    if not (t_end > t_start):
        raise ConfigurationError(f"empty window [{t_start}, {t_end}]")

    # Candidate horizons: every breakpoint strictly inside the window of
    # any involved timeline, plus the deadline.  Headroom over [t_start, b]
    # is constant between breakpoints, so for each horizon b we compute the
    # achievable aggregate rate R_b and check whether the transfer can end
    # at T* = t_start + volume / R_b ≤ b.  Rates sized against [t_start, b]
    # remain feasible on the shorter [t_start, T*] (headroom only grows as
    # the interval shrinks), so the first horizon that works is optimal up
    # to that conservatism.
    candidates = {t_end}
    points: list[float] = list(ledger.egress_timeline(egress).breakpoints())
    points.extend(ledger.degradation_edges("egress", egress))
    for s in sources:
        points.extend(ledger.ingress_timeline(s).breakpoints())
        points.extend(ledger.degradation_edges("ingress", s))
    for t in points:
        if t_start < t < t_end:
            candidates.add(float(t))

    def achievable_rate(horizon: float) -> float:
        free_egress = ledger.free_capacity("egress", egress, t_start, horizon)
        total = 0.0
        for source in sources:
            free = ledger.free_capacity("ingress", source, t_start, horizon)
            if max_stream_rate is not None:
                free = min(free, max_stream_rate)
            total += free
        return max(0.0, min(free_egress, total))

    for horizon in sorted(candidates):
        if horizon <= t_start:
            continue
        rate = achievable_rate(horizon)
        if rate <= 0:
            continue
        finish = t_start + volume / rate
        if finish > horizon * (1 + 1e-12):
            continue  # cannot complete within this horizon; try a later one
        needed = volume / (finish - t_start)
        rates = _stripe_rates(
            ledger, platform, sources, egress, t_start, horizon, needed, max_stream_rate
        )
        if rates is None:  # pragma: no cover - achievable_rate guarantees fit
            continue
        allocations = []
        for k, (source, stripe_rate) in enumerate(zip(sources, rates)):
            if stripe_rate <= 0:
                continue
            allocations.append(
                Allocation(
                    rid=base_rid + k,
                    ingress=source,
                    egress=egress,
                    bw=stripe_rate,
                    sigma=t_start,
                    tau=finish,
                )
            )
        return StripedBooking(tuple(allocations), finish)
    return None


def book_striped(
    ledger: PortLedger,
    platform: Platform,
    **kwargs,
) -> StripedBooking | None:
    """Plan and commit a striped transfer; ``None`` leaves the ledger
    untouched."""
    booking = plan_striped(ledger, platform, **kwargs)
    if booking is None:
        return None
    for alloc in booking.allocations:
        ledger.allocate(alloc.ingress, alloc.egress, alloc.sigma, alloc.tau, alloc.bw)
    return booking
