"""Reservation signalling messages (RSVP-like, §5.4).

The control plane reuses the RSVP request shape but routes messages inside
the grid overlay: a client submits to its ingress access router, which
probes the egress router and answers the client directly with a scheduled
window and rate.  Four message types realise a two-phase reservation:

``PROBE`` (ingress → egress: can you hold ``bw``?), ``PROBE_REPLY``
(egress → ingress: held / refused), ``COMMIT`` (ingress → egress: the
transfer is on) and ``RELEASE`` (either direction: return bandwidth).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["MessageType", "ReservationMessage"]


class MessageType(enum.Enum):
    """Kinds of control-plane messages."""

    PROBE = "probe"
    PROBE_REPLY = "probe-reply"
    COMMIT = "commit"
    RELEASE = "release"


@dataclass(frozen=True, slots=True)
class ReservationMessage:
    """One signalling message between overlay routers.

    ``rid`` identifies the request end-to-end; ``ok`` is meaningful only on
    ``PROBE_REPLY``; ``bw`` rides along so routers stay stateless about
    in-flight proposals they refused.
    """

    kind: MessageType
    rid: int
    src: int
    dst: int
    bw: float
    ok: bool = True
