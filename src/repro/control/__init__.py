"""Overlay control plane: distributed admission and rate enforcement (§5.4).

:class:`ControlPlane` simulates the RSVP-like two-phase reservation between
ingress and egress access routers; :class:`TokenBucket` models the
client-side pacing / access-point drop enforcement.
"""

from .messages import MessageType, ReservationMessage
from .plane import ControlPlane
from .router import PortAgent
from .service import Reservation, ReservationService, ReservationState
from .striped import StripedBooking, book_striped, plan_striped
from .token_bucket import TokenBucket, enforce_series

__all__ = [
    "ControlPlane",
    "MessageType",
    "PortAgent",
    "Reservation",
    "ReservationService",
    "ReservationState",
    "ReservationMessage",
    "StripedBooking",
    "TokenBucket",
    "book_striped",
    "enforce_series",
    "plan_striped",
]
