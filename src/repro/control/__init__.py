"""Overlay control plane: distributed admission, rate enforcement, faults.

:class:`ControlPlane` simulates the RSVP-like two-phase reservation between
ingress and egress access routers; :class:`TokenBucket` models the
client-side pacing / access-point drop enforcement.
:class:`ReservationService` is the stateful client-facing API, hardened
against mid-flight aborts, port outages, and process crashes
(:mod:`repro.control.faults`, :mod:`repro.control.journal`).
"""

from .faults import (
    CHAOS_SCENARIOS,
    AbortFault,
    BrokerCrash,
    ChaosMatrixReport,
    FaultDrillReport,
    FaultInjector,
    GatewayDrillReport,
    PortFault,
    chaos_scenario,
    run_chaos_matrix,
    run_fault_drill,
    run_gateway_fault_drill,
)
from .journal import Journal, JournalEntry
from .messages import MessageType, ReservationMessage
from .plane import ControlPlane
from .router import PortAgent
from .service import Reservation, ReservationService, ReservationState, RejectReason
from .striped import StripedBooking, book_striped, plan_striped
from .token_bucket import TokenBucket, enforce_series

__all__ = [
    "AbortFault",
    "BrokerCrash",
    "CHAOS_SCENARIOS",
    "ChaosMatrixReport",
    "ControlPlane",
    "FaultDrillReport",
    "FaultInjector",
    "GatewayDrillReport",
    "Journal",
    "JournalEntry",
    "MessageType",
    "PortAgent",
    "PortFault",
    "RejectReason",
    "Reservation",
    "ReservationService",
    "ReservationState",
    "ReservationMessage",
    "StripedBooking",
    "TokenBucket",
    "book_striped",
    "chaos_scenario",
    "enforce_series",
    "plan_striped",
    "run_chaos_matrix",
    "run_fault_drill",
    "run_gateway_fault_drill",
]
