"""Distributed admission control over the overlay control plane (§5.4).

Implements the paper's deployment story as a simulation: reservation
requests are submitted to the client's **ingress access router**, which
probes the egress router over the overlay (one-way signalling latency
``latency``), and answers the client directly with a scheduled window and
rate.  A two-phase hold/commit protocol keeps concurrent reservations from
over-committing a port that two in-flight requests both saw as free.

With ``latency = 0`` the plane degenerates to Algorithm 2 (GREEDY): every
decision happens at the arrival instant against exact global state — the
integration tests assert this equivalence.  With positive latency, accepted
transfers start ``2 × latency`` after arrival and the accept rate dips
slightly (held bandwidth is pessimistic), quantifying the signalling cost
of distributing the decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.allocation import Allocation, ScheduleResult
from ..core.errors import ConfigurationError
from ..core.problem import ProblemInstance
from ..core.request import Request
from ..schedulers.policies import BandwidthPolicy, MinRatePolicy
from ..sim.engine import Simulator
from .messages import MessageType, ReservationMessage
from .router import PortAgent

__all__ = ["ControlPlane"]


@dataclass
class ControlPlane:
    """Two-phase distributed admission over simulated signalling.

    Parameters
    ----------
    policy:
        Bandwidth assignment policy (as for the centralized heuristics).
    latency:
        One-way message latency between overlay routers, seconds.
    enforce_deadline:
        Floor the granted rate so the transfer still meets ``t_f`` despite
        starting ``2 × latency`` late; reject when impossible.
    """

    policy: BandwidthPolicy = field(default_factory=MinRatePolicy)
    latency: float = 0.0
    enforce_deadline: bool = True

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be non-negative, got {self.latency}")
        self.name = f"control-plane[{self.latency:g}s,{self.policy.name}]"

    # ------------------------------------------------------------------
    def schedule(self, problem: ProblemInstance) -> ScheduleResult:
        """Run the signalling simulation over all requests of ``problem``."""
        platform = problem.platform
        result = ScheduleResult(
            scheduler=self.name,
            meta={"latency": self.latency, "policy": self.policy.name, "messages": 0},
        )
        sim = Simulator()
        ingress_agents = [PortAgent(platform.bin(i)) for i in range(platform.num_ingress)]
        egress_agents = [PortAgent(platform.bout(e)) for e in range(platform.num_egress)]

        def send(message: ReservationMessage, handler) -> None:
            result.meta["messages"] += 1
            sim.after(self.latency, handler, payload=message)

        def on_arrival(event) -> None:
            request: Request = event.payload
            sigma_est = sim.now + 2 * self.latency
            start = sigma_est if self.enforce_deadline else None
            bw = self.policy.assign(request, start)
            agent = ingress_agents[request.ingress]
            if bw is None:
                result.reject(request.rid, "deadline")
                return
            if not agent.hold(sim.now, bw):
                result.reject(request.rid, "ingress-capacity")
                return
            send(
                ReservationMessage(MessageType.PROBE, request.rid, request.ingress, request.egress, bw),
                lambda e, request=request: on_probe(e, request),
            )

        def on_probe(event, request: Request) -> None:
            message: ReservationMessage = event.payload
            agent = egress_agents[message.dst]
            ok = agent.hold(sim.now, message.bw)
            send(
                ReservationMessage(
                    MessageType.PROBE_REPLY, message.rid, message.dst, message.src, message.bw, ok=ok
                ),
                lambda e, request=request: on_reply(e, request),
            )

        def on_reply(event, request: Request) -> None:
            message: ReservationMessage = event.payload
            ingress_agent = ingress_agents[request.ingress]
            if not message.ok:
                ingress_agent.unhold(message.bw)
                result.reject(request.rid, "egress-capacity")
                return
            sigma = sim.now
            tau = sigma + request.volume / message.bw
            ingress_agent.commit(message.bw, release_at=tau)
            result.accept(Allocation.for_request(request, message.bw, sigma=sigma))
            send(
                ReservationMessage(MessageType.COMMIT, request.rid, request.ingress, request.egress, message.bw),
                lambda e, tau=tau: on_commit(e, tau),
            )

        def on_commit(event, tau: float) -> None:
            message: ReservationMessage = event.payload
            # The egress learns of the commit latency late; it keeps the
            # bandwidth until the transfer's actual end (or now, whichever
            # is later — a transfer shorter than the one-way latency has
            # already finished).
            egress_agents[message.dst].commit(message.bw, release_at=max(tau, sim.now))

        for request in problem.requests.sorted_by_arrival():
            sim.at(request.t_start, on_arrival, payload=request)
        sim.run()
        return result
