"""Token-bucket rate enforcement (§5.4).

The paper's implementation enforces granted allocations with "local
bandwidth control on the client side (token bucket based)" plus hardware
pacing at the access point, so that flows exceeding their reservation are
dropped rather than allowed to hurt conforming traffic.  This module
models that enforcement point: a classic token bucket with rate ``r`` and
burst ``b``, plus helpers to classify a packet series into
conforming/dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ConfigurationError

__all__ = ["TokenBucket", "enforce_series"]


@dataclass
class TokenBucket:
    """A token bucket: tokens accrue at ``rate`` (MB/s) up to ``burst`` MB.

    The bucket starts full.  All times are absolute simulation seconds and
    must be fed in non-decreasing order.
    """

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {self.rate}")
        if self.burst <= 0:
            raise ConfigurationError(f"burst must be positive, got {self.burst}")
        self._tokens = self.burst
        self._last = 0.0

    def _advance(self, t: float) -> None:
        if t < self._last:
            raise ConfigurationError(f"time went backwards: {t} < {self._last}")
        self._tokens = min(self.burst, self._tokens + self.rate * (t - self._last))
        self._last = t

    @property
    def tokens(self) -> float:
        """Tokens currently in the bucket (at the last fed time)."""
        return self._tokens

    def offer(self, t: float, size: float) -> bool:
        """Offer ``size`` MB at time ``t``; consume tokens iff conforming."""
        if size < 0:
            raise ConfigurationError(f"negative size {size}")
        self._advance(t)
        if size <= self._tokens + 1e-12:
            self._tokens -= size
            return True
        return False

    def earliest_conforming(self, t: float, size: float) -> float:
        """Earliest time ≥ ``t`` at which ``size`` MB would conform.

        Does not consume tokens.  ``inf`` when ``size`` exceeds the burst
        (it can never conform in one piece).
        """
        if size > self.burst:
            return float("inf")
        self._advance(t)
        deficit = size - self._tokens
        if deficit <= 0:
            return t
        return t + deficit / self.rate

    def reset(self, t: float = 0.0) -> None:
        """Refill the bucket and restart the clock at ``t``."""
        self._tokens = self.burst
        self._last = t


def enforce_series(
    bucket: TokenBucket, times: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Run a packet series through ``bucket``; True where conforming.

    Models the drop-enforcement at the access point: non-conforming packets
    are dropped (they do not consume tokens).
    """
    times = np.asarray(times, dtype=np.float64)
    sizes = np.asarray(sizes, dtype=np.float64)
    if times.shape != sizes.shape:
        raise ConfigurationError("times and sizes must have equal length")
    ok = np.zeros(times.shape, dtype=bool)
    for k in range(times.size):
        ok[k] = bucket.offer(float(times[k]), float(sizes[k]))
    return ok
