"""Command-line front end: ``python -m repro.analysis`` / ``grid-lint``.

Examples
--------
Scan the library and fail on any active finding (what CI runs)::

    grid-lint src

Machine-readable output, selected rules only::

    grid-lint --format json --rules GL001,GL004 src benchmarks

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .engine import run_analysis, validate_rule_ids
from .rules import all_rules, rules_by_id

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-lint",
        description="Domain-aware static analysis for the repro codebase "
        "(determinism, float-time discipline, ledger encapsulation).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to scan (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="GL001,GL002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue and exit"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    catalogue = rules_by_id()
    if args.list_rules:
        for rule_id in sorted(catalogue):
            rule = catalogue[rule_id]
            print(f"{rule_id}  {rule.title:24s} [{rule.severity}]")
        return 0

    rules = all_rules()
    if args.rules is not None:
        try:
            selected = validate_rule_ids(args.rules.split(","), catalogue)
        except ValueError as exc:
            print(f"grid-lint: {exc}", file=sys.stderr)
            return 2
        if not selected:
            print("grid-lint: --rules selected nothing", file=sys.stderr)
            return 2
        rules = [catalogue[rule_id] for rule_id in selected]

    try:
        report = run_analysis(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"grid-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code
