"""Command-line front end: ``python -m repro.analysis`` / ``grid-lint``.

Examples
--------
Scan the library and fail on any active finding (what CI runs)::

    grid-lint src

Machine-readable output, selected rules only::

    grid-lint --format json --rules GL001,GL004 src benchmarks

SARIF for CI annotation, gated against the committed baseline::

    grid-lint --format sarif --baseline analysis_baseline.json src

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import run_analysis, validate_rule_ids
from .rules import all_rules, rules_by_id
from .sarif import to_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-lint",
        description="Domain-aware static analysis for the repro codebase "
        "(determinism, float-time discipline, ledger encapsulation).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to scan (default: src)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="GL001,GL002",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings (text format)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list the rule catalogue and exit"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="parse files with N worker threads (default: serial)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in this committed baseline; only "
        "new findings fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="snapshot the current active findings to FILE and exit 0",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    catalogue = rules_by_id()
    if args.list_rules:
        for rule_id in sorted(catalogue):
            rule = catalogue[rule_id]
            print(
                f"{rule_id}  {rule.title:24s} [{rule.severity}]  {rule.doc_anchor}"
            )
        return 0

    rules = all_rules()
    if args.rules is not None:
        try:
            selected = validate_rule_ids(args.rules.split(","), catalogue)
        except ValueError as exc:
            print(f"grid-lint: {exc}", file=sys.stderr)
            return 2
        if not selected:
            print("grid-lint: --rules selected nothing", file=sys.stderr)
            return 2
        rules = [catalogue[rule_id] for rule_id in selected]

    try:
        report = run_analysis(args.paths, rules, jobs=args.jobs)
    except FileNotFoundError as exc:
        print(f"grid-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report)
        print(
            f"grid-lint: wrote baseline with {len(report.findings)} "
            f"finding(s) to {args.write_baseline}"
        )
        return 0

    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"grid-lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        apply_baseline(report, baseline)

    if args.format == "json":
        print(report.to_json())
    elif args.format == "sarif":
        print(to_sarif(report, rules))
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code
