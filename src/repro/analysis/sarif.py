"""SARIF 2.1.0 output for gridlint (`--format sarif`).

One ``run`` per invocation: the tool driver carries the full rule
catalogue (id, name, help URI anchored into ``docs/ANALYSIS.md``), each
finding becomes a ``result`` with a physical location, and suppressed
findings are emitted too — marked with an ``inSource`` suppression
carrying the audit reason — so the SARIF consumer sees the same
auditable picture as ``--show-suppressed``.
"""

from __future__ import annotations

import json
from typing import Any

from .engine import AnalysisReport, Finding, Rule

__all__ = ["to_sarif"]

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def _rule_descriptor(rule: Rule) -> dict[str, Any]:
    return {
        "id": rule.rule_id,
        "name": rule.title or rule.rule_id,
        "shortDescription": {"text": rule.title or rule.rule_id},
        "helpUri": rule.doc_anchor,
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")
        },
    }


def _result(finding: Finding) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [
            {
                "kind": "inSource",
                "justification": finding.suppress_reason or "no reason given",
            }
        ]
    return result


def to_sarif(report: AnalysisReport, rules: list[Rule]) -> str:
    """Serialise ``report`` as a SARIF 2.1.0 document."""
    run = {
        "tool": {
            "driver": {
                "name": "gridlint",
                "informationUri": "docs/ANALYSIS.md",
                "rules": [
                    _rule_descriptor(rule)
                    for rule in sorted(rules, key=lambda r: r.rule_id)
                ],
            }
        },
        "results": [
            _result(f) for f in (report.findings + report.suppressed)
        ],
        "properties": {
            "filesScanned": report.files_scanned,
            "activeFindings": len(report.findings),
            "suppressedFindings": len(report.suppressed),
        },
    }
    document = {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [run],
    }
    return json.dumps(document, indent=2, sort_keys=True)
