"""gridlint — domain-aware static analysis for the repro codebase.

The fault-tolerant control plane (PR 1) made two properties load-bearing:

- **replay determinism** — :meth:`repro.control.service.ReservationService.replay`
  must rebuild a byte-identical service from its journal, so simulation and
  control code may not read wall clocks or draw from ambient RNG state;
- **ledger encapsulation** — every capacity decision flows through
  :class:`repro.core.ledger.PortLedger` and :mod:`repro.core.booking`
  (paper Eq. 1), so nothing may poke ledger or reservation internals from
  the outside.

Code review cannot reliably police these invariants; an AST pass can.  This
package is a small rule engine (:mod:`repro.analysis.engine`) plus the
domain rules (:mod:`repro.analysis.rules`), exposed as ``python -m
repro.analysis`` and the ``grid-lint`` console script.  See
``docs/ANALYSIS.md`` for the rule catalogue and suppression syntax.
"""

from __future__ import annotations

from .engine import AnalysisReport, Finding, Module, Project, Rule, run_analysis
from .rules import all_rules, default_rules

__all__ = [
    "AnalysisReport",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "all_rules",
    "default_rules",
    "run_analysis",
]
