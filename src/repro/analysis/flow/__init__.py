"""gridflow: flow-sensitive analysis substrate for gridlint.

Layers (each usable on its own):

- :mod:`~repro.analysis.flow.cfg` — per-function control-flow graphs over
  ``ast`` with explicit exception edges and a pluggable raise filter;
- :mod:`~repro.analysis.flow.solver` — generic worklist dataflow solver,
  plus reaching definitions and liveness as library passes;
- :mod:`~repro.analysis.flow.taint` — intraprocedural taint lattice with
  a one-level call summary table;
- :mod:`~repro.analysis.flow.typestate` — resource typestate checker
  parameterised by (acquire, release, transfer) verb sets.

Rules GL011–GL014 are clients; see ``docs/FLOW.md`` for the architecture
and a worked hold-leak example.
"""

from .cfg import (
    CFG,
    EXC,
    FALSE,
    NORMAL,
    TRUE,
    CFGNode,
    Edge,
    build_cfg,
    function_cfgs,
    stmt_exprs,
    syntactic_can_raise,
)
from .solver import (
    Analysis,
    DataflowResult,
    assigned_names,
    liveness,
    reaching_definitions,
    solve,
    used_names,
)
from .taint import ModuleTaint, TaintState, module_summaries
from .typestate import (
    ResourceSpec,
    TypestateEvent,
    check_function,
    check_tree,
    spec_can_raise,
)

__all__ = [
    "CFG",
    "CFGNode",
    "Edge",
    "EXC",
    "FALSE",
    "NORMAL",
    "TRUE",
    "Analysis",
    "DataflowResult",
    "ModuleTaint",
    "ResourceSpec",
    "TaintState",
    "TypestateEvent",
    "assigned_names",
    "build_cfg",
    "check_function",
    "check_tree",
    "function_cfgs",
    "liveness",
    "module_summaries",
    "reaching_definitions",
    "solve",
    "spec_can_raise",
    "stmt_exprs",
    "syntactic_can_raise",
    "used_names",
]
