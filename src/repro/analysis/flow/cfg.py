"""Per-function control-flow graphs over ``ast``.

One :class:`CFG` per function: one node per *simple* statement or compound
header (the ``if``/``while``/``for``/``with``/``match``/``try`` line), plus
three markers — ``entry``, ``exit`` (normal return or fall-off) and
``raise`` (an exception leaves the function).  Edges carry a kind:

- ``normal`` — sequential flow;
- ``true`` / ``false`` — the two sides of a branch head (``if``/``while``/
  ``for`` enter-vs-exhaust, ``match`` case-taken-vs-no-match);
- ``exc`` — the statement raised and control transferred to a handler,
  a ``finally`` block, or out of the function.

Covered constructs: ``if``/``elif``/``else``, ``for``/``else``,
``while``/``else``, ``try``/``except``/``else``/``finally`` (returns,
breaks and continues are routed *through* enclosing ``finally`` blocks),
``with``, ``match``, ``return``/``raise``/``break``/``continue``, and
``assert``.  Deliberate over-approximations, chosen so the dataflow
clients stay sound-for-leaks but quiet:

- boolean operators and comprehensions stay inside their statement node
  (no intra-expression short-circuit edges); their effects are joined;
- a shared ``finally`` block is built once and its exits fan out to every
  recorded continuation (normal, exceptional, return, break/continue) —
  infeasible path combinations are accepted;
- every ``except`` handler is a candidate target for every exception in
  the ``try`` body; unless a handler catches everything (bare ``except``,
  ``Exception``/``BaseException``), the exception may also slip past the
  handlers and propagate outward.

Which statements can raise is pluggable (``can_raise``): the default
treats any statement containing a call, attribute access or subscript as
a potential raiser; the typestate rules narrow this to protocol verbs so
an unrelated ``log(x)`` between ``prepare`` and ``commit`` does not
manufacture a phantom leak path (see ``docs/FLOW.md``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator

__all__ = [
    "CFG",
    "CFGNode",
    "Edge",
    "EXC",
    "FALSE",
    "NORMAL",
    "TRUE",
    "build_cfg",
    "function_cfgs",
    "syntactic_can_raise",
]

NORMAL = "normal"
TRUE = "true"
FALSE = "false"
EXC = "exc"

#: A function whose CFG can be built.
FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef

#: Statement kinds whose own body lines get their own nodes — only the
#: header expressions belong to the compound statement's node.
_COMPOUND = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def _header_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions evaluated by a compound statement's header line."""
    if isinstance(stmt, ast.If | ast.While):
        return [stmt.test]
    if isinstance(stmt, ast.For | ast.AsyncFor):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, ast.With | ast.AsyncWith):
        exprs: list[ast.expr] = []
        for item in stmt.items:
            exprs.append(item.context_expr)
            if item.optional_vars is not None:
                exprs.append(item.optional_vars)
        return exprs
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    return []


def stmt_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
    """Every AST node this CFG node evaluates.

    Simple statements yield their whole subtree; compound statements
    yield only their header expressions (the body belongs to other
    nodes); nested function/class definitions yield nothing (their body
    runs elsewhere).
    """
    if isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef):
        return
    if isinstance(stmt, _COMPOUND):
        for expr in _header_exprs(stmt):
            yield from ast.walk(expr)
        return
    yield from ast.walk(stmt)


def syntactic_can_raise(stmt: ast.stmt) -> bool:
    """Default raise filter: calls, attribute access and subscripts raise."""
    if isinstance(stmt, ast.Raise | ast.Assert):
        return True
    return any(
        isinstance(node, ast.Call | ast.Attribute | ast.Subscript)
        for node in stmt_exprs(stmt)
    )


@dataclass(frozen=True)
class Edge:
    """One directed edge ``src → dst`` with its kind."""

    src: int
    dst: int
    kind: str


@dataclass
class CFGNode:
    """One CFG node: a statement, or an ``entry``/``exit``/``raise`` marker."""

    nid: int
    stmt: ast.stmt | None = None
    marker: str | None = None

    @property
    def label(self) -> str:
        """``StmtType:line`` for statements; the marker name otherwise."""
        if self.marker is not None:
            return self.marker
        if self.stmt is None:  # pragma: no cover - constructor invariant
            raise ValueError(f"node {self.nid} has neither stmt nor marker")
        return f"{type(self.stmt).__name__}:{self.stmt.lineno}"


@dataclass
class CFG:
    """The control-flow graph of one function."""

    name: str
    func: FunctionNode
    nodes: list[CFGNode]
    edges: list[Edge]
    entry: int
    exit: int
    raise_exit: int
    _succs: dict[int, list[Edge]] = field(default_factory=dict, repr=False)
    _preds: dict[int, list[Edge]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for node in self.nodes:
            self._succs.setdefault(node.nid, [])
            self._preds.setdefault(node.nid, [])
        for edge in self.edges:
            self._succs[edge.src].append(edge)
            self._preds[edge.dst].append(edge)

    def succs(self, nid: int) -> list[Edge]:
        """Outgoing edges of ``nid``."""
        return self._succs[nid]

    def preds(self, nid: int) -> list[Edge]:
        """Incoming edges of ``nid``."""
        return self._preds[nid]

    def node(self, nid: int) -> CFGNode:
        """The node with id ``nid``."""
        return self.nodes[nid]

    def stmt_nodes(self) -> Iterator[CFGNode]:
        """Every non-marker node."""
        for node in self.nodes:
            if node.stmt is not None:
                yield node

    def edge_set(self) -> set[tuple[str, str, str]]:
        """``{(src_label, dst_label, kind)}`` — the hand-checkable form."""
        return {
            (self.nodes[e.src].label, self.nodes[e.dst].label, e.kind)
            for e in self.edges
        }


# ----------------------------------------------------------------------
# Builder
# ----------------------------------------------------------------------
#: A dangling edge waiting for its destination: ``(source node, kind)``.
_Pending = tuple[int, str]


@dataclass
class _LoopCtx:
    token: int
    header: int
    breaks: list[_Pending] = field(default_factory=list)


@dataclass
class _FinallyCtx:
    token: int
    #: Exceptions raised under this ``try`` that must run the finally.
    exc_in: list[_Pending] = field(default_factory=list)
    #: Returns / breaks / continues intercepted on their way out.
    inflows: list[_Pending] = field(default_factory=list)
    saw_return: bool = False
    saw_exc: bool = False
    #: Loops targeted by intercepted breaks / continues.
    break_loops: list[_LoopCtx] = field(default_factory=list)
    continue_loops: list[_LoopCtx] = field(default_factory=list)


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names: list[str] = []
    for node in ast.walk(handler.type):
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return any(name in ("Exception", "BaseException") for name in names)


def _irrefutable(case: ast.match_case) -> bool:
    if case.guard is not None:
        return False
    pattern = case.pattern
    return isinstance(pattern, ast.MatchAs) and pattern.pattern is None


class _Builder:
    def __init__(self, func: FunctionNode, can_raise: Callable[[ast.stmt], bool]) -> None:
        self.func = func
        self.can_raise = can_raise
        self.nodes: list[CFGNode] = []
        self.edges: set[Edge] = set()
        self.entry = self._marker("entry")
        self.exit = self._marker("exit")
        self.raise_exit = self._marker("raise")
        #: Innermost-last stack of exception collectors.  Each entry is a
        #: plain list (a ``try`` body's route to its handlers) or a
        #: :class:`_FinallyCtx` (exceptions must run the finally first).
        self._frames: list[list[_Pending] | _FinallyCtx] = []
        self._loops: list[_LoopCtx] = []
        self._finallies: list[_FinallyCtx] = []
        self._token = 0

    # -- plumbing -------------------------------------------------------
    def _marker(self, name: str) -> int:
        node = CFGNode(nid=len(self.nodes), marker=name)
        self.nodes.append(node)
        return node.nid

    def _next_token(self) -> int:
        self._token += 1
        return self._token

    def _connect(self, pendings: list[_Pending], dst: int) -> None:
        for src, kind in pendings:
            self.edges.add(Edge(src, dst, kind))

    def _stmt_node(self, stmt: ast.stmt, incoming: list[_Pending]) -> int:
        node = CFGNode(nid=len(self.nodes), stmt=stmt)
        self.nodes.append(node)
        self._connect(incoming, node.nid)
        return node.nid

    def _emit_exc(self, pendings: list[_Pending]) -> None:
        """Route exception edges to the innermost frame (or out)."""
        if not pendings:
            return
        if self._frames:
            frame = self._frames[-1]
            if isinstance(frame, _FinallyCtx):
                frame.exc_in.extend(pendings)
                frame.saw_exc = True
            else:
                frame.extend(pendings)
        else:
            self._connect(pendings, self.raise_exit)

    def _emit_return(self, pendings: list[_Pending]) -> None:
        """A return: run every enclosing finally, then reach ``exit``."""
        if self._finallies:
            ctx = self._finallies[-1]
            ctx.inflows.extend(pendings)
            ctx.saw_return = True
        else:
            self._connect(pendings, self.exit)

    def _emit_break(self, loop: _LoopCtx, pendings: list[_Pending]) -> None:
        """A break targeting ``loop``: finallies inside the loop run first."""
        inner = [f for f in self._finallies if f.token > loop.token]
        if inner:
            ctx = inner[-1]
            ctx.inflows.extend(pendings)
            ctx.break_loops.append(loop)
        else:
            loop.breaks.extend(pendings)

    def _emit_continue(self, loop: _LoopCtx, pendings: list[_Pending]) -> None:
        inner = [f for f in self._finallies if f.token > loop.token]
        if inner:
            ctx = inner[-1]
            ctx.inflows.extend(pendings)
            ctx.continue_loops.append(loop)
        else:
            self._connect(pendings, loop.header)

    # -- driver ---------------------------------------------------------
    def build(self) -> CFG:
        out = self._build_body(self.func.body, [(self.entry, NORMAL)])
        self._connect(out, self.exit)
        return CFG(
            name=self.func.name,
            func=self.func,
            nodes=self.nodes,
            edges=sorted(self.edges, key=lambda e: (e.src, e.dst, e.kind)),
            entry=self.entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    def _build_body(
        self, body: list[ast.stmt], incoming: list[_Pending]
    ) -> list[_Pending]:
        out = incoming
        for stmt in body:
            if not out:
                # Unreachable code after return/raise/break: still build
                # nodes (rules may inspect them) but leave them orphaned.
                out = []
            out = self._build_stmt(stmt, out)
        return out

    def _build_stmt(self, stmt: ast.stmt, incoming: list[_Pending]) -> list[_Pending]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, incoming)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, incoming)
        if isinstance(stmt, ast.For | ast.AsyncFor):
            return self._build_for(stmt, incoming)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, incoming)
        if isinstance(stmt, ast.With | ast.AsyncWith):
            return self._build_with(stmt, incoming)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, incoming)
        if isinstance(stmt, ast.Return):
            nid = self._stmt_node(stmt, incoming)
            self._maybe_exc(stmt, nid)
            self._emit_return([(nid, NORMAL)])
            return []
        if isinstance(stmt, ast.Raise):
            nid = self._stmt_node(stmt, incoming)
            self._emit_exc([(nid, EXC)])
            return []
        if isinstance(stmt, ast.Break):
            nid = self._stmt_node(stmt, incoming)
            self._emit_break(self._loops[-1], [(nid, NORMAL)])
            return []
        if isinstance(stmt, ast.Continue):
            nid = self._stmt_node(stmt, incoming)
            self._emit_continue(self._loops[-1], [(nid, NORMAL)])
            return []
        # Simple statement (incl. nested def/class headers).
        nid = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, nid)
        return [(nid, NORMAL)]

    def _maybe_exc(self, stmt: ast.stmt, nid: int) -> None:
        if self.can_raise(stmt):
            self._emit_exc([(nid, EXC)])

    # -- compounds ------------------------------------------------------
    def _build_if(self, stmt: ast.If, incoming: list[_Pending]) -> list[_Pending]:
        head = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, head)
        out = self._build_body(stmt.body, [(head, TRUE)])
        if stmt.orelse:
            out = out + self._build_body(stmt.orelse, [(head, FALSE)])
        else:
            out = out + [(head, FALSE)]
        return out

    def _build_while(self, stmt: ast.While, incoming: list[_Pending]) -> list[_Pending]:
        head = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, head)
        loop = _LoopCtx(token=self._next_token(), header=head)
        self._loops.append(loop)
        body_out = self._build_body(stmt.body, [(head, TRUE)])
        self._loops.pop()
        self._connect(body_out, head)
        infinite = isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        out: list[_Pending] = []
        if not infinite:
            if stmt.orelse:
                out = self._build_body(stmt.orelse, [(head, FALSE)])
            else:
                out = [(head, FALSE)]
        return out + loop.breaks

    def _build_for(
        self, stmt: ast.For | ast.AsyncFor, incoming: list[_Pending]
    ) -> list[_Pending]:
        head = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, head)
        loop = _LoopCtx(token=self._next_token(), header=head)
        self._loops.append(loop)
        body_out = self._build_body(stmt.body, [(head, TRUE)])
        self._loops.pop()
        self._connect(body_out, head)
        if stmt.orelse:
            out = self._build_body(stmt.orelse, [(head, FALSE)])
        else:
            out = [(head, FALSE)]
        return out + loop.breaks

    def _build_with(
        self, stmt: ast.With | ast.AsyncWith, incoming: list[_Pending]
    ) -> list[_Pending]:
        head = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, head)
        return self._build_body(stmt.body, [(head, NORMAL)])

    def _build_match(self, stmt: ast.Match, incoming: list[_Pending]) -> list[_Pending]:
        head = self._stmt_node(stmt, incoming)
        self._maybe_exc(stmt, head)
        out: list[_Pending] = []
        for case in stmt.cases:
            out += self._build_body(case.body, [(head, TRUE)])
        if not any(_irrefutable(case) for case in stmt.cases):
            out.append((head, FALSE))
        return out

    def _build_try(self, stmt: ast.Try, incoming: list[_Pending]) -> list[_Pending]:
        fctx: _FinallyCtx | None = None
        if stmt.finalbody:
            fctx = _FinallyCtx(token=self._next_token())
            self._finallies.append(fctx)
            self._frames.append(fctx)
        body_exc: list[_Pending] = []
        if stmt.handlers:
            self._frames.append(body_exc)
        body_out = self._build_body(stmt.body, incoming)
        if stmt.handlers:
            self._frames.pop()
        # The else block runs only after a clean body; its exceptions are
        # not caught by this try's handlers.
        out = self._build_body(stmt.orelse, body_out) if stmt.orelse else body_out
        ends = list(out)
        if stmt.handlers:
            for handler in stmt.handlers:
                ends += self._build_body(handler.body, list(body_exc))
            if not any(_catches_everything(h) for h in stmt.handlers):
                # The exception may match none of the handlers.
                self._emit_exc(body_exc)
        if fctx is None:
            return ends
        self._finallies.pop()
        self._frames.pop()
        return self._build_finally(stmt, fctx, ends)

    def _build_finally(
        self, stmt: ast.Try, fctx: _FinallyCtx, ends: list[_Pending]
    ) -> list[_Pending]:
        fin_in = ends + fctx.exc_in + fctx.inflows
        if not fin_in:  # pragma: no cover - body cannot be empty
            return []
        f_out = self._build_body(stmt.finalbody, fin_in)
        if fctx.saw_exc:
            self._emit_exc([(src, EXC) for src, _ in f_out])
        if fctx.saw_return:
            self._emit_return([(src, NORMAL) for src, _ in f_out])
        for loop in fctx.break_loops:
            self._emit_break(loop, [(src, NORMAL) for src, _ in f_out])
        for loop in fctx.continue_loops:
            self._emit_continue(loop, [(src, NORMAL) for src, _ in f_out])
        # Normal continuation exists only if some path completed the try.
        return f_out if ends else []


def build_cfg(
    func: FunctionNode,
    *,
    can_raise: Callable[[ast.stmt], bool] = syntactic_can_raise,
) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(func, can_raise).build()


def function_cfgs(
    tree: ast.AST,
    *,
    can_raise: Callable[[ast.stmt], bool] = syntactic_can_raise,
) -> list[CFG]:
    """CFGs for every function (at any nesting depth) under ``tree``."""
    cfgs: list[CFG] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
            cfgs.append(build_cfg(node, can_raise=can_raise))
    return cfgs
