"""Intraprocedural taint lattice with a one-level call summary table.

A *source predicate* maps a resolved callable origin (what
:class:`~repro.analysis.rules._common.ImportTracker` produces, e.g.
``"time.time"``) to a taint label, or ``None``.  The analysis then
propagates labels through assignments, arithmetic, f-strings, container
literals and method chains: the taint of an expression is the union of
the labels of every source call and every tainted name inside it.

Interprocedural precision is deliberately shallow: before the dataflow
pass, :func:`module_summaries` scans every function defined in the module
and records those whose *return value* derives from a source (computed
with a flow-insensitive local fixpoint).  Calls to a summarised function
then act as sources themselves — one level deep, no transitive closure,
exactly the "one-level call summary table" trade: it catches the
ubiquitous ``def _now(): return time.time()`` wrapper without the cost
or the false-positive surface of a whole-program analysis.

Conservative choices: attribute/subscript stores taint the base variable
(``x.a = tainted`` taints ``x``); ``del`` and plain rebinding clear a
name; exception edges carry the same state as normal ones (taint has no
partial-execution subtlety worth modelling).
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from dataclasses import dataclass

from ..rules._common import ImportTracker, dotted_name
from .cfg import CFG, CFGNode
from .solver import Analysis, DataflowResult, solve

__all__ = ["ModuleTaint", "TaintState", "module_summaries"]

#: ``(variable, label)`` pairs; label names the origin, e.g. "time.time".
TaintState = frozenset[tuple[str, str]]

SourceFn = Callable[[str | None], str | None]


def _call_labels(
    expr: ast.AST,
    tracker: ImportTracker,
    source_of: SourceFn,
    summaries: dict[str, frozenset[str]],
) -> set[str]:
    """Labels contributed by source calls (direct or summarised) in ``expr``."""
    labels: set[str] = set()
    for node in ast.walk(expr):
        if not isinstance(node, ast.Call):
            continue
        origin = tracker.resolve(node.func)
        label = source_of(origin)
        if label is not None:
            labels.add(label)
            continue
        dotted = dotted_name(node.func)
        if dotted is not None:
            # `self.helper()` and plain `helper()` both hit the summary
            # of a function defined in this module.
            key = dotted.split(".")[-1]
            if key in summaries:
                labels.update(summaries[key])
    return labels


def _local_return_taint(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    tracker: ImportTracker,
    source_of: SourceFn,
) -> frozenset[str]:
    """Flow-insensitive: labels the function's return value may carry."""
    tainted: dict[str, set[str]] = {}
    empty: dict[str, frozenset[str]] = {}

    def expr_labels(expr: ast.AST) -> set[str]:
        labels = _call_labels(expr, tracker, source_of, empty)
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and node.id in tainted:
                labels.update(tainted[node.id])
        return labels

    changed = True
    while changed:
        changed = False
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign | ast.AnnAssign | ast.AugAssign):
                value = stmt.value
                if value is None:
                    continue
                labels = expr_labels(value)
                if not labels:
                    continue
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            prior = tainted.setdefault(node.id, set())
                            if not labels <= prior:
                                prior.update(labels)
                                changed = True
    returned: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and node.value is not None:
            returned.update(expr_labels(node.value))
    return frozenset(returned)


def module_summaries(
    tree: ast.Module, tracker: ImportTracker, source_of: SourceFn
) -> dict[str, frozenset[str]]:
    """Functions in ``tree`` whose return value derives from a source.

    One level only: summaries are computed against the raw sources, so a
    wrapper-of-a-wrapper is not followed.  Keyed by bare function name.
    """
    summaries: dict[str, frozenset[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
            labels = _local_return_taint(node, tracker, source_of)
            if labels:
                summaries[node.name] = labels
    return summaries


@dataclass
class _TaintAnalysis(Analysis[TaintState]):
    tracker: ImportTracker
    source_of: SourceFn
    summaries: dict[str, frozenset[str]]
    direction: str = "forward"

    def initial(self) -> TaintState:
        return frozenset()

    def bottom(self) -> TaintState:
        return frozenset()

    def join(self, a: TaintState, b: TaintState) -> TaintState:
        return a | b

    # ------------------------------------------------------------------
    def expr_taint(self, expr: ast.AST, state: TaintState) -> frozenset[str]:
        """The labels ``expr`` may carry under ``state``."""
        labels = _call_labels(expr, self.tracker, self.source_of, self.summaries)
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                for var, label in state:
                    if var == node.id:
                        labels.add(label)
        return frozenset(labels)

    def transfer(self, node: CFGNode, state: TaintState) -> TaintState:
        stmt = node.stmt
        if stmt is None:
            return state
        if isinstance(stmt, ast.Assign | ast.AnnAssign | ast.AugAssign):
            return self._transfer_assign(stmt, state)
        if isinstance(stmt, ast.For | ast.AsyncFor):
            labels = self.expr_taint(stmt.iter, state)
            return self._bind_targets([stmt.target], labels, state)
        if isinstance(stmt, ast.With | ast.AsyncWith):
            for item in stmt.items:
                if item.optional_vars is not None:
                    labels = self.expr_taint(item.context_expr, state)
                    state = self._bind_targets([item.optional_vars], labels, state)
            return state
        if isinstance(stmt, ast.Delete):
            killed = {
                t.id for t in stmt.targets if isinstance(t, ast.Name)
            }
            return frozenset(p for p in state if p[0] not in killed)
        return state

    def _transfer_assign(
        self, stmt: ast.Assign | ast.AnnAssign | ast.AugAssign, state: TaintState
    ) -> TaintState:
        if stmt.value is None:
            return state
        labels = self.expr_taint(stmt.value, state)
        targets = stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        if isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            # x += e keeps x's old taint and adds e's.
            labels = labels | self.expr_taint(stmt.target, state)
        return self._bind_targets(targets, labels, state)

    def _bind_targets(
        self, targets: list[ast.expr], labels: frozenset[str], state: TaintState
    ) -> TaintState:
        names: set[str] = set()
        based: set[str] = set()
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Store):
                        names.add(node.id)
                    else:
                        # x[i] = e / x.a = e: the container/base is `x`
                        # in Load context inside the target.
                        based.add(node.id)
        kept = frozenset(p for p in state if p[0] not in names)
        if not labels:
            # Stores into a base keep its old taint; plain rebinds clear.
            return kept
        fresh = {(name, label) for name in names | based for label in labels}
        return kept | frozenset(fresh)


class ModuleTaint:
    """Taint facts for one module: summaries + per-function fixpoints."""

    def __init__(
        self, tree: ast.Module, tracker: ImportTracker, source_of: SourceFn
    ) -> None:
        self.tracker = tracker
        self.source_of = source_of
        self.summaries = module_summaries(tree, tracker, source_of)
        self._analysis = _TaintAnalysis(
            tracker=tracker, source_of=source_of, summaries=self.summaries
        )

    def analyze(self, cfg: CFG) -> DataflowResult[TaintState]:
        """Solve the taint fixpoint over one function's CFG."""
        return solve(cfg, self._analysis)

    def taint_of(
        self, expr: ast.AST, state: TaintState
    ) -> frozenset[str]:
        """Labels ``expr`` may carry given the in-state of its node."""
        return self._analysis.expr_taint(expr, state)

    def header_state(
        self, result: DataflowResult[TaintState], node: CFGNode
    ) -> TaintState:
        """The state in which ``node``'s own expressions evaluate."""
        return result.before[node.nid]
