"""Resource typestate over the CFG: acquire → (release | transfer) on every path.

Parameterised by a :class:`ResourceSpec` — the (acquire, release,
transfer) verb sets of one protocol.  For the gateway's two-phase
protocol that is ``acquire={prepare}``, ``release={commit, abort_hold}``:
a ``prepare()`` result that can reach function exit (normal *or*
exceptional) without a resolution attempt is a leaked hold.

Granularity is the CFG node (one statement): a statement that contains an
acquire-verb call and binds a single name acquires that name; a statement
that contains a release-verb call releases every held variable whose name
it mentions.  This deliberately sees through wrappers — ``hold =
self._with_retry(lambda: c.prepare(...))`` acquires ``hold``, and
``self._with_retry(lambda h=hold: c.commit(h.hold_id))`` releases it —
because the verbs and the variable appear in the same statement.

Ownership transfers (the checker goes quiet, it does not bless): the held
variable is returned or yielded, stored into an attribute, subscript or
container, aliased by another assignment, or passed to any call that is
not itself a release.  Leak reports therefore only name variables that
*no* statement on the path did anything resolution-shaped with.

Exception semantics (``transfer_exc``): an edge taken because the
statement raised carries the pre-state with releases applied but
acquisitions **not** applied — a ``prepare`` that raised never granted a
hold, and a ``commit`` that raised still counts as a resolution attempt
(failed resolutions are the hold-TTL sweep's job; this checker hunts
paths with *no* attempt).  Branch refinement understands ``if x is
None`` / ``if not x`` guards: on the branch where the acquire result is
None, nothing is held.

Events produced (consumed by rules GL011/GL012):

- ``leak`` — a held variable reaches ``exit``/``raise``;
- ``discard`` — an acquire-verb result is not bound to a name;
- ``double`` — a second release of an already-released variable with no
  idempotency keyword;
- ``order`` — a release verb runs on a receiver no path has seen an
  acquire verb on, in a function that does acquire on that receiver.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from ..rules._common import dotted_name, terminal_name
from .cfg import CFG, CFGNode, build_cfg, stmt_exprs
from .solver import Analysis, assigned_names, solve

__all__ = [
    "ResourceSpec",
    "TypestateEvent",
    "check_function",
    "check_tree",
    "spec_can_raise",
]


@dataclass(frozen=True)
class ResourceSpec:
    """The verb sets of one acquire/release protocol."""

    acquire: frozenset[str]
    release: frozenset[str]
    #: Extra verbs that take ownership without resolving (beyond the
    #: structural transfers the checker always recognises).
    transfer: frozenset[str] = frozenset()
    #: A release call carrying this keyword is idempotent — replays are
    #: answered from a recorded result, so double resolution is safe.
    idempotent_kwarg: str | None = "key"

    def verbs(self) -> frozenset[str]:
        """Every verb the spec knows (used for the narrow raise filter)."""
        return self.acquire | self.release | self.transfer


def spec_can_raise(spec: ResourceSpec) -> Callable[[ast.stmt], bool]:
    """Raise filter for :func:`~repro.analysis.flow.cfg.build_cfg`.

    Only ``raise``/``assert`` and statements calling a protocol verb get
    exception edges: the protocol calls are the ones documented to raise
    (``BrokerUnavailable``, ``ChannelTimeout``), and admitting exception
    edges from every call would manufacture phantom leak paths through
    unrelated bookkeeping statements.
    """
    verbs = spec.verbs()

    def can_raise(stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Raise | ast.Assert):
            return True
        return any(
            isinstance(node, ast.Call)
            and terminal_name(node.func) in verbs
            for node in stmt_exprs(stmt)
        )

    return can_raise


@dataclass(frozen=True)
class TypestateEvent:
    """One protocol violation candidate."""

    kind: str  # "leak" | "discard" | "double" | "order"
    line: int  # where to report
    var: str | None = None
    acquire_line: int | None = None
    exit_kind: str | None = None  # "return" | "exception" for leaks
    receiver: str | None = None  # for order events


# State facts: ("held", var, acquire_line) / ("released", var)
#              / ("maybe", var) — release raised: resolution attempted,
#                outcome unknown, so neither a leak nor double-able
#              / ("held_ever", var) / ("prep", receiver)
_Fact = tuple[str, ...]
_State = frozenset[_Fact]


def _calls(stmt: ast.stmt) -> Iterator[ast.Call]:
    for node in stmt_exprs(stmt):
        if isinstance(node, ast.Call):
            yield node


def _mentioned_names(stmt: ast.stmt) -> set[str]:
    return {
        node.id
        for node in stmt_exprs(stmt)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


def _receiver_of(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value) or terminal_name(call.func.value)
    return None


def _single_name_target(stmt: ast.stmt) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
        if isinstance(target, ast.Name):
            return target.id
    if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
        return stmt.target.id
    return None


@dataclass
class _StmtFacts:
    """What one statement means to the protocol (computed once, cached)."""

    acquires: str | None = None  # variable bound to an acquire result
    acquire_line: int = 0
    discards: bool = False  # acquire result not bound to a name
    release_call: bool = False
    release_keyed: bool = False  # release carries the idempotency kwarg
    release_receivers: tuple[str, ...] = ()
    prep_receivers: tuple[str, ...] = ()
    mentioned: frozenset[str] = frozenset()
    rebinds: frozenset[str] = frozenset()  # names (re)bound by this stmt
    transfers_mentions: bool = False  # stmt hands mentioned vars away
    returns_value: bool = False


def _classify(stmt: ast.stmt, spec: ResourceSpec) -> _StmtFacts:
    facts = _StmtFacts(mentioned=frozenset(_mentioned_names(stmt)))
    target = _single_name_target(stmt)
    has_non_release_call = False
    for call in _calls(stmt):
        verb = terminal_name(call.func)
        if verb in spec.acquire:
            recv = _receiver_of(call)
            if recv is not None:
                facts.prep_receivers += (recv,)
            if target is not None:
                facts.acquires = target
                facts.acquire_line = stmt.lineno
            elif isinstance(stmt, ast.Expr):
                # Only a bare expression statement truly drops the result;
                # `return broker.prepare(...)` or passing it along hands
                # ownership to the caller.
                facts.discards = True
        elif verb in spec.release:
            facts.release_call = True
            recv = _receiver_of(call)
            if recv is not None:
                facts.release_receivers += (recv,)
            if spec.idempotent_kwarg is not None and any(
                kw.arg == spec.idempotent_kwarg for kw in call.keywords
            ):
                facts.release_keyed = True
        else:
            has_non_release_call = True
            if verb in spec.transfer:
                facts.transfers_mentions = True
    if isinstance(stmt, ast.Return | ast.Expr) and isinstance(
        getattr(stmt, "value", None), ast.Yield | ast.YieldFrom
    ):
        facts.returns_value = True
    if isinstance(stmt, ast.Return) and stmt.value is not None:
        facts.returns_value = True
    # Structural transfers: the variable flows somewhere the checker
    # cannot follow — any other call, a store, an aliasing assignment.
    if has_non_release_call:
        facts.transfers_mentions = True
    if isinstance(stmt, ast.Assign | ast.AnnAssign | ast.AugAssign):
        facts.transfers_mentions = True  # aliasing / store gives up tracking
    facts.rebinds = frozenset(assigned_names(stmt))
    return facts


def _none_guard(test: ast.expr) -> tuple[str, str] | None:
    """``(var, branch-where-var-is-none)`` for recognisable None tests."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left, (op,), (right,) = test.left, test.ops, test.comparators
        if isinstance(right, ast.Constant) and right.value is None and isinstance(
            left, ast.Name
        ):
            if isinstance(op, ast.Is):
                return (left.id, "true")
            if isinstance(op, ast.IsNot):
                return (left.id, "false")
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not) and isinstance(
        test.operand, ast.Name
    ):
        return (test.operand.id, "true")
    if isinstance(test, ast.Name):
        return (test.id, "false")
    return None


@dataclass
class _TypestateAnalysis(Analysis[_State]):
    spec: ResourceSpec
    facts: dict[int, _StmtFacts]
    events: list[TypestateEvent] = field(default_factory=list)
    _seen: set[tuple[object, ...]] = field(default_factory=set)
    direction: str = "forward"

    def initial(self) -> _State:
        return frozenset()

    def bottom(self) -> _State:
        return frozenset()

    def join(self, a: _State, b: _State) -> _State:
        return a | b

    def _emit(self, event: TypestateEvent) -> None:
        key = (event.kind, event.line, event.var, event.receiver, event.exit_kind)
        if key not in self._seen:
            self._seen.add(key)
            self.events.append(event)

    # ------------------------------------------------------------------
    def _apply(
        self, node: CFGNode, state: _State, *, on_exc: bool, emit: bool = False
    ) -> _State:
        """Transfer function.

        Pure while the worklist runs; the diagnostic checks only fire in
        the post-fixpoint replay (``emit=True``) so that no event is
        ever derived from a transient pre-convergence state.
        """
        stmt = node.stmt
        if stmt is None:
            return state
        facts = self.facts[node.nid]
        out = set(state)
        # 1. Releases: resolve every held variable the statement mentions.
        if facts.release_call:
            held_in = {f[1] for f in state if f[0] == "held"}
            released_in = {f[1] for f in state if f[0] == "released"}
            for fact in list(out):
                if fact[0] in ("held", "maybe") and fact[1] in facts.mentioned:
                    out.discard(fact)
                    # A release that *raised* attempted resolution with an
                    # unknown outcome: a compensating abort afterwards is
                    # correct, not a double — record "maybe", not
                    # "released".
                    out.add(("maybe" if on_exc else "released", fact[1]))
            if emit and not facts.release_keyed:
                maybe_in = {f[1] for f in state if f[0] == "maybe"}
                for var in facts.mentioned:
                    # Second resolution: the variable was acquired in this
                    # function, some path already resolved it, and *no*
                    # path still holds it or is mid-compensation (a
                    # may-join of held|released is only a double on the
                    # released path — stay quiet).
                    if (
                        var in released_in
                        and var not in held_in
                        and var not in maybe_in
                        and ("held_ever", var) in state
                    ):
                        self._emit(
                            TypestateEvent(kind="double", line=stmt.lineno, var=var)
                        )
            if emit:
                for recv in facts.release_receivers:
                    if ("prep", recv) not in state:
                        self._emit(
                            TypestateEvent(
                                kind="order", line=stmt.lineno, receiver=recv
                            )
                        )
        # 2. Transfers: mentioned held vars handed away (quietly).
        elif facts.transfers_mentions or facts.returns_value:
            for fact in list(out):
                if fact[0] == "held" and fact[1] in facts.mentioned:
                    out.discard(fact)
        # 3. Rebinds kill tracking for the old value.
        for fact in list(out):
            if (
                fact[0] in ("held", "maybe", "released", "held_ever")
                and fact[1] in facts.rebinds
            ):
                out.discard(fact)
        # 4. Acquisition (skipped on the exception edge: it never happened).
        for recv in facts.prep_receivers:
            out.add(("prep", recv))
        if not on_exc and facts.acquires is not None:
            out.add(("held", facts.acquires, facts.acquire_line))
            out.add(("held_ever", facts.acquires))
        return frozenset(out)

    def transfer(self, node: CFGNode, state: _State) -> _State:
        return self._apply(node, state, on_exc=False)

    def transfer_exc(self, node: CFGNode, state: _State) -> _State:
        return self._apply(node, state, on_exc=True)

    def refine(self, kind: str, node: CFGNode, state: _State) -> _State:
        stmt = node.stmt
        if kind not in ("true", "false") or not isinstance(stmt, ast.If | ast.While):
            return state
        guard = _none_guard(stmt.test)
        if guard is None:
            return state
        var, none_branch = guard
        if kind != none_branch:
            return state
        # On this branch the acquire result is None: nothing was granted.
        return frozenset(
            f for f in state if not (f[0] in ("held", "held_ever") and f[1] == var)
        )


def check_function(
    func_cfg: CFG, spec: ResourceSpec
) -> list[TypestateEvent]:
    """Run the typestate checker over one function's CFG."""
    facts = {
        node.nid: _classify(node.stmt, spec)
        for node in func_cfg.stmt_nodes()
        if node.stmt is not None
    }
    # The order check only makes sense in functions that acquire at all
    # on some receiver; a pure helper that commits a hold it was handed
    # is fine.
    acquires_receivers = {
        recv for f in facts.values() for recv in f.prep_receivers
    }
    analysis = _TypestateAnalysis(spec=spec, facts=facts)
    result = solve(func_cfg, analysis)
    # Replay the diagnostic checks on the *converged* in-states — events
    # must never be derived from transient worklist iterations.
    for node in func_cfg.stmt_nodes():
        if node.stmt is not None:
            analysis._apply(
                node, result.before[node.nid], on_exc=False, emit=True
            )
    # Leak detection: held facts arriving at the exit markers.
    for exit_nid, exit_kind in (
        (func_cfg.exit, "return"),
        (func_cfg.raise_exit, "exception"),
    ):
        for fact in result.before[exit_nid]:
            if fact[0] == "held":
                analysis._emit(
                    TypestateEvent(
                        kind="leak",
                        line=int(fact[2]),
                        var=str(fact[1]),
                        acquire_line=int(fact[2]),
                        exit_kind=exit_kind,
                    )
                )
    # Discards are path-independent; emit them lexically.
    for node in func_cfg.stmt_nodes():
        if facts[node.nid].discards and node.stmt is not None:
            analysis._emit(
                TypestateEvent(kind="discard", line=node.stmt.lineno)
            )
    events = [
        e
        for e in analysis.events
        if not (e.kind == "order" and e.receiver not in acquires_receivers)
    ]
    return events


def check_tree(
    tree: ast.AST, spec: ResourceSpec
) -> list[tuple[CFG, list[TypestateEvent]]]:
    """Check every function under ``tree``; returns per-function events."""
    results: list[tuple[CFG, list[TypestateEvent]]] = []
    can_raise = spec_can_raise(spec)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
            cfg = build_cfg(node, can_raise=can_raise)
            results.append((cfg, check_function(cfg, spec)))
    return results
