"""Generic worklist dataflow solver plus two library passes.

The solver is lattice-agnostic: an :class:`Analysis` supplies the
boundary state, the join, and a per-node transfer function; the solver
iterates to a fixpoint over a :class:`~repro.analysis.flow.cfg.CFG`.
States must be immutable values with structural equality (frozensets of
tuples throughout this package) — convergence is detected by ``==``.

Edge sensitivity hooks keep the clients precise without complicating the
core loop:

- :meth:`Analysis.transfer_exc` produces the state carried by ``exc``
  edges (default: same as the normal transfer).  Typestate uses it to
  model partial execution — an acquisition that raised never happened;
- :meth:`Analysis.refine` post-filters the state on ``true``/``false``
  edges (default: identity).  Typestate uses it for ``is None`` guards.

Library passes:

- :func:`reaching_definitions` — forward may-analysis mapping each node
  to the ``(variable, defining node)`` pairs that may reach it;
- :func:`liveness` — backward may-analysis; ``before[nid]`` holds the
  variables live *out of* a node (the state flowing into it against the
  control-flow direction), ``after(nid)`` the variables live into it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from typing import Generic, TypeVar

from .cfg import CFG, EXC, CFGNode, stmt_exprs

__all__ = [
    "Analysis",
    "DataflowResult",
    "assigned_names",
    "used_names",
    "liveness",
    "reaching_definitions",
    "solve",
]

S = TypeVar("S")


class Analysis(Generic[S]):
    """One dataflow problem: lattice + transfer functions.

    ``direction`` is ``"forward"`` (states propagate entry → exit) or
    ``"backward"`` (exit → entry; ``transfer_exc``/``refine`` are not
    consulted backward — exception and branch sensitivity are forward
    notions here).
    """

    direction: str = "forward"

    def initial(self) -> S:
        """The boundary state (at ``entry`` forward, exits backward)."""
        raise NotImplementedError

    def bottom(self) -> S:
        """The least state (identity of :meth:`join`)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """State after executing ``node`` normally."""
        raise NotImplementedError

    def transfer_exc(self, node: CFGNode, state: S) -> S:
        """State carried by ``exc`` edges out of ``node``."""
        return self.transfer(node, state)

    def refine(self, kind: str, node: CFGNode, state: S) -> S:
        """Post-filter for ``true``/``false`` edges out of a branch head."""
        return state


class DataflowResult(Generic[S]):
    """Fixpoint states.

    ``before[nid]`` is the join over the edges arriving *in analysis
    direction*: the classic in-state for forward problems, the out-state
    (e.g. live-out) for backward ones.  ``after(nid)`` applies the node's
    transfer to it.
    """

    def __init__(self, cfg: CFG, analysis: Analysis[S], before: dict[int, S]) -> None:
        self.cfg = cfg
        self.analysis = analysis
        self.before = before

    def after(self, nid: int) -> S:
        """``transfer`` applied to ``before[nid]``."""
        return self.analysis.transfer(self.cfg.node(nid), self.before[nid])


def solve(cfg: CFG, analysis: Analysis[S]) -> DataflowResult[S]:
    """Run ``analysis`` over ``cfg`` to a fixpoint (worklist iteration)."""
    forward = analysis.direction == "forward"
    if forward:
        boundary = [cfg.entry]
        edges_into = cfg.preds
        edges_from = cfg.succs
    else:
        boundary = [cfg.exit, cfg.raise_exit]
        edges_into = cfg.succs
        edges_from = cfg.preds

    before: dict[int, S] = {n.nid: analysis.bottom() for n in cfg.nodes}
    for nid in boundary:
        before[nid] = analysis.initial()

    def edge_state(edge_src: int, kind: str) -> S:
        node = cfg.node(edge_src)
        state = before[edge_src]
        if node.stmt is None:
            return state  # markers are identity
        if forward and kind == EXC:
            return analysis.transfer_exc(node, state)
        out = analysis.transfer(node, state)
        if forward:
            out = analysis.refine(kind, node, out)
        return out

    work = [n.nid for n in cfg.nodes]
    while work:
        nid = work.pop()
        if nid in boundary:
            continue
        incoming = edges_into(nid)
        state = analysis.bottom()
        for edge in incoming:
            src = edge.src if forward else edge.dst
            state = analysis.join(state, edge_state(src, edge.kind))
        if state == before[nid]:
            continue
        before[nid] = state
        for edge in edges_from(nid):
            work.append(edge.dst if forward else edge.src)
    return DataflowResult(cfg, analysis, before)


# ----------------------------------------------------------------------
# Name extraction shared by the library passes
# ----------------------------------------------------------------------
def _target_names(target: ast.expr) -> Iterator[str]:
    for node in ast.walk(target):
        if isinstance(node, ast.Name):
            yield node.id


def assigned_names(stmt: ast.stmt) -> set[str]:
    """Every local name this CFG node (re)binds."""
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if isinstance(target, ast.Name | ast.Tuple | ast.List | ast.Starred):
                names.update(_target_names(target))
    elif isinstance(stmt, ast.AnnAssign | ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
    elif isinstance(stmt, ast.For | ast.AsyncFor):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, ast.With | ast.AsyncWith):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef | ast.ClassDef):
        names.add(stmt.name)
    elif isinstance(stmt, ast.Import | ast.ImportFrom):
        for alias in stmt.names:
            names.add((alias.asname or alias.name).split(".")[0])
    # Walrus targets bind wherever the expression is evaluated.
    for node in stmt_exprs(stmt):
        if isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def used_names(stmt: ast.stmt) -> set[str]:
    """Every name this CFG node reads (loads, header-only for compounds)."""
    return {
        node.id
        for node in stmt_exprs(stmt)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
    }


#: One reaching definition: ``(variable, defining node id)``.
ReachingDefs = frozenset[tuple[str, int]]


class _ReachingDefs(Analysis[ReachingDefs]):
    direction = "forward"

    def initial(self) -> ReachingDefs:
        return frozenset()

    def bottom(self) -> ReachingDefs:
        return frozenset()

    def join(self, a: ReachingDefs, b: ReachingDefs) -> ReachingDefs:
        return a | b

    def transfer(self, node: CFGNode, state: ReachingDefs) -> ReachingDefs:
        if node.stmt is None:
            return state
        defined = assigned_names(node.stmt)
        if not defined:
            return state
        kept = frozenset(pair for pair in state if pair[0] not in defined)
        return kept | frozenset((name, node.nid) for name in defined)

    def transfer_exc(self, node: CFGNode, state: ReachingDefs) -> ReachingDefs:
        # On the exception edge the assignment may or may not have
        # happened: keep both possibilities (may-analysis).
        return state | self.transfer(node, state)


def reaching_definitions(cfg: CFG) -> DataflowResult[ReachingDefs]:
    """May-reaching ``(var, def-node)`` pairs before each node."""
    return solve(cfg, _ReachingDefs())


LiveVars = frozenset[str]


class _Liveness(Analysis[LiveVars]):
    direction = "backward"

    def initial(self) -> LiveVars:
        return frozenset()

    def bottom(self) -> LiveVars:
        return frozenset()

    def join(self, a: LiveVars, b: LiveVars) -> LiveVars:
        return a | b

    def transfer(self, node: CFGNode, state: LiveVars) -> LiveVars:
        if node.stmt is None:
            return state
        return (state - frozenset(assigned_names(node.stmt))) | frozenset(
            used_names(node.stmt)
        )


def liveness(cfg: CFG) -> DataflowResult[LiveVars]:
    """Backward liveness: ``before[nid]`` = live-out, ``after(nid)`` = live-in."""
    return solve(cfg, _Liveness())
