"""The gridlint rule engine: file walking, rule dispatch, suppression, output.

The engine is deliberately small and dependency-free:

- :class:`Module` is one parsed source file (path, AST, source lines);
- :class:`Project` is the set of modules in one run — rules that need a
  whole-tree view (e.g. registry completeness) work on it;
- :class:`Rule` is the base class rules subclass: per-module checks override
  :meth:`Rule.check`, project-wide checks override :meth:`Rule.finalize`;
- :class:`Finding` is one diagnostic, carrying everything the text and JSON
  renderers need;
- ``# gridlint: disable=GL001 -- reason`` on the offending line suppresses
  a finding; the engine keeps suppressed findings (with their reason) so
  they stay auditable instead of vanishing.

Exit-code contract (enforced by the CLI and relied on by CI):
``0`` — no active findings, ``1`` — at least one active finding,
``2`` — usage error (no such path, unknown rule id).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence
from typing import Any, ClassVar

__all__ = [
    "AnalysisReport",
    "Finding",
    "Module",
    "Project",
    "Rule",
    "Suppression",
    "iter_python_files",
    "load_module",
    "run_analysis",
]

#: Rule id of the engine's own "file does not parse" diagnostic.
PARSE_ERROR_RULE = "GL000"

#: Directories never descended into by the file walker.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}

#: ``# gridlint: disable=GL001,GL002 -- optional reason`` (the reason
#: separator may be ``--`` or a parenthesised trailer).
_SUPPRESS_RE = re.compile(
    r"#\s*gridlint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*(?:--|—)\s*(?P<reason>.*?))?\s*$"
)

_RULE_ID_RE = re.compile(r"^GL\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One inline suppression comment: which rules, on which line, and why."""

    line: int
    rules: frozenset[str]
    reason: str | None

    def covers(self, rule_id: str) -> bool:
        """Does this suppression silence ``rule_id``?"""
        return rule_id in self.rules or "ALL" in self.rules


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic produced by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: str = "error"
    suppressed: bool = False
    suppress_reason: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "suppressed": self.suppressed,
            "suppress_reason": self.suppress_reason,
        }

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text output line."""
        tag = f" [suppressed: {self.suppress_reason or 'no reason given'}]" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}{tag}"


@dataclass
class Module:
    """One parsed source file handed to the per-module rules."""

    path: Path
    relpath: str  # posix-style, relative to the scan root when possible
    source: str
    tree: ast.Module
    suppressions: dict[int, Suppression] = field(default_factory=dict)
    #: Cross-rule memo (parsed CFGs, dataflow fixpoints, …) keyed by the
    #: computing client — rules sharing an expensive artefact stash it
    #: here so the walk parses and solves once, not once per rule.
    cache: dict[str, Any] = field(default_factory=dict)

    def suppression_for(self, line: int, rule_id: str) -> Suppression | None:
        """The suppression covering ``rule_id`` at ``line``, if any."""
        sup = self.suppressions.get(line)
        if sup is not None and sup.covers(rule_id):
            return sup
        return None


@dataclass
class Project:
    """Every module of one analysis run (the whole-tree view)."""

    modules: list[Module] = field(default_factory=list)

    def by_suffix(self, suffix: str) -> Iterator[Module]:
        """Modules whose relative path ends with ``suffix`` (posix form)."""
        for module in self.modules:
            if module.relpath.endswith(suffix):
                yield module


class Rule:
    """Base class for gridlint rules.

    Subclasses set the class attributes and override :meth:`check` (called
    once per module that passes :meth:`applies_to`) and/or :meth:`finalize`
    (called once per run with the whole :class:`Project`).
    """

    rule_id: ClassVar[str] = "GL999"
    title: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    #: Relative-path fragments exempt from this rule (posix style).
    allowlist: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: Module) -> bool:
        """Should :meth:`check` run on this module?  Honours ``allowlist``."""
        return not any(fragment in module.relpath for fragment in self.allowlist)

    def check(self, module: Module) -> Iterable[Finding]:
        """Per-module findings (default: none)."""
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Whole-project findings, after every module was loaded (default: none)."""
        return ()

    @property
    def doc_anchor(self) -> str:
        """Link into ``docs/ANALYSIS.md`` for this rule's section."""
        return f"docs/ANALYSIS.md#{self.rule_id.lower()}-{self.title}"

    # ------------------------------------------------------------------
    def finding(
        self, module: Module, node: ast.AST | None, message: str, *, line: int | None = None
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node`` (or ``line``)."""
        lineno = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if node is not None else 0
        return Finding(
            path=module.relpath,
            line=lineno,
            col=col,
            rule=self.rule_id,
            message=message,
            severity=self.severity,
        )


@dataclass
class AnalysisReport:
    """The outcome of one run: active and suppressed findings."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """``0`` when no active finding survived, else ``1``."""
        return 1 if self.findings else 0

    def to_json(self) -> str:
        """Stable JSON document (schema version 1) for tooling."""
        payload = {
            "version": 1,
            "tool": "gridlint",
            "files_scanned": self.files_scanned,
            "rules": self.rules_run,
            "summary": {
                "active": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": self._by_rule(),
            },
            "findings": [f.to_dict() for f in self.findings],
            "suppressed_findings": [f.to_dict() for f in self.suppressed],
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def _by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def render_text(self, *, show_suppressed: bool = False) -> str:
        """Human-readable report, one line per finding plus a summary."""
        lines = [f.render() for f in sorted(self.findings)]
        if show_suppressed:
            lines.extend(f.render() for f in sorted(self.suppressed))
        n_active, n_sup = len(self.findings), len(self.suppressed)
        lines.append(
            f"gridlint: {self.files_scanned} file(s), "
            f"{n_active} finding(s), {n_sup} suppressed"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# File walking and parsing
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Hidden directories, ``__pycache__`` and friends are skipped; the order
    is deterministic (sorted walk) so reports are reproducible.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            # Only judge components below the scan root: a repository that
            # happens to live under a hidden directory must still scan.
            rel_parts = candidate.relative_to(path).parts
            if set(rel_parts) & _SKIP_DIRS:
                continue
            if any(part.endswith(".egg-info") or part.startswith(".") for part in rel_parts):
                continue
            yield candidate


def _parse_suppressions(source: str) -> dict[int, Suppression]:
    suppressions: dict[int, Suppression] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper() for token in match.group("rules").split(",") if token.strip()
        )
        reason = match.group("reason") or None
        suppressions[lineno] = Suppression(line=lineno, rules=rules, reason=reason)
    return suppressions


#: Compound statements: a suppression on their (possibly multi-line)
#: *header* covers the header span only — never the whole body.
_COMPOUND_STMTS = (
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Match,
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
)


def _stmt_spans(tree: ast.Module) -> Iterator[tuple[int, int]]:
    """Physical-line spans over which one suppression comment applies.

    Simple statements span their full extent (a call broken over five
    lines is one statement); compound statements span only their header —
    from the ``if``/``def``/``for`` line to the line before their first
    body statement — so a trailing comment on a multi-line condition
    works without silencing the entire block.
    """
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        if isinstance(node, _COMPOUND_STMTS):
            first_body: int | None = None
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.stmt):
                    first_body = child.lineno
                    break
                if isinstance(child, ast.ExceptHandler | ast.match_case):
                    first_body = child.lineno
                    break
            end = (first_body - 1) if first_body is not None else start
        else:
            end = node.end_lineno or start
        if end > start:
            yield start, end


def _expand_suppressions(
    tree: ast.Module, suppressions: dict[int, Suppression]
) -> dict[int, Suppression]:
    """Make a suppression anywhere in a statement span cover every line.

    Rules report findings at the node that fired — for a multi-line call
    that may be any physical line of the statement, while the disable
    comment necessarily sits on just one of them.  Each line of the span
    without its own comment inherits the span's (first) suppression.
    """
    if not suppressions:
        return suppressions
    expanded = dict(suppressions)
    for start, end in _stmt_spans(tree):
        span_sup = next(
            (
                suppressions[line]
                for line in range(start, end + 1)
                if line in suppressions
            ),
            None,
        )
        if span_sup is None:
            continue
        for line in range(start, end + 1):
            expanded.setdefault(line, span_sup)
    return expanded


def _relpath(path: Path, roots: Sequence[Path]) -> str:
    resolved = path.resolve()
    for root in roots:
        try:
            rel = resolved.relative_to(root.resolve())
        except ValueError:
            continue
        prefix = root.name if root.is_dir() else ""
        return (Path(prefix) / rel).as_posix() if prefix else rel.as_posix()
    return path.as_posix()


def load_module(path: Path, roots: Sequence[Path] = ()) -> Module | Finding:
    """Parse one file into a :class:`Module`, or a GL000 parse-error finding."""
    relpath = _relpath(path, roots) if roots else path.as_posix()
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (SyntaxError, UnicodeDecodeError, OSError) as exc:
        line = getattr(exc, "lineno", None) or 1
        return Finding(
            path=relpath,
            line=int(line),
            col=0,
            rule=PARSE_ERROR_RULE,
            message=f"file does not parse: {exc}",
            severity="error",
        )
    suppressions = _expand_suppressions(tree, _parse_suppressions(source))
    return Module(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        suppressions=suppressions,
    )


# ----------------------------------------------------------------------
# The run loop
# ----------------------------------------------------------------------
def run_analysis(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    *,
    jobs: int | None = None,
) -> AnalysisReport:
    """Scan ``paths`` with ``rules`` and collect a report.

    Findings on lines carrying a matching ``# gridlint: disable=`` comment
    are moved to the report's ``suppressed`` list rather than dropped.

    ``jobs`` parallelises the read-and-parse stage over a thread pool
    (``None``/``1`` stays serial).  ``executor.map`` preserves the sorted
    walk order, so reports are byte-identical at any parallelism — each
    module is parsed once and its AST shared by every rule via
    :attr:`Module.cache`.
    """
    roots = [Path(p) for p in paths]
    report = AnalysisReport(rules_run=[rule.rule_id for rule in rules])
    project = Project()
    files = list(iter_python_files(paths))
    if jobs is not None and jobs > 1 and len(files) > 1:
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=jobs) as pool:
            loaded_modules = list(
                pool.map(lambda path: load_module(path, roots), files)
            )
    else:
        loaded_modules = [load_module(path, roots) for path in files]
    for loaded in loaded_modules:
        if isinstance(loaded, Finding):
            report.findings.append(loaded)
            report.files_scanned += 1
            continue
        project.modules.append(loaded)
        report.files_scanned += 1

    modules_by_relpath = {m.relpath: m for m in project.modules}

    def route(finding: Finding) -> None:
        module = modules_by_relpath.get(finding.path)
        sup = module.suppression_for(finding.line, finding.rule) if module else None
        if sup is not None:
            report.suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    message=finding.message,
                    severity=finding.severity,
                    suppressed=True,
                    suppress_reason=sup.reason,
                )
            )
        else:
            report.findings.append(finding)

    for rule in rules:
        for module in project.modules:
            if not rule.applies_to(module):
                continue
            for finding in rule.check(module):
                route(finding)
        for finding in rule.finalize(project):
            route(finding)

    report.findings.sort()
    report.suppressed.sort()
    return report


def validate_rule_ids(requested: Iterable[str], known: Iterable[str]) -> list[str]:
    """Normalise and validate a user-supplied rule id list (raises ValueError)."""
    known_set = set(known)
    selected: list[str] = []
    for token in requested:
        rule_id = token.strip().upper()
        if not rule_id:
            continue
        if not _RULE_ID_RE.match(rule_id) or rule_id not in known_set:
            raise ValueError(f"unknown rule id {rule_id!r}; known: {', '.join(sorted(known_set))}")
        selected.append(rule_id)
    return selected
