"""GL003 — no raw ``==``/``!=`` between time/bandwidth/volume quantities.

Times, rates and volumes are floats accumulated through arithmetic
(``sigma + volume / bw``); exact equality on them is order-of-evaluation
dependent and silently breaks admission decisions and replay snapshots.
Quantity comparisons go through the tolerance helpers in
:mod:`repro.units` (``seconds_eq`` / ``bandwidth_eq`` / ``volume_eq`` /
``close``) or :func:`repro.core.booking.deadline_tolerance`.

Detection is name-based: an operand counts as a quantity when its terminal
identifier matches the domain vocabulary below (``t0``, ``sigma``, ``bw``,
``deadline`` …, including plural container forms such as ``_times``).
Identity checks against sentinels (``is None``) and comparisons with
non-float literals are not flagged.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["FloatEqRule", "is_quantity_name"]

#: Exact identifiers that denote a time, bandwidth or volume quantity.
_QUANTITY_WORDS = {
    "t", "t0", "t1", "t_start", "t_end", "t_step", "sigma", "tau", "now",
    "start", "end", "finish", "deadline", "duration", "horizon",
    "bw", "rate", "bandwidth", "capacity", "headroom", "cap",
    "volume", "vol", "amount",
}

#: Container forms: a subscript of ``self._times`` is a time quantity.
_QUANTITY_PLURALS = {
    "times", "starts", "ends", "deadlines", "rates", "volumes",
    "durations", "breakpoints",
}

#: Suffix patterns for derived names (``cancelled_at``, ``max_rate``,
#: ``freed_volume``, ``rebook_wait_total`` …).
_QUANTITY_SUFFIX = re.compile(
    r".+(_t0|_t1|_at|_time|_times|_start|_starts|_end|_ends|_deadline|"
    r"_rate|_rates|_bw|_volume|_volumes|_duration|_capacity|_seconds)$"
)


def is_quantity_name(name: str | None) -> bool:
    """Does ``name`` read as a time/bandwidth/volume identifier?"""
    if name is None:
        return False
    bare = name.lstrip("_")
    if bare in _QUANTITY_WORDS or bare in _QUANTITY_PLURALS:
        return True
    return bool(_QUANTITY_SUFFIX.match(name))


def _is_quantity_expr(node: ast.expr) -> bool:
    return is_quantity_name(terminal_name(node))


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # Negative literals parse as UnaryOp(USub, Constant).
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_float_literal(node.operand)
    return False


class FloatEqRule(Rule):
    """Ban exact float equality between domain quantities."""

    rule_id: ClassVar[str] = "GL003"
    title: ClassVar[str] = "no-raw-float-eq"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands[:-1], operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left_q, right_q = _is_quantity_expr(left), _is_quantity_expr(right)
                if (left_q and right_q) or (
                    (left_q and _is_float_literal(right))
                    or (right_q and _is_float_literal(left))
                ):
                    names = ", ".join(
                        n for n in (terminal_name(left), terminal_name(right)) if n
                    )
                    yield self.finding(
                        module,
                        node,
                        f"raw float equality on quantity operand(s) ({names}); "
                        "use repro.units.seconds_eq/bandwidth_eq/volume_eq/close",
                    )
                    break  # one finding per comparison chain
