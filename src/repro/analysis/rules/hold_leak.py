"""GL011 — every ``prepare()`` hold must be resolved on every path.

The admission gateway runs presumed-abort two-phase commit: ``prepare``
reserves real capacity on a channel shard, and only ``commit`` /
``abort_hold`` (or an explicit ownership transfer) lets go of it.  A hold
that can reach function exit unresolved — on a normal *or* an exception
path — silently shrinks admissible throughput until the TTL sweep notices
(cf. advance-reservation admission in PAPERS.md: a leaked reservation is
capacity nobody can ever book).

Flow-sensitive: the rule walks the function's CFG (exception edges
included) with the typestate checker from
:mod:`repro.analysis.flow.typestate`.  Handing the hold away — appending
it to a result list, returning it, passing it to any callable — counts as
a transfer and ends tracking; the rule only reports holds *no* statement
did anything resolution-shaped with.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._protocol import twophase_results

__all__ = ["HoldLeakRule"]

_EXIT_DESC = {
    "return": "a normal return path",
    "exception": "an exception path",
}


class HoldLeakRule(Rule):
    """Flag ``prepare()`` results that can leak past function exit."""

    rule_id: ClassVar[str] = "GL011"
    title: ClassVar[str] = "no-hold-leak"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        for cfg, events in twophase_results(module):
            for event in events:
                if event.kind == "leak":
                    via = _EXIT_DESC.get(event.exit_kind or "", "some path")
                    yield self.finding(
                        module,
                        None,
                        f"hold {event.var!r} from prepare() can reach the end "
                        f"of {cfg.name}() via {via} without commit/abort_hold; "
                        "leaked holds pin shard capacity until the TTL sweep",
                        line=event.line,
                    )
                elif event.kind == "discard":
                    yield self.finding(
                        module,
                        None,
                        f"prepare() result discarded in {cfg.name}(); the hold "
                        "cannot be committed or aborted if nothing binds it",
                        line=event.line,
                    )
