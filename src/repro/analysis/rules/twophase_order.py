"""GL012 — 2PC verbs in protocol order, resolutions exactly once, rids fresh.

Three flavours of two-phase-commit misuse, all invisible to per-node AST
matching:

- **order** — ``commit``/``abort_hold`` issued on a channel no path has
  prepared on, inside a function that does prepare (a verb sequencing
  bug; resolving a hold the function never acquired);
- **double** — a hold resolved twice on one path without the ``key=``
  idempotency keyword: the second resolution is not replay-safe and
  double-frees capacity on the broker;
- **rid reuse** — a re-admission attempt built with ``rid=<other>.rid``.
  The rid is the broker-side idempotency key for ``(rid, side)``
  prepare records; reusing one across attempts makes the broker answer
  the retry from the *previous* attempt's recorded outcome, poisoning
  replay (every attempt must burn a fresh rid from the gateway counter).
  The malleable reshape path is the one sanctioned exception: its target
  request re-carves a *live* reservation in place — the rid never
  becomes a broker idempotency key (shaping is a read-only search and
  the re-commit is unkeyed), so ``_IN_PLACE_RESHAPERS`` names the
  functions where keeping the rid is the correct identity-preserving
  behaviour.

The first two come from the shared typestate fixpoint
(:mod:`repro.analysis.rules._protocol`); rid reuse is a reaching-
definitions query — ``rid=req.rid`` fires directly, and ``fresh = req.rid
… Request(rid=fresh)`` fires through the definition chain.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ..flow.cfg import CFG, function_cfgs, stmt_exprs
from ..flow.solver import reaching_definitions
from ._common import terminal_name
from ._protocol import twophase_results

__all__ = ["TwoPhaseOrderRule"]

#: Callables that build a (re-)admission attempt and accept ``rid=``.
_ATTEMPT_BUILDERS = frozenset({"Request", "replace"})

#: Functions that re-carve a live reservation in place (same identity,
#: new shape) — their target Request deliberately keeps the rid and never
#: crosses a keyed broker channel, so rid-reuse does not apply.
_IN_PLACE_RESHAPERS = frozenset({"_reshape_tail"})


def _rid_attribute(expr: ast.expr) -> str | None:
    """The source object's name when ``expr`` is an ``<obj>.rid`` read."""
    if isinstance(expr, ast.Attribute) and expr.attr == "rid":
        return terminal_name(expr.value) or "<expr>"
    return None


class TwoPhaseOrderRule(Rule):
    """Flag 2PC verb misordering, unkeyed doubles, and rid reuse."""

    rule_id: ClassVar[str] = "GL012"
    title: ClassVar[str] = "twophase-typestate"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        yield from self._typestate_findings(module)
        yield from self._rid_reuse_findings(module)

    # ------------------------------------------------------------------
    def _typestate_findings(self, module: Module) -> Iterator[Finding]:
        for cfg, events in twophase_results(module):
            for event in events:
                if event.kind == "order":
                    yield self.finding(
                        module,
                        None,
                        f"resolution verb on {event.receiver!r} in {cfg.name}() "
                        "with no prepare() on any incoming path — 2PC verbs "
                        "must follow prepare → commit/abort_hold order",
                        line=event.line,
                    )
                elif event.kind == "double":
                    yield self.finding(
                        module,
                        None,
                        f"hold {event.var!r} resolved twice in {cfg.name}() "
                        "without an idempotency key= — the second resolution "
                        "double-frees broker capacity and is not replay-safe",
                        line=event.line,
                    )

    # ------------------------------------------------------------------
    def _rid_reuse_findings(self, module: Module) -> Iterator[Finding]:
        if not any(builder in module.source for builder in _ATTEMPT_BUILDERS):
            return
        for cfg in function_cfgs(module.tree):
            if cfg.name in _IN_PLACE_RESHAPERS:
                continue
            reaching = None  # solved lazily: most functions have no builder
            for node in cfg.stmt_nodes():
                if node.stmt is None:
                    continue
                for call in stmt_exprs(node.stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    if terminal_name(call.func) not in _ATTEMPT_BUILDERS:
                        continue
                    for keyword in call.keywords:
                        if keyword.arg != "rid":
                            continue
                        source = _rid_attribute(keyword.value)
                        if source is None and isinstance(keyword.value, ast.Name):
                            if reaching is None:
                                reaching = reaching_definitions(cfg)
                            source = self._via_defs(
                                cfg, reaching.before[node.nid], keyword.value.id
                            )
                        if source is not None:
                            yield self.finding(
                                module,
                                call,
                                f"re-admission attempt reuses rid from "
                                f"{source}.rid in {cfg.name}(); every attempt "
                                "must burn a fresh rid or (rid, side) "
                                "idempotency records poison the retry",
                            )

    @staticmethod
    def _via_defs(
        cfg: CFG, defs: frozenset[tuple[str, int]], name: str
    ) -> str | None:
        """Does some reaching definition of ``name`` read an ``.rid``?"""
        for var, def_nid in defs:
            if var != name:
                continue
            stmt = cfg.node(def_nid).stmt
            if isinstance(stmt, ast.Assign | ast.AnnAssign) and stmt.value is not None:
                source = _rid_attribute(stmt.value)
                if source is not None:
                    return source
        return None
