"""GL005 — every Scheduler subclass is reachable through the registry.

The CLI, experiment configs and benchmarks construct schedulers by name
via :func:`repro.schedulers.registry.make_scheduler`; a subclass missing
from the registry silently drops out of sweeps and comparisons (the
experiment "runs" with a stale scheduler set instead of failing).

The rule is project-wide: it collects every class in a ``schedulers/``
directory whose base list names ``Scheduler`` (excluding the abstract base
itself in ``base.py``), then checks each class name is referenced somewhere
in that directory's ``registry.py``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Project, Rule

__all__ = ["RegistryCompletenessRule"]


def _scheduler_classes(module: Module) -> Iterable[ast.ClassDef]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for base in node.bases:
            name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", None)
            if name == "Scheduler":
                yield node
                break


def _referenced_names(module: Module) -> set[str]:
    return {node.id for node in ast.walk(module.tree) if isinstance(node, ast.Name)}


class RegistryCompletenessRule(Rule):
    """Flag Scheduler subclasses absent from their registry module."""

    rule_id: ClassVar[str] = "GL005"
    title: ClassVar[str] = "registry-completeness"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def finalize(self, project: Project) -> Iterable[Finding]:
        # Group modules by their schedulers/ directory so fixture trees and
        # the real package are handled identically.
        groups: dict[str, list[Module]] = {}
        for module in project.modules:
            if not self.applies_to(module):
                continue
            path = module.relpath
            marker = "schedulers/"
            idx = path.rfind(marker)
            if idx < 0:
                continue
            groups.setdefault(path[: idx + len(marker)], []).append(module)
        for prefix, modules in groups.items():
            registry = next(
                (m for m in modules if m.relpath == prefix + "registry.py"), None
            )
            if registry is None:
                continue  # no registry in this tree: nothing to be complete against
            registered = _referenced_names(registry)
            for module in modules:
                if module is registry or module.relpath.endswith("/base.py"):
                    continue
                for cls in _scheduler_classes(module):
                    if cls.name in registered:
                        continue
                    yield self.finding(
                        module,
                        cls,
                        f"Scheduler subclass {cls.name} is not referenced in "
                        f"{prefix}registry.py; register a factory for it so "
                        "name-based construction (CLI, sweeps) can reach it",
                    )
