"""GL001 — no wall-clock reads in deterministic code.

Journal replay (:meth:`repro.control.service.ReservationService.replay`)
rebuilds a service from recorded operations; any ambient time source —
``time.time()``, ``datetime.now()``, ``perf_counter()`` — makes the rebuilt
state diverge from the original.  Simulated time always arrives as an
explicit ``now``/``t`` argument.  Real-clock timing is legitimate only in
reporting and benchmarking, which the allowlist exempts.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import ImportTracker

__all__ = ["WallClockRule"]

#: Qualified callables that read the host clock.
_BANNED = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.today",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}


class WallClockRule(Rule):
    """Ban host-clock reads outside reporting/benchmark code."""

    rule_id: ClassVar[str] = "GL001"
    title: ClassVar[str] = "no-wall-clock"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = (
        "experiments/report_gen.py",
        "benchmarks/",
        "tests/",
        # The injectable benchmark clock: the one module allowed to wrap
        # time.perf_counter().  Everything else must take simulated time
        # as an argument (or a PerfClock instance).
        "obs/perfclock.py",
        # The flight recorder: its ring rows are keyed to simulated time,
        # but a saved post-mortem dump may stamp host metadata (when the
        # artifact was written) without touching replayed state.
        "obs/recorder.py",
        # The service plane's wall↔sim seam: WallServiceClock maps
        # time.monotonic() onto the gateway's time axis.  Every other
        # serve module takes a ServiceClock — the deterministic
        # LogicalClock drives the same code in tests and equivalence
        # suites.
        "serve/clock.py",
    )

    def check(self, module: Module) -> Iterable[Finding]:
        tracker = ImportTracker()
        tracker.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = tracker.resolve(node.func)
            if origin in _BANNED:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read {origin}() breaks replay determinism; "
                    "take simulated time as an explicit argument",
                )
