"""GL006 — objects handed to ``journal.append`` are frozen from then on.

The journal is a write-ahead log: replay assumes each entry's arguments
still describe the operation exactly as it was applied.  Mutating an
object *after* it was passed to ``journal.append(...)`` (or the service's
``_record`` wrapper) makes the in-memory history diverge from the
serialised one — the recovered service replays arguments the original
never saw.

Within each function body the rule tracks the names passed (positionally,
by keyword, or inside list/tuple/dict/set literals) to a journal append
and flags any later statement that mutates them: attribute or subscript
assignment, augmented assignment, ``del``, or a call of a known mutating
method (``append``, ``update``, ``sort`` …).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import dotted_name

__all__ = ["JournalSafetyRule"]

#: Method names whose call mutates the receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "pop", "remove", "clear", "sort",
    "reverse", "add", "discard", "update", "setdefault", "popitem",
}


def _is_journal_append(call: ast.Call) -> bool:
    """``<...>journal.append(...)``, ``<...>_journal.append(...)`` or ``<...>._record(...)``."""
    dotted = dotted_name(call.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if parts[-1] == "append" and len(parts) >= 2 and "journal" in parts[-2].lower():
        return True
    return parts[-1] == "_record"


def _argument_names(call: ast.Call) -> Iterator[str]:
    values: list[ast.expr] = list(call.args)
    values.extend(kw.value for kw in call.keywords)
    for value in values:
        for node in ast.walk(value):
            if isinstance(node, ast.Name):
                yield node.id


def _mutations(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """(mutated name, offending node) pairs found inside ``node``."""
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        if isinstance(sub, ast.Assign):
            targets = list(sub.targets)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets = [sub.target]
        elif isinstance(sub, ast.Delete):
            targets = list(sub.targets)
        elif isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
                root = func.value
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name):
                    yield root.id, sub
            continue
        for target in targets:
            # Only writes *through* a name mutate the object it refers to;
            # rebinding the bare name (x = ...) is fine.
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                root = target
                while isinstance(root, (ast.Attribute, ast.Subscript)):
                    root = root.value
                if isinstance(root, ast.Name):
                    yield root.id, sub


class JournalSafetyRule(Rule):
    """Flag post-append mutation of journaled arguments."""

    rule_id: ClassVar[str] = "GL006"
    title: ClassVar[str] = "journal-safety"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "control/journal.py")

    def check(self, module: Module) -> Iterable[Finding]:
        for func in ast.walk(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            journaled: dict[str, int] = {}  # name -> line it was journaled on
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and _is_journal_append(node):
                    for name in _argument_names(node):
                        journaled.setdefault(name, node.lineno)
            if not journaled:
                continue
            for name, node in _mutations(func):
                recorded_at = journaled.get(name)
                if recorded_at is None or node.lineno <= recorded_at:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"{name} is mutated after being journaled on line "
                    f"{recorded_at}; replay would see different arguments — "
                    "journal a snapshot or mutate before appending",
                )
