"""The two-phase admission protocol as a typestate spec, shared by GL011/GL012.

One :class:`~repro.analysis.flow.typestate.ResourceSpec` describes the
gateway's hold lifecycle: ``prepare`` acquires a hold, ``commit`` /
``abort_hold`` resolve it, and a ``key=`` keyword marks the resolution
idempotent (answered from the broker's recorded-result table on replay).

Both rules need the same per-function typestate fixpoints, so the results
are memoised on :attr:`repro.analysis.engine.Module.cache` — the solver
runs once per module regardless of how many rules consume it.
"""

from __future__ import annotations

import ast

from ..engine import Module
from ..flow.cfg import CFG, build_cfg
from ..flow.typestate import (
    ResourceSpec,
    TypestateEvent,
    check_function,
    spec_can_raise,
)

__all__ = ["TWO_PHASE_SPEC", "twophase_results"]

#: The gateway's hold lifecycle (see ``docs/GATEWAY.md``): holds granted
#: by ``prepare`` must reach ``commit`` or ``abort_hold`` on every path.
TWO_PHASE_SPEC = ResourceSpec(
    acquire=frozenset({"prepare"}),
    release=frozenset({"commit", "abort_hold"}),
    idempotent_kwarg="key",
)

_CACHE_KEY = "twophase_results"


def twophase_results(module: Module) -> list[tuple[CFG, list[TypestateEvent]]]:
    """Typestate events for every function of ``module`` (memoised)."""
    cached = module.cache.get(_CACHE_KEY)
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    results: list[tuple[CFG, list[TypestateEvent]]] = []
    # Cheap pre-filter: a module that never utters an acquire verb cannot
    # produce events, and most modules do not.
    if any(verb in module.source for verb in TWO_PHASE_SPEC.acquire):
        can_raise = spec_can_raise(TWO_PHASE_SPEC)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
                cfg = build_cfg(node, can_raise=can_raise)
                events = check_function(cfg, TWO_PHASE_SPEC)
                if events:
                    results.append((cfg, events))
    module.cache[_CACHE_KEY] = results
    return results
