"""GL009 — capacity-profile internals stay inside the kernel package.

The capacity kernel (:mod:`repro.core.capacity`) is the one place that
stores per-port bandwidth profiles; both backends keep their state in
``_breakpoints`` / ``_values`` pairs.  Everything above the kernel talks
to the :class:`~repro.core.capacity.CapacityProfile` interface — range
add, range max/min, integral, segment iteration.  Code that reaches into
the arrays directly (``timeline._values[i] += bw``) silently bypasses
coalescing and the peak/suffix caches, and breaks the moment the default
backend flips from the breakpoint list to the vectorized one.  Likewise,
constructing a concrete backend by name (``BreakpointProfile()``) pins a
caller to one representation; profiles come from
:func:`~repro.core.capacity.make_profile` (or ``CapacityProfile()``,
which dispatches) so backend selection stays a configuration decision.

The same single-owner discipline covers the malleable-transfer kernel:
:class:`~repro.core.profile.RateProfile` keeps its normalized segment
tuple in ``_segments``, and everything outside :mod:`repro.core` reads it
through ``.segments`` / ``to_list()`` and derives new shapes through the
surgery verbs — raw access would skip :meth:`RateProfile.normalize` and
its volume-conservation guarantees.

The rule flags, outside each attribute's owning package:

- any attribute access (read *or* write) named ``_breakpoints`` or
  ``_values`` (owner ``repro/core/capacity/``) or ``_segments``
  (owner ``repro/core/``);
- any direct call of ``BreakpointProfile`` / ``VectorProfile``.

Ownership is by path fragment, mirroring GL004/GL008, so fixture trees
that mirror the layout exercise the rule too.  Tests and benchmarks are
allowlisted: backend-equivalence suites construct both backends on
purpose.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["TimelineInternalsRule"]

#: Kernel-private attribute → path fragment of its owning package.
_INTERNAL_ATTRS: dict[str, str] = {
    "_breakpoints": "core/capacity/",
    "_values": "core/capacity/",
    # RateProfile's normalized segment tuple: owned by repro.core as a
    # whole (profile surgery and the booking/ledger kernels live there).
    "_segments": "core/",
}

#: Concrete backend classes that must not be constructed directly.
_BACKEND_CLASSES = ("BreakpointProfile", "VectorProfile")

#: Path fragment owning the capacity backends (the kernel package itself).
_OWNER_FRAGMENT = "core/capacity/"


def _call_name(func: ast.expr) -> str | None:
    """The terminal name of a call target: ``m.VectorProfile`` → that."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class TimelineInternalsRule(Rule):
    """Flag access to capacity-profile internals outside the kernel."""

    rule_id: ClassVar[str] = "GL009"
    title: ClassVar[str] = "timeline-internals"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in _INTERNAL_ATTRS:
                fragment = _INTERNAL_ATTRS[node.attr]
                if fragment in module.relpath:
                    continue
                owner = terminal_name(node.value)
                yield self.finding(
                    module,
                    node,
                    f"access to {owner or '<expr>'}.{node.attr} outside "
                    f"{fragment} bypasses the owning kernel's interface; "
                    "use add/max_usage/segments/... instead",
                )
            elif isinstance(node, ast.Call) and _OWNER_FRAGMENT not in module.relpath:
                name = _call_name(node.func)
                if name in _BACKEND_CLASSES:
                    yield self.finding(
                        module,
                        node,
                        f"direct construction of {name} pins the caller to "
                        "one backend; build profiles via make_profile() or "
                        "CapacityProfile()",
                    )
