"""GL009 — capacity-profile internals stay inside the kernel package.

The capacity kernel (:mod:`repro.core.capacity`) is the one place that
stores per-port bandwidth profiles; both backends keep their state in
``_breakpoints`` / ``_values`` pairs.  Everything above the kernel talks
to the :class:`~repro.core.capacity.CapacityProfile` interface — range
add, range max/min, integral, segment iteration.  Code that reaches into
the arrays directly (``timeline._values[i] += bw``) silently bypasses
coalescing and the peak/suffix caches, and breaks the moment the default
backend flips from the breakpoint list to the vectorized one.  Likewise,
constructing a concrete backend by name (``BreakpointProfile()``) pins a
caller to one representation; profiles come from
:func:`~repro.core.capacity.make_profile` (or ``CapacityProfile()``,
which dispatches) so backend selection stays a configuration decision.

The rule flags, outside ``repro/core/capacity/``:

- any attribute access (read *or* write) named ``_breakpoints`` or
  ``_values``;
- any direct call of ``BreakpointProfile`` / ``VectorProfile``.

Ownership is by path fragment, mirroring GL004/GL008, so fixture trees
that mirror the layout exercise the rule too.  Tests and benchmarks are
allowlisted: backend-equivalence suites construct both backends on
purpose.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["TimelineInternalsRule"]

#: The kernel-private array attributes GL009 guards.
_INTERNAL_ATTRS = ("_breakpoints", "_values")

#: Concrete backend classes that must not be constructed directly.
_BACKEND_CLASSES = ("BreakpointProfile", "VectorProfile")

#: Path fragment owning the internals (the kernel package itself).
_OWNER_FRAGMENT = "core/capacity/"


def _call_name(func: ast.expr) -> str | None:
    """The terminal name of a call target: ``m.VectorProfile`` → that."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


class TimelineInternalsRule(Rule):
    """Flag access to capacity-profile internals outside the kernel."""

    rule_id: ClassVar[str] = "GL009"
    title: ClassVar[str] = "timeline-internals"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        if _OWNER_FRAGMENT in module.relpath:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in _INTERNAL_ATTRS:
                owner = terminal_name(node.value)
                yield self.finding(
                    module,
                    node,
                    f"access to {owner or '<expr>'}.{node.attr} outside "
                    f"{_OWNER_FRAGMENT} bypasses the CapacityProfile "
                    "interface; use add/max_usage/segments/... instead",
                )
            elif isinstance(node, ast.Call):
                name = _call_name(node.func)
                if name in _BACKEND_CLASSES:
                    yield self.finding(
                        module,
                        node,
                        f"direct construction of {name} pins the caller to "
                        "one backend; build profiles via make_profile() or "
                        "CapacityProfile()",
                    )
