"""GL004 — ledger and reservation internals are written only by their owners.

Every capacity decision must flow through :class:`repro.core.ledger.PortLedger`
(allocate/release/degrade) and the booking helpers of
:mod:`repro.core.booking`; reservation lifecycle stamps are the
:class:`repro.control.service.ReservationService`'s to set.  An out-of-band
write — ``ledger._ingress[i] = ...``, ``reservation.cancelled_at = t`` from
a scheduler — bypasses the Eq. 1 capacity checks and desynchronises journal
replay from reality.

The rule flags assignments (plain, augmented, or subscripted) to the known
internal attributes outside their owning modules.  Ownership is by path
suffix, so fixture trees mirroring the layout exercise the rule too.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["LedgerEncapsulationRule"]

#: attribute → path suffixes of the modules allowed to write it.
_PROTECTED: dict[str, tuple[str, ...]] = {
    # PortLedger usage/reduction timelines (slots of repro.core.ledger).
    "_ingress": ("core/ledger.py", "core/booking.py"),
    "_egress": ("core/ledger.py", "core/booking.py"),
    "_ingress_red": ("core/ledger.py", "core/booking.py"),
    "_egress_red": ("core/ledger.py", "core/booking.py"),
    # Reservation lifecycle stamps (owned by the admission front-ends:
    # the monolithic service and the sharded gateway facade).
    "cancelled_at": ("control/service.py", "gateway/gateway.py"),
    "aborted_at": ("control/service.py", "gateway/gateway.py"),
    "displaced_at": ("control/service.py", "gateway/gateway.py"),
    # Capacity-kernel query caches (slots of the profile backends; the
    # array internals themselves are GL009's to guard).
    "_peak": ("core/capacity/",),
    "_suffix": ("core/capacity/",),
    "_rmq": ("core/capacity/",),
    # RateProfile's normalized segment tuple (slot of repro.core.profile).
    # Stepwise profiles are immutable by construction; a write from above
    # the core skips normalize() and breaks volume conservation — callers
    # use the surgery verbs (shift/head_until/tail_from/concat) instead.
    "_segments": ("core/",),
}


def _assignment_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


class LedgerEncapsulationRule(Rule):
    """Flag out-of-band writes to PortLedger/Reservation internals."""

    rule_id: ClassVar[str] = "GL004"
    title: ClassVar[str] = "ledger-encapsulation"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            for target in _assignment_targets(node):
                # Unwrap subscript writes: ledger._ingress[i] = tl.
                inner = target.value if isinstance(target, ast.Subscript) else target
                if not isinstance(inner, ast.Attribute):
                    continue
                attr = inner.attr
                owners = _PROTECTED.get(attr)
                if owners is None:
                    continue
                # Owner suffixes ending in "/" own a whole package.
                if any(
                    suffix in module.relpath if suffix.endswith("/")
                    else module.relpath.endswith(suffix)
                    for suffix in owners
                ):
                    continue
                # Class-body definitions (dataclass fields) are declarations,
                # not writes on a foreign object.
                owner_name = terminal_name(inner.value)
                yield self.finding(
                    module,
                    node,
                    f"write to {owner_name or '<expr>'}.{attr} outside "
                    f"{' / '.join(owners)} bypasses the capacity/lifecycle "
                    "invariants; go through the owning API",
                )
