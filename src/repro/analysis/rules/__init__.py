"""The gridlint rule catalogue.

Each module defines one rule class; :func:`all_rules` instantiates the full
set in id order.  ``docs/ANALYSIS.md`` documents every rule with the
replay/admission invariant it protects.
"""

from __future__ import annotations

from ..engine import Rule
from .wall_clock import WallClockRule
from .rng import UnseededRngRule
from .float_eq import FloatEqRule
from .encapsulation import LedgerEncapsulationRule
from .registry_complete import RegistryCompletenessRule
from .journal_safety import JournalSafetyRule
from .asserts import NoAssertRule
from .shard_ledger import ShardLedgerRule
from .timeline_internals import TimelineInternalsRule
from .channel_boundary import ChannelBoundaryRule
from .hold_leak import HoldLeakRule
from .twophase_order import TwoPhaseOrderRule
from .nondet_taint import NondetTaintRule
from .shard_aliasing import ShardAliasingRule
from .route_registry import RouteRegistryRule

__all__ = ["all_rules", "default_rules", "rules_by_id"]

_RULE_CLASSES: tuple[type[Rule], ...] = (
    WallClockRule,
    UnseededRngRule,
    FloatEqRule,
    LedgerEncapsulationRule,
    RegistryCompletenessRule,
    JournalSafetyRule,
    NoAssertRule,
    ShardLedgerRule,
    TimelineInternalsRule,
    ChannelBoundaryRule,
    HoldLeakRule,
    TwoPhaseOrderRule,
    NondetTaintRule,
    ShardAliasingRule,
    RouteRegistryRule,
)


def all_rules() -> list[Rule]:
    """One instance of every rule, sorted by rule id."""
    return sorted((cls() for cls in _RULE_CLASSES), key=lambda r: r.rule_id)


def default_rules() -> list[Rule]:
    """The rules enabled by default (currently: all of them)."""
    return all_rules()


def rules_by_id() -> dict[str, Rule]:
    """Map ``rule_id`` → instance for CLI selection."""
    return {rule.rule_id: rule for rule in all_rules()}
