"""Shared AST helpers for the gridlint rules."""

from __future__ import annotations

import ast

__all__ = ["dotted_name", "ImportTracker", "terminal_name"]


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> str | None:
    """The last identifier of a Name/Attribute/Subscript chain.

    ``t1`` → ``t1``; ``self.t_end`` → ``t_end``; ``self._times[i]`` →
    ``_times`` (subscripts report the container's name).  Calls and
    literals have no terminal name.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return terminal_name(node.value)
    return None


class ImportTracker(ast.NodeVisitor):
    """Resolve local names back to the modules/objects they were imported as.

    After visiting a tree, ``aliases`` maps every bound import name to its
    fully qualified origin: ``import numpy as np`` → ``{"np": "numpy"}``,
    ``from time import perf_counter as pc`` → ``{"pc": "time.perf_counter"}``.
    """

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports never bind the stdlib modules the rules
            # care about; ignore them.
            self.generic_visit(node)
            return
        for alias in node.names:
            self.aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def resolve(self, node: ast.expr) -> str | None:
        """Qualified origin of a Name/Attribute chain, if import-rooted.

        ``np.random.default_rng`` → ``numpy.random.default_rng`` when
        ``np`` aliases ``numpy``; plain local names resolve through
        from-imports; unknown roots return the dotted chain unchanged.
        """
        dotted = dotted_name(node)
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        origin = self.aliases.get(root)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin
