"""GL013 — no nondeterministic value may *flow into* journaled state.

GL001/GL002 ban calling wall-clock and ambient-RNG functions at all in
deterministic code; this rule is their dataflow upgrade for the places
the call itself is legal but the *value* must not travel: anything
appended to the journal, recorded via the gateway's ``_record`` helper,
or baked into a ``RejectReason`` is replayed byte-for-byte, so a value
derived from ``time.time()`` or an unseeded draw — even through
arithmetic, f-strings or a local ``_now()`` wrapper — makes the replayed
gateway diverge from the original.

Powered by :class:`repro.analysis.flow.taint.ModuleTaint`: an
intraprocedural taint fixpoint per function plus a one-level call-summary
table, so ``def _stamp(): return time.time()`` followed by
``journal.append(op, t=_stamp())`` is caught without whole-program
analysis.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ..flow.cfg import build_cfg, stmt_exprs
from ..flow.taint import ModuleTaint
from ._common import ImportTracker, terminal_name
from .rng import _ALLOWED as _RNG_ALLOWED
from .rng import _MODULE_PREFIXES as _RNG_PREFIXES
from .wall_clock import _BANNED as _CLOCK_SOURCES

__all__ = ["NondetTaintRule"]

#: Textual pre-filter: a module with none of these cannot have a sink.
_SINK_TOKENS = ("journal", "_record", "RejectReason", "recorder", "SloBreach")


def _source_of(origin: str | None) -> str | None:
    """Taint label for a resolved callable origin, or ``None``."""
    if origin is None:
        return None
    if origin in _CLOCK_SOURCES:
        return origin
    if origin in _RNG_ALLOWED:
        return None
    if origin.startswith(_RNG_PREFIXES):
        return origin
    return None


def _sink_name(call: ast.Call) -> str | None:
    """The replayed-state sink this call writes to, if any."""
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "append":
        receiver = terminal_name(func.value)
        if receiver in ("journal", "_journal"):
            return "journal.append"
    if isinstance(func, ast.Attribute) and func.attr == "record":
        # Flight-recorder rows feed post-mortem dumps that must be
        # byte-identical across reruns of one seeded drill.
        receiver = terminal_name(func.value)
        if receiver in ("recorder", "_recorder", "flight_recorder"):
            return "recorder.record"
    name = terminal_name(func)
    if name == "_record":
        return "_record"
    if name == "RejectReason":
        return "RejectReason"
    if name == "SloBreach":
        # Breach events land in artifacts and the chaos-matrix verdicts.
        return "SloBreach"
    return None


class NondetTaintRule(Rule):
    """Flag wall-clock / ambient-RNG values flowing into replayed state."""

    rule_id: ClassVar[str] = "GL013"
    title: ClassVar[str] = "no-nondet-flow"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = (
        "experiments/report_gen.py",
        "benchmarks/",
        "tests/",
        "obs/perfclock.py",
    )

    def check(self, module: Module) -> Iterable[Finding]:
        if not any(token in module.source for token in _SINK_TOKENS):
            return
        tracker = ImportTracker()
        tracker.visit(module.tree)
        taint = ModuleTaint(module.tree, tracker, _source_of)
        for func in ast.walk(module.tree):
            if not isinstance(func, ast.FunctionDef | ast.AsyncFunctionDef):
                continue
            cfg = build_cfg(func)
            result = taint.analyze(cfg)
            for node in cfg.stmt_nodes():
                if node.stmt is None:
                    continue
                state = result.before[node.nid]
                for call in stmt_exprs(node.stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    sink = _sink_name(call)
                    if sink is None:
                        continue
                    labels: set[str] = set()
                    args: list[ast.expr] = list(call.args)
                    args.extend(kw.value for kw in call.keywords)
                    for arg in args:
                        labels |= taint.taint_of(arg, state)
                    if labels:
                        origin = ", ".join(sorted(labels))
                        yield self.finding(
                            module,
                            call,
                            f"value derived from {origin} flows into {sink} in "
                            f"{cfg.name}(); journaled/decision state must be "
                            "deterministic under replay",
                        )
