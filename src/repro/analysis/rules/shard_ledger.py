"""GL008 — a shard-owned ledger is mutated only by its broker.

The gateway's no-overcommit guarantee rests on single-writer ownership:
each :class:`repro.gateway.broker.ShardBroker` is the *only* writer of
its ledger slice (``_owned_ledger``) and its two-phase hold table
(``_holds``); everyone else — the coordinator, the facade, benchmarks —
goes through the broker's public surface (``book_pair`` / ``prepare`` /
``commit`` / ``abort_hold`` / ``release`` / ``degrade``), where ownership
is asserted and the headroom cache invalidated.  An out-of-band write —
``broker._owned_ledger.allocate(...)`` from a scheduler, or replacing
``broker._holds`` wholesale — books capacity no admission check ever saw
and desynchronises crash replay.

The rule flags, outside the broker module (and, for hold bookkeeping,
the two-phase commit path):

- assignments (plain, augmented, subscripted) to ``_owned_ledger`` or
  ``_holds`` attributes;
- mutating calls (``allocate`` / ``release`` / ``degrade`` / ``add`` /
  dict mutators) on an attribute chain passing through either.

Ownership is by path suffix, mirroring GL004, so fixture trees that
mirror the layout exercise the rule too.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["ShardLedgerRule"]

#: The broker-private state GL008 guards.
_GUARDED = ("_owned_ledger", "_holds")

#: Modules allowed to touch it (path suffixes).
_OWNERS: tuple[str, ...] = ("gateway/broker.py", "gateway/twophase.py")

#: Method names that mutate a ledger/timeline or a hold table.
_MUTATORS = frozenset(
    {
        "allocate",
        "allocate_segments",
        "release",
        "release_segments",
        "restore",
        "degrade",
        "add",
        "add_batch",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
    }
)


def _assignment_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _chain_guarded(node: ast.expr) -> str | None:
    """The guarded attribute an access chain passes through, if any.

    ``broker._owned_ledger.allocate`` → ``_owned_ledger``;
    ``self._holds[hold_id]`` → ``_holds``; plain locals → ``None``.
    """
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            if current.attr in _GUARDED:
                return current.attr
            current = current.value
        elif isinstance(current, (ast.Subscript, ast.Call)):
            current = current.value if isinstance(current, ast.Subscript) else current.func
        else:
            return None


class ShardLedgerRule(Rule):
    """Flag out-of-band mutation of a shard broker's owned state."""

    rule_id: ClassVar[str] = "GL008"
    title: ClassVar[str] = "shard-ledger-ownership"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def check(self, module: Module) -> Iterable[Finding]:
        if any(module.relpath.endswith(suffix) for suffix in _OWNERS):
            return
        for node in ast.walk(module.tree):
            for target in _assignment_targets(node):
                guarded = _chain_guarded(target)
                if guarded is None:
                    continue
                owner = terminal_name(
                    target.value if isinstance(target, ast.Subscript) else target
                )
                yield self.finding(
                    module,
                    node,
                    f"assignment through {owner or '<expr>'} touches the "
                    f"broker-private {guarded}; only {' / '.join(_OWNERS)} may "
                    "mutate a shard's owned state — go through the broker API",
                )
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr not in _MUTATORS:
                    continue
                guarded = _chain_guarded(node.func.value)
                if guarded is None:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"call {node.func.attr}() mutates the broker-private "
                    f"{guarded}; only {' / '.join(_OWNERS)} may mutate a "
                    "shard's owned state — go through the broker API",
                )
