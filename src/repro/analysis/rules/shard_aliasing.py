"""GL014 — broker-owned mutable state must not escape its shard.

The ROADMAP's process-per-shard item only works if each shard broker is
the *sole* writer of its ledger, hold table and headroom caches (the
GL008 single-writer discipline, upgraded to aliasing).  A method that
returns ``self._holds`` itself, stores it on another object, or passes
it to an external callable hands out a mutable alias: a second shard —
or, post-multiprocess, a second interpreter — can then mutate state the
owner believes is private, and the two copies silently diverge.

Scope: classes on the shard plane — name contains ``Broker``, ``Shard``,
``Gateway`` or ``Coordinator``.  Sim/obs/core infrastructure is
single-interpreter by design and shares containers freely; the aliasing
discipline only binds where state is slated to cross a process boundary.
Within a scoped class, every attribute ``__init__`` binds to a mutable
container literal or constructor (``{}``, ``[]``, ``dict()``,
``defaultdict(...)``, …) is owned.  Reads stay quiet — ``self._holds[k]``,
``self._holds.items()``, ``k in self._holds``, borrow-only stdlib calls
(``heappush(self._heap, …)``, ``zip(self.brokers, …)``) and eager-copy
escapes (``dict(self._holds)``, ``sorted(self._booked)``) are how state
is *supposed* to be touched or leave the shard.  Only genuine alias
handoffs fire:

- ``return self._holds`` / ``yield self._holds`` (bare, or inside a
  tuple/list/dict literal) — the caller now holds the live container;
- ``other.attr = self._holds`` / ``registry[k] = self._holds`` — stored
  outside the owner;
- ``external(self._holds)`` — passed, uncopied, to a callable that is
  neither an eager copy builtin nor a method on ``self``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import terminal_name

__all__ = ["ShardAliasingRule"]

#: Constructors whose call in ``__init__`` marks an attribute as owned
#: mutable state.
_MUTABLE_CTORS = frozenset(
    {"dict", "list", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Class-name fragments marking the shard plane — the classes whose state
#: must survive a move to process-per-shard (ROADMAP).
_SHARD_CLASS_MARKERS = ("Broker", "Shard", "Gateway", "Coordinator")

#: Callables that eagerly copy (or merely measure) their argument — the
#: sanctioned ways owned state crosses the shard boundary.
_COPY_BUILTINS = frozenset(
    {
        "dict",
        "list",
        "set",
        "tuple",
        "sorted",
        "frozenset",
        "len",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "bool",
        "str",
        "repr",
        "copy",
        "deepcopy",
        "Counter",
    }
)

#: Stdlib callables that *borrow* their argument for the duration of the
#: call without retaining a reference — in-place heap/bisect operations
#: run by the owner, and lazy iterators consumed locally.
_BORROW_ONLY = frozenset(
    {
        "heappush",
        "heappop",
        "heapify",
        "heapreplace",
        "heappushpop",
        "bisect",
        "bisect_left",
        "bisect_right",
        "insort",
        "insort_left",
        "insort_right",
        "zip",
        "map",
        "filter",
        "iter",
        "next",
        "enumerate",
        "reversed",
        "chain",
        "join",
        "isinstance",
    }
)

#: Expression wrappers traversal looks *through* on the way to a verdict
#: (putting the alias in a tuple does not copy it).
_TRANSPARENT = (ast.Tuple, ast.List, ast.Set, ast.Dict, ast.Starred, ast.IfExp)


def _is_mutable_init(value: ast.expr) -> bool:
    if isinstance(value, ast.Dict | ast.List | ast.Set):
        return True
    if isinstance(value, ast.ListComp | ast.SetComp | ast.DictComp):
        return True
    if isinstance(value, ast.Call):
        return terminal_name(value.func) in _MUTABLE_CTORS
    return False


def _owned_attrs(cls: ast.ClassDef) -> set[str]:
    """Attributes ``__init__`` binds to fresh mutable containers."""
    owned: set[str] = set()
    for stmt in cls.body:
        if not (isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__"):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign | ast.AnnAssign):
                continue
            value = node.value
            if value is None or not _is_mutable_init(value):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    owned.add(target.attr)
    return owned


def _is_self_call(func: ast.expr) -> bool:
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "self"
    )


def _stores_outside_self(stmt: ast.Assign) -> bool:
    for target in stmt.targets:
        for node in ast.walk(target):
            if isinstance(node, ast.Attribute | ast.Subscript):
                base = node.value
                if not (isinstance(base, ast.Name) and base.id == "self"):
                    return True
    return False


class ShardAliasingRule(Rule):
    """Flag mutable broker-owned state escaping the owning shard."""

    rule_id: ClassVar[str] = "GL014"
    title: ClassVar[str] = "shard-owned-no-alias"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(module.tree):
            for child in ast.iter_child_nodes(parent):
                parents[child] = parent
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef) and any(
                marker in cls.name for marker in _SHARD_CLASS_MARKERS
            ):
                owned = _owned_attrs(cls)
                if owned:
                    yield from self._check_class(module, cls, owned, parents)

    # ------------------------------------------------------------------
    def _check_class(
        self,
        module: Module,
        cls: ast.ClassDef,
        owned: set[str],
        parents: dict[ast.AST, ast.AST],
    ) -> Iterator[Finding]:
        for node in ast.walk(cls):
            if not (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and node.attr in owned
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                continue
            verdict = self._escape_of(node, parents)
            if verdict is not None:
                yield self.finding(
                    module,
                    node,
                    f"owned mutable state self.{node.attr} of {cls.name} "
                    f"{verdict}; hand out an eager copy (dict()/sorted()) — "
                    "a live alias breaks single-writer shard ownership",
                )

    @staticmethod
    def _escape_of(
        node: ast.Attribute, parents: dict[ast.AST, ast.AST]
    ) -> str | None:
        """How ``self.<attr>`` escapes here, or ``None`` when it does not."""
        child: ast.AST = node
        while True:
            parent = parents.get(child)
            if parent is None:
                return None
            # Read-throughs: self.x[k], self.x.items(), k in self.x, …
            if isinstance(parent, ast.Attribute | ast.Subscript):
                return None
            if isinstance(parent, ast.Call):
                if child is parent.func:
                    return None
                name = terminal_name(parent.func)
                if (
                    name in _COPY_BUILTINS
                    or name in _BORROW_ONLY
                    or _is_self_call(parent.func)
                ):
                    return None
                return f"is passed uncopied to {name or 'a callable'}()"
            if isinstance(parent, ast.Return):
                return "is returned as a live alias"
            if isinstance(parent, ast.Yield | ast.YieldFrom):
                return "is yielded as a live alias"
            if isinstance(parent, ast.Assign):
                if child is not parent.value and child not in parent.targets:
                    # Part of a target chain already handled as read-through.
                    return None
                if child is parent.value and _stores_outside_self(parent):
                    return "is stored outside the owning object"
                return None
            if isinstance(parent, _TRANSPARENT) or isinstance(parent, ast.keyword):
                child = parent
                continue
            # Comparisons, boolean tests, iteration headers, arithmetic,
            # f-strings: reads that derive new values — not aliases.
            return None
