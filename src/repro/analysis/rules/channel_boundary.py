"""GL010 — broker protocol calls go through the chaos channel.

The chaos plane (:mod:`repro.gateway.rpc`) only means something if every
coordinator↔broker protocol delivery actually crosses it: a direct
``broker.prepare(...)`` / ``broker.commit(...)`` from orchestration code
is a message that can never be dropped, duplicated, delayed or
partitioned — chaos drills then certify a path production admission does
not take, and the idempotency keys the channel supplies are silently
missing, so a replayed delivery double-books.

The rule flags, outside the gateway's own protocol internals (the
broker, the coordinator, the channel — by path suffix, mirroring
GL004/GL008), any call whose method is one of the two-phase protocol
verbs (``prepare`` / ``commit`` / ``abort_hold`` / ``book_pair``) on an
access chain with broker evidence: a name or attribute containing
``broker`` (``broker.prepare(...)``, ``self._brokers[i].commit(...)``,
``gateway.brokers[s].book_pair(...)``).  Route the call through
:class:`repro.gateway.rpc.Channel` instead — or, for genuinely local
tooling, suppress with ``# gridlint: disable=GL010 -- <reason>``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule

__all__ = ["ChannelBoundaryRule"]

#: The two-phase protocol verbs the channel must mediate.
_PROTOCOL = frozenset({"prepare", "commit", "abort_hold", "book_pair"})

#: Modules allowed to speak the protocol directly (path suffixes).
_OWNERS: tuple[str, ...] = (
    "gateway/broker.py",
    "gateway/twophase.py",
    "gateway/rpc.py",
)


def _broker_evidence(node: ast.expr) -> str | None:
    """The broker-ish identifier an access chain passes through, if any.

    ``broker.prepare`` → ``broker``; ``self._brokers[i].commit`` →
    ``_brokers``; ``channel.prepare`` → ``None`` (channels are the point).
    """
    current: ast.expr = node
    while True:
        if isinstance(current, ast.Attribute):
            if "broker" in current.attr.lower():
                return current.attr
            current = current.value
        elif isinstance(current, ast.Name):
            return current.id if "broker" in current.id.lower() else None
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            return None


class ChannelBoundaryRule(Rule):
    """Flag two-phase protocol calls that bypass the chaos channel."""

    rule_id: ClassVar[str] = "GL010"
    title: ClassVar[str] = "channel-boundary"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/")

    def check(self, module: Module) -> Iterable[Finding]:
        if any(module.relpath.endswith(suffix) for suffix in _OWNERS):
            return
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in _PROTOCOL:
                continue
            evidence = _broker_evidence(node.func.value)
            if evidence is None:
                continue
            yield self.finding(
                module,
                node,
                f"direct {node.func.attr}() on {evidence} bypasses the chaos "
                "channel; outside the gateway protocol internals "
                f"({' / '.join(_OWNERS)}) broker protocol messages must go "
                "through repro.gateway.rpc.Channel so fault injection and "
                "idempotent delivery apply",
            )
