"""GL002 — no ambient (module-level, unseeded) RNG state.

Admission decisions and fault drills must be reproducible from a seed:
``random.random()`` and ``np.random.uniform()`` draw from hidden global
state that journal replay cannot restore.  Randomness enters through an
injected ``random.Random(seed)`` or ``np.random.default_rng(seed)``
instance, threaded down from the experiment configuration.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule
from ._common import ImportTracker

__all__ = ["UnseededRngRule"]

#: Constructors of explicit, seedable RNG objects — always allowed.
_ALLOWED = {
    "random.Random",
    "random.SystemRandom",  # crypto-grade, not used for simulation draws
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
}

_MODULE_PREFIXES = ("random.", "numpy.random.")


class UnseededRngRule(Rule):
    """Ban draws from the module-level ``random``/``np.random`` state."""

    rule_id: ClassVar[str] = "GL002"
    title: ClassVar[str] = "no-unseeded-rng"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def check(self, module: Module) -> Iterable[Finding]:
        tracker = ImportTracker()
        tracker.visit(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = tracker.resolve(node.func)
            if origin is None or origin in _ALLOWED:
                continue
            if any(origin.startswith(prefix) for prefix in _MODULE_PREFIXES):
                yield self.finding(
                    module,
                    node,
                    f"{origin}() draws from hidden global RNG state; inject a "
                    "seeded random.Random / np.random.default_rng instead",
                )
