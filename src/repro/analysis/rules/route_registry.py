"""GL015 — every service endpoint handler is reachable through the route table.

The service plane (``repro.serve``) declares its public API in one
registry, ``serve/routes.py``; handlers themselves live one module per
resource under ``serve/api/``.  A ``handle_*`` coroutine that the route
table forgets is not an error anywhere else — the module imports, the
tests that call the handler directly pass — but over HTTP the endpoint
silently 404s.  This is GL005's registry-completeness argument applied
to the HTTP surface: name-based reachability must be checked, not
assumed.

Project-wide: collect every function whose name starts with ``handle_``
defined in a module under a ``serve/api/`` tree, then require each name
to be referenced in that tree's ``serve/routes.py``.  Fixture trees and
the real package group independently (same mechanism as GL005).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Project, Rule

__all__ = ["RouteRegistryRule"]

_MARKER = "serve/api/"


def _handler_defs(module: Module) -> Iterable[ast.AST]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node.name.startswith(
            "handle_"
        ):
            yield node


def _referenced_names(module: Module) -> set[str]:
    names = {node.id for node in ast.walk(module.tree) if isinstance(node, ast.Name)}
    # ``from .api... import handle_x`` references count too (the table
    # imports handlers before binding them).
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
    return names


class RouteRegistryRule(Rule):
    """Flag ``handle_*`` endpoint coroutines absent from the route table."""

    rule_id: ClassVar[str] = "GL015"
    title: ClassVar[str] = "route-registry"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/",)

    def finalize(self, project: Project) -> Iterable[Finding]:
        # Group endpoint modules by their serve/ tree so rule fixtures and
        # the real package are handled identically.
        groups: dict[str, list[Module]] = {}
        for module in project.modules:
            if not self.applies_to(module):
                continue
            idx = module.relpath.rfind(_MARKER)
            if idx < 0:
                continue
            prefix = module.relpath[: idx + len("serve/")]  # "...serve/"
            groups.setdefault(prefix, []).append(module)
        for prefix, modules in groups.items():
            registry = next(
                (
                    m
                    for m in project.modules
                    if m.relpath == prefix + "routes.py"
                ),
                None,
            )
            if registry is None:
                # No route table in this tree: every handler is unreachable.
                for module in modules:
                    for node in _handler_defs(module):
                        yield self.finding(
                            module,
                            node,
                            f"endpoint handler {getattr(node, 'name', '?')} has no "
                            f"route table ({prefix}routes.py is missing)",
                        )
                continue
            registered = _referenced_names(registry)
            for module in modules:
                for node in _handler_defs(module):
                    name = getattr(node, "name", "?")
                    if name in registered:
                        continue
                    yield self.finding(
                        module,
                        node,
                        f"endpoint handler {name} is not referenced in "
                        f"{prefix}routes.py; an unrouted handler silently 404s "
                        "over HTTP — bind it in ROUTE_TABLE",
                    )
