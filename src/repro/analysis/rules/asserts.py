"""GL007 — no ``assert`` for runtime invariants in library code.

``python -O`` strips assert statements, so an invariant guarded by one
simply stops being checked in optimised deployments — the worst possible
failure mode for capacity accounting.  Library code raises
:class:`repro.core.errors.InternalInvariantError` (or a more specific
:class:`~repro.core.errors.ReproError`) instead; tests keep using
``assert`` freely, which is why the rule allowlists them.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from typing import ClassVar

from ..engine import Finding, Module, Rule

__all__ = ["NoAssertRule"]


class NoAssertRule(Rule):
    """Ban ``assert`` statements outside tests/benchmarks."""

    rule_id: ClassVar[str] = "GL007"
    title: ClassVar[str] = "no-assert"
    severity: ClassVar[str] = "error"
    allowlist: ClassVar[tuple[str, ...]] = ("tests/", "benchmarks/", "conftest.py")

    def check(self, module: Module) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    module,
                    node,
                    "assert vanishes under python -O; raise "
                    "repro.core.errors.InternalInvariantError (or a specific "
                    "ReproError) for runtime invariants",
                )
