"""Committed-baseline diff mode (`--baseline analysis_baseline.json`).

A baseline is a committed snapshot of the findings a tree is *known* to
carry: CI fails only on findings that are not in it, so a new rule can
land with its legacy debt recorded and ratcheted down over time, while
every suppression stays visible in the diff.

Findings are keyed by ``path::rule::message`` with an occurrence count —
deliberately **not** by line number, so unrelated edits that shift code
do not invalidate the baseline, while a genuinely new instance of a
baselined finding (count exceeded) still fails.  Matched findings are
moved to the report's suppressed list with the reason ``baselined`` so
text/JSON/SARIF output keeps them auditable.
"""

from __future__ import annotations

import json
from pathlib import Path

from .engine import AnalysisReport, Finding

__all__ = ["apply_baseline", "baseline_counts", "load_baseline", "write_baseline"]

_VERSION = 1


def _key(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule}::{finding.message}"


def baseline_counts(report: AnalysisReport) -> dict[str, int]:
    """Occurrence counts of the report's *active* findings, by key."""
    counts: dict[str, int] = {}
    for finding in report.findings:
        key = _key(finding)
        counts[key] = counts.get(key, 0) + 1
    return counts


def write_baseline(path: str | Path, report: AnalysisReport) -> None:
    """Snapshot ``report``'s active findings as the new baseline."""
    payload = {
        "version": _VERSION,
        "tool": "gridlint",
        "entries": dict(sorted(baseline_counts(report).items())),
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load_baseline(path: str | Path) -> dict[str, int]:
    """Read a baseline file back into key → count form.

    Raises ``ValueError`` on a malformed document (wrong version, wrong
    shapes) so CI fails loudly instead of silently gating on nothing.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise ValueError(f"unsupported baseline document: {path}")
    entries = raw.get("entries")
    if not isinstance(entries, dict) or not all(
        isinstance(k, str) and isinstance(v, int) and v > 0
        for k, v in entries.items()
    ):
        raise ValueError(f"malformed baseline entries: {path}")
    return dict(entries)


def apply_baseline(report: AnalysisReport, baseline: dict[str, int]) -> None:
    """Suppress (in place) findings the baseline already accounts for.

    Each key silences at most its recorded count: occurrence N+1 of a
    baselined finding is *new* debt and stays active.
    """
    remaining = dict(baseline)
    still_active: list[Finding] = []
    for finding in report.findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            report.suppressed.append(
                Finding(
                    path=finding.path,
                    line=finding.line,
                    col=finding.col,
                    rule=finding.rule,
                    message=finding.message,
                    severity=finding.severity,
                    suppressed=True,
                    suppress_reason="baselined",
                )
            )
        else:
            still_active.append(finding)
    report.findings[:] = still_active
    report.suppressed.sort()
