"""Command-line interface: regenerate any experiment from the terminal.

Examples::

    grid-bandwidth list
    grid-bandwidth run fig5 --requests 800 --seeds 0 1
    grid-bandwidth run fig4 --csv fig4.csv
    grid-bandwidth schedule --scheduler window --t-step 400 --gap 2 --requests 500
    grid-bandwidth claims
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .core import verify_schedule
from .experiments import FIGURES
from .metrics import evaluate
from .schedulers import available_schedulers, make_scheduler
from .workload import paper_flexible_workload, paper_rigid_workload

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="grid-bandwidth",
        description="Reproduction of 'Optimal Bandwidth Sharing in Grid Environments' (HPDC 2006)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and schedulers")

    run = sub.add_parser("run", help="regenerate a paper figure / experiment")
    run.add_argument("experiment", choices=sorted(FIGURES))
    run.add_argument("--requests", type=int, default=None, help="workload size per run")
    run.add_argument("--seeds", type=int, nargs="+", default=None, help="replication seeds")
    run.add_argument("--csv", type=str, default=None, help="also write the table as CSV")
    run.add_argument("--no-chart", action="store_true", help="suppress the ASCII chart")

    claims = sub.add_parser("claims", help="check the §5.3 in-text claims")
    claims.add_argument("--requests", type=int, default=1000)
    claims.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])

    schedule = sub.add_parser("schedule", help="run one scheduler on a paper workload")
    schedule.add_argument("--scheduler", choices=available_schedulers(), default="window")
    schedule.add_argument("--policy", type=str, default=None, help="'min-bw' or an f value")
    schedule.add_argument("--t-step", type=float, default=400.0)
    schedule.add_argument("--gap", type=float, default=2.0, help="mean inter-arrival (flexible)")
    schedule.add_argument("--load", type=float, default=4.0, help="target load (rigid)")
    schedule.add_argument("--requests", type=int, default=500)
    schedule.add_argument("--seed", type=int, default=0)

    gantt = sub.add_parser("gantt", help="render a schedule as an ASCII Gantt chart")
    gantt.add_argument("--scheduler", choices=available_schedulers(), default="window")
    gantt.add_argument("--gap", type=float, default=5.0)
    gantt.add_argument("--requests", type=int, default=25)
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--rows", type=int, default=25)
    gantt.add_argument("--occupancy", action="store_true", help="also show port occupancy strips")

    plan = sub.add_parser("plan", help="capacity needed for a target accept rate")
    plan.add_argument("--target", type=float, default=0.9)
    plan.add_argument("--gap", type=float, default=2.0)
    plan.add_argument("--requests", type=int, default=300)
    plan.add_argument("--seeds", type=int, nargs="+", default=[0, 1])

    report = sub.add_parser("report", help="regenerate every experiment's artefacts")
    report.add_argument("--out", type=str, default="results")
    report.add_argument("--only", type=str, nargs="+", default=None)

    compare = sub.add_parser("compare", help="statistically compare two schedulers")
    compare.add_argument("a", choices=available_schedulers())
    compare.add_argument("b", choices=available_schedulers())
    compare.add_argument("--gap", type=float, default=0.5)
    compare.add_argument("--requests", type=int, default=400)
    compare.add_argument("--seeds", type=int, nargs="+", default=list(range(5)))
    return parser


def _cmd_list() -> int:
    print("experiments:")
    for name, fn in sorted(FIGURES.items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:16s} {doc}")
    print("schedulers:")
    for name in available_schedulers():
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    fn = FIGURES[args.experiment]
    kwargs = {}
    if args.requests is not None:
        kwargs["n_requests"] = args.requests
    if args.seeds is not None:
        kwargs["seeds"] = tuple(args.seeds)
    table, chart = fn(**kwargs)
    print(table.to_text())
    if chart and not args.no_chart:
        print()
        print(chart)
    if args.csv:
        table.save_csv(args.csv)
        print(f"\nwrote {args.csv}")
    return 0


def _cmd_claims(args: argparse.Namespace) -> int:
    table, _ = FIGURES["claims"](n_requests=args.requests, seeds=tuple(args.seeds))
    print(table.to_text())
    return 0 if all(row[-1] == "yes" for row in table.rows) else 1


def _cmd_schedule(args: argparse.Namespace) -> int:
    options = {}
    rigid_names = {"fcfs-rigid", "fifo-slots", "cumulated-slots", "minbw-slots", "minvol-slots"}
    if args.scheduler in {"greedy", "window"} and args.policy is not None:
        try:
            options["policy"] = float(args.policy)
        except ValueError:
            options["policy"] = args.policy
    if args.scheduler == "window":
        options["t_step"] = args.t_step
    scheduler = make_scheduler(args.scheduler, **options)

    if args.scheduler in rigid_names:
        problem = paper_rigid_workload(args.load, args.requests, seed=args.seed)
    else:
        problem = paper_flexible_workload(args.gap, args.requests, seed=args.seed)
    result = scheduler.schedule(problem)
    verify_schedule(problem.platform, problem.requests, result)
    report = evaluate(problem, result)
    print(f"scheduler:            {result.scheduler}")
    print(f"requests:             {report.num_requests}")
    print(f"accept rate:          {report.accept_rate:.2%}")
    print(f"utilisation (time-averaged): {report.utilization_time_averaged:.2%}")
    for f, rate in sorted(report.guaranteed.items()):
        print(f"guaranteed(f={f:g}):    {rate:.2%}")
    print(f"mean wait:            {report.mean_wait:.1f}s")
    print(f"mean granted/MaxRate: {report.mean_granted_over_max:.2f}")
    print("schedule verified against Eq. 1")
    return 0


def _cmd_gantt(args: argparse.Namespace) -> int:
    from .experiments import occupancy_strip, schedule_gantt

    scheduler = make_scheduler(args.scheduler, **({"t_step": 200.0} if args.scheduler == "window" else {}))
    problem = paper_flexible_workload(args.gap, args.requests, seed=args.seed)
    result = scheduler.schedule(problem)
    print(schedule_gantt(problem, result, max_rows=args.rows))
    if args.occupancy:
        print()
        print(occupancy_strip(problem, result, side="ingress"))
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    import numpy as np

    from .core import Platform
    from .experiments import capacity_for_accept_rate
    from .schedulers import GreedyFlexible
    from .workload import FlexibleWorkload, PoissonArrivals

    base = Platform.paper_platform()

    def make_problem(platform, seed):
        workload = FlexibleWorkload(platform, PoissonArrivals(args.gap))
        return workload.generate(args.requests, np.random.default_rng(seed))

    try:
        result = capacity_for_accept_rate(
            base,
            make_problem,
            GreedyFlexible(),
            target=args.target,
            seeds=tuple(args.seeds),
        )
    except ValueError as exc:
        print(f"planning failed: {exc}")
        return 1
    print(f"target accept rate: {args.target:.0%} at mean inter-arrival {args.gap:g}s")
    print(f"capacity scale:     x{result.scale:.2f} over the 10x10 @ 1 GB/s baseline")
    print(f"achieved:           {result.accept_rate:.1%} ({result.evaluations} evaluations)")
    print(f"per-port capacity:  {result.platform.bin(0):.0f} MB/s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .experiments import compare_schedulers

    comparison = compare_schedulers(
        lambda seed: paper_flexible_workload(args.gap, args.requests, seed=seed),
        make_scheduler(args.a),
        make_scheduler(args.b),
        seeds=tuple(args.seeds),
    )
    print(f"{comparison.name_a}: accept {comparison.mean_a:.3f}")
    print(f"{comparison.name_b}: accept {comparison.mean_b:.3f}")
    lo, hi = comparison.diff_ci
    print(f"paired difference: {comparison.mean_diff:+.3f}  (95% CI [{lo:+.3f}, {hi:+.3f}])")
    print(f"p-value: {comparison.p_value:.4f}")
    if comparison.winner:
        print(f"significant winner: {comparison.winner}")
    else:
        print("no significant difference at 5%")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "claims":
        return _cmd_claims(args)
    if args.command == "schedule":
        return _cmd_schedule(args)
    if args.command == "gantt":
        return _cmd_gantt(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        from .experiments import generate_all

        try:
            timings = generate_all(args.out, only=args.only, progress=print)
        except KeyError as exc:
            print(exc)
            return 1
        print(f"wrote {len(timings)} experiments to {args.out}/")
        return 0
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
