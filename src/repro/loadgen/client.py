"""A minimal keep-alive HTTP/1.1 client on asyncio streams.

The load harness cannot pull in an HTTP library (stdlib-only repo), and
``http.client`` is blocking — so this is the mirror image of
:mod:`repro.serve.http`: request rendering and response parsing over
``asyncio.StreamReader``/``StreamWriter``, pipelining-free, one in-flight
request per connection, reconnecting once on a dropped socket.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ReproError

__all__ = ["ClientResponse", "ServiceClient"]

#: Hard ceiling on response bodies (the service's own bodies are small;
#: a runaway read means a framing bug, not a big payload).
MAX_RESPONSE_BYTES = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """The server's response could not be framed."""


@dataclass(slots=True)
class ClientResponse:
    """One parsed response: status line, headers, decoded body."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The body decoded as JSON (raises on non-JSON)."""
        return json.loads(self.body.decode("utf-8"))

    @property
    def retry_after(self) -> float | None:
        raw = self.headers.get("retry-after")
        if raw is None:
            return None
        try:
            return float(raw)
        except ValueError:
            return None


class ServiceClient:
    """One client identity holding one keep-alive connection."""

    def __init__(self, host: str, port: int, *, api_key: str | None = None) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self.requests_sent = 0
        self.reconnects = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = None
            self._writer = None

    def _render(self, method: str, path: str, payload: Any | None) -> bytes:
        body = b""
        if payload is not None:
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            "Connection: keep-alive",
            f"Content-Length: {len(body)}",
        ]
        if payload is not None:
            lines.append("Content-Type: application/json")
        if self.api_key is not None:
            lines.append(f"Authorization: Bearer {self.api_key}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + body

    async def request(
        self, method: str, path: str, *, payload: Any | None = None
    ) -> ClientResponse:
        """Issue one request; transparently reconnects once on a dead socket."""
        raw = self._render(method, path, payload)
        try:
            return await self._roundtrip(raw)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            # The server may close an idle keep-alive connection between
            # our requests; one reconnect covers that race.
            self.reconnects += 1
            await self.close()
            await self.connect()
            return await self._roundtrip(raw)

    async def _roundtrip(self, raw: bytes) -> ClientResponse:
        if self._reader is None or self._writer is None:
            await self.connect()
        reader, writer = self._reader, self._writer
        if reader is None or writer is None:  # pragma: no cover - connect() raises first
            raise ProtocolError("connection not established")
        writer.write(raw)
        await writer.drain()
        self.requests_sent += 1
        return await self._read_response(reader)

    async def _read_response(self, reader: asyncio.StreamReader) -> ClientResponse:
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode("iso-8859-1").split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ProtocolError(f"malformed status line: {lines[0]!r}")
        status = int(parts[1])
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        if length < 0 or length > MAX_RESPONSE_BYTES:
            raise ProtocolError(f"unreasonable content-length {length}")
        body = await reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        return ClientResponse(status=status, headers=headers, body=body)
