"""``grid-loadgen`` — drive a running service and write the artifact.

Targets an already-running ``grid-serve`` (see ``examples/serve_tour.py``
and ``benchmarks/bench_serve.py`` for in-process harnesses).  The
artifact is schema-validated before it hits disk, and the summary line
carries the numbers the CI smoke gates on.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path

from ..core.platform import Platform
from .runner import LoadgenConfig, run_load

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grid-loadgen",
        description="Closed-loop load harness for the grid-serve admission service.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--clients", type=int, default=64)
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument(
        "--target", type=int, default=10_000, help="total submissions (0 = duration-bound)"
    )
    parser.add_argument(
        "--duration", type=float, default=0.0, help="wall-seconds budget (0 = target-bound)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode", default="closed", choices=["closed", "paced"])
    parser.add_argument("--shape", default="poisson", choices=["poisson", "uniform", "sinusoid"])
    parser.add_argument("--mean-interarrival", type=float, default=1.0)
    parser.add_argument(
        "--ports", type=int, default=16, help="service platform's port count (plan shaping)"
    )
    parser.add_argument(
        "--capacity", type=float, default=1000.0, help="service platform's per-port capacity"
    )
    parser.add_argument("--paper-platform", action="store_true")
    parser.add_argument("--status-every", type=int, default=0)
    parser.add_argument("--cancel-every", type=int, default=0)
    parser.add_argument(
        "--keys",
        type=Path,
        default=None,
        help="JSON file mapping API key -> client id (keys are dealt to clients)",
    )
    parser.add_argument("--out", type=Path, default=None, help="artifact path (default stdout)")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    platform = (
        Platform.paper_platform()
        if args.paper_platform
        else Platform.uniform(args.ports, args.ports, args.capacity)
    )
    api_keys: list[str] = []
    if args.keys is not None:
        api_keys = sorted(json.loads(args.keys.read_text()))
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        clients=args.clients,
        batch=args.batch,
        target_submissions=args.target,
        duration_s=args.duration,
        seed=args.seed,
        mode=args.mode,
        shape=args.shape,
        mean_interarrival=args.mean_interarrival,
        status_every=args.status_every,
        cancel_every=args.cancel_every,
        api_keys=api_keys,
    )
    report = asyncio.run(run_load(config, platform=platform))
    doc = report.to_dict()
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(text + "\n")
    else:
        print(text)
    latency = doc["latency"]
    print(
        f"loadgen: {doc['submits']} submits in {doc['wall_seconds']:.2f}s "
        f"({doc['submits_per_second']:.0f}/s), accept {doc['accept_rate']:.3f}, "
        f"p50 {latency['p50'] * 1e3:.2f}ms p99 {latency['p99'] * 1e3:.2f}ms "
        f"p999 {latency['p999'] * 1e3:.2f}ms",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
