"""The client fleet: concurrent seeded clients driving one service.

Two pacing modes:

- ``closed`` — every client loops back-to-back: submit a batch, await
  the decisions, submit the next.  Throughput is whatever the service
  sustains; this is the mode the ≥100k-submission CI smoke uses.
- ``paced`` — clients sleep until each submission's planned arrival
  instant (scaled by ``timescale``), approximating an open system; a
  client that falls behind stops sleeping (bounded backlog, not an
  unbounded queue).

Latency accounting: each submission's recorded latency is the wall
round-trip of the HTTP request that carried it (batch submissions share
their POST's round trip — that *is* the admission latency a batched
client observes).  Timing goes through an injectable
:class:`~repro.obs.perfclock.PerfClock`; nothing here reads the host
clock directly (GL001).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError, ReproError
from ..obs.perfclock import PerfClock, WallClock
from .client import ServiceClient
from .plan import SubmissionPlan
from .report import LoadReport

__all__ = ["LoadgenConfig", "run_load"]


@dataclass
class LoadgenConfig:
    """One load run, fully specified (replayable given the same service)."""

    host: str
    port: int
    clients: int = 8
    #: Submissions per POST; 1 = the single-submit endpoint.
    batch: int = 16
    #: Stop after this many submissions fleet-wide (0 = duration-bound only).
    target_submissions: int = 1_000
    #: Stop after this many wall seconds (0 = target-bound only).
    duration_s: float = 0.0
    seed: int = 0
    mode: str = "closed"
    shape: str = "poisson"
    mean_interarrival: float = 1.0
    #: Plan positions pre-drawn; the fleet cycles if it outruns the plan.
    plan_size: int = 0
    #: ``paced`` mode: planned seconds per wall second.
    timescale: float = 1.0
    #: Issue a status GET for every Nth decided reservation (0 = off).
    status_every: int = 0
    #: Cancel every Nth accepted reservation (0 = off).
    cancel_every: int = 0
    #: API keys handed round-robin to clients (empty = anonymous).
    api_keys: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.clients <= 0:
            raise ConfigurationError(f"need a positive client count, got {self.clients}")
        if self.batch <= 0:
            raise ConfigurationError(f"need a positive batch size, got {self.batch}")
        if self.mode not in ("closed", "paced"):
            raise ConfigurationError(f"unknown mode {self.mode!r}")
        if self.target_submissions <= 0 and self.duration_s <= 0:
            raise ConfigurationError("need a submission target or a duration bound")
        if self.timescale <= 0:
            raise ConfigurationError(f"timescale must be positive, got {self.timescale}")


class _Budget:
    """Fleet-wide stop condition: submission target and/or wall deadline."""

    def __init__(self, config: LoadgenConfig, perf: PerfClock) -> None:
        self._remaining = (
            config.target_submissions if config.target_submissions > 0 else None
        )
        self._perf = perf
        self._deadline = (
            perf.now() + config.duration_s if config.duration_s > 0 else None
        )

    def take(self, want: int) -> int:
        """Claim up to ``want`` submissions; 0 means the run is over."""
        if self._deadline is not None and self._perf.now() >= self._deadline:
            return 0
        if self._remaining is None:
            return want
        granted = min(want, self._remaining)
        self._remaining -= granted
        return granted


async def _run_client(
    index: int,
    config: LoadgenConfig,
    plan: SubmissionPlan,
    budget: _Budget,
    perf: PerfClock,
) -> LoadReport:
    report = LoadReport(seed=config.seed, clients=config.clients, mode=config.mode)
    key = (
        config.api_keys[index % len(config.api_keys)] if config.api_keys else None
    )
    client = ServiceClient(config.host, config.port, api_key=key)
    await client.connect()
    position = index  # stride-addressed plan walk (see SubmissionPlan)
    pace_origin = perf.now()
    try:
        while True:
            granted = budget.take(config.batch)
            if granted == 0:
                break
            bodies = [plan.body(position + k * config.clients) for k in range(granted)]
            position += granted * config.clients
            if config.mode == "paced":
                # Sleep until the first body's planned arrival; a late
                # client just proceeds (no queue of missed arrivals).
                due = pace_origin + bodies[0]["at"] / config.timescale
                delay = due - perf.now()
                if delay > 0:
                    await asyncio.sleep(delay)
            await _submit(client, config, bodies, report, perf)
            await _auxiliary_reads(client, config, report, perf)
    finally:
        await client.close()
    return report


async def _submit(
    client: ServiceClient,
    config: LoadgenConfig,
    bodies: list[dict[str, Any]],
    report: LoadReport,
    perf: PerfClock,
) -> None:
    single = config.batch == 1
    endpoint = "/v1/reservations" if single else "/v1/reservations/batch"
    payload: Any = bodies[0] if single else {"submissions": bodies}
    start = perf.now()
    try:
        response = await client.request("POST", endpoint, payload=payload)
    except (ReproError, OSError, asyncio.IncompleteReadError):
        report.transport_errors += 1
        return
    elapsed = max(0.0, perf.now() - start)
    report.endpoint_requests[endpoint] += 1
    if response.status == 429:
        report.quota_refused += len(bodies)
        retry = response.retry_after
        if retry is not None and retry > 0:
            await asyncio.sleep(min(retry, 0.05))
        return
    if response.status >= 400:
        report.http_errors += 1
        return
    decisions = (
        [response.json()] if single else response.json().get("decisions", [])
    )
    for decision in decisions:
        outcome = decision.get("outcome")
        if outcome == "invalid":
            # Refused at the service edge (stale window, bad fields) —
            # never reached the gateway, so not an admission sample.
            report.invalid += 1
            continue
        report.submits += 1
        report.submit_latencies.append(elapsed)
        if outcome == "accepted":
            report.accepted += 1
            rid = decision.get("rid")
            if rid is not None:
                report.last_accepted_rid = rid
        elif outcome == "rejected":
            report.rejected += 1
            reason = decision.get("reason")
            if reason:
                report.reject_reasons[str(reason)] += 1
        elif outcome == "edge-refused":
            report.edge_refused += 1


async def _auxiliary_reads(
    client: ServiceClient,
    config: LoadgenConfig,
    report: LoadReport,
    perf: PerfClock,
) -> None:
    """Optional status/cancel traffic so reads share the measured load."""
    rid = report.last_accepted_rid
    if rid is None:
        return
    if config.status_every > 0 and report.submits % config.status_every == 0:
        try:
            await client.request("GET", f"/v1/reservations/{rid}")
            report.endpoint_requests["/v1/reservations/{rid}"] += 1
        except (ReproError, OSError, asyncio.IncompleteReadError):
            report.transport_errors += 1
    if config.cancel_every > 0 and report.accepted % config.cancel_every == 0:
        try:
            await client.request("DELETE", f"/v1/reservations/{rid}")
            report.endpoint_requests["DELETE /v1/reservations/{rid}"] += 1
        except (ReproError, OSError, asyncio.IncompleteReadError):
            report.transport_errors += 1


async def run_load(
    config: LoadgenConfig,
    *,
    platform: Any,
    plan: SubmissionPlan | None = None,
    perf: PerfClock | None = None,
) -> LoadReport:
    """Drive the fleet; returns the merged fleet-wide report.

    ``platform`` shapes the default plan (port indices and capacities
    must match the service's); pass an explicit ``plan`` to override.
    """
    perf = perf if perf is not None else WallClock()
    if plan is None:
        size = config.plan_size
        if size <= 0:
            size = max(config.target_submissions, config.clients * config.batch * 4, 1024)
        plan = SubmissionPlan(
            platform,
            size,
            seed=config.seed,
            shape=config.shape,
            mean_interarrival=config.mean_interarrival,
        )
    budget = _Budget(config, perf)
    started = perf.now()
    reports = await asyncio.gather(
        *(
            _run_client(i, config, plan, budget, perf)
            for i in range(config.clients)
        )
    )
    merged = LoadReport(seed=config.seed, clients=config.clients, mode=config.mode)
    for report in reports:
        merged.merge(report)
    merged.wall_seconds = max(0.0, perf.now() - started)
    return merged
