"""``repro.loadgen`` — a closed-loop async load harness for ``repro.serve``.

Thousands of seeded clients drive the admission service over real
sockets and report wall-clock admission latency percentiles
(p50/p99/p999), accept rate, reject-reason mix, and per-endpoint
throughput as a schema-validated JSON artifact.

Layout mirrors the service it exercises:

- :mod:`~repro.loadgen.client` — a keep-alive HTTP/1.1 client on raw
  asyncio streams (no new dependencies);
- :mod:`~repro.loadgen.plan` — submission bodies drawn from the
  :mod:`repro.workload` distributions (seeded, replayable);
- :mod:`~repro.loadgen.runner` — the client fleet, pacing, and the
  latency recorder;
- :mod:`~repro.loadgen.report` — the artifact schema and percentile
  arithmetic;
- :mod:`~repro.loadgen.cli` — the ``grid-loadgen`` entry point.

Host-clock reads stay out of this package: latency timing goes through
the injectable :class:`repro.obs.perfclock.PerfClock` (GL001's existing
benchmark exemption), so tests can drive the whole harness with a
deterministic :class:`~repro.obs.perfclock.TickClock`.
"""

from .client import ClientResponse, ServiceClient
from .plan import SubmissionPlan
from .report import LOADGEN_SCHEMA, LatencySummary, LoadReport, percentile
from .runner import LoadgenConfig, run_load

__all__ = [
    "LOADGEN_SCHEMA",
    "ClientResponse",
    "LatencySummary",
    "LoadReport",
    "LoadgenConfig",
    "ServiceClient",
    "SubmissionPlan",
    "percentile",
    "run_load",
]
