"""Seeded submission plans drawn from the :mod:`repro.workload` families.

The harness reuses the paper's workload machinery wholesale — arrival
processes, volume/duration distributions, port-pair selectors — so a
load run exercises the service with the *same* statistical shape as the
simulation experiments, and two runs with the same seed submit the same
bodies in the same order.

A plan is position-addressable: client ``i`` of ``c`` walks positions
``i, i+c, i+2c, ...`` so the fleet collectively covers the plan exactly
once per cycle, without coordination.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.errors import ConfigurationError
from ..core.platform import Platform
from ..workload import (
    ArrivalProcess,
    DeterministicArrivals,
    PoissonArrivals,
    SinusoidalArrivals,
    UniformPairs,
    paper_durations,
)
from ..workload.durations import DurationDistribution
from ..workload.matrix import PairSelector
from ..workload.volumes import PaperVolumes, VolumeDistribution

__all__ = ["SubmissionPlan", "arrival_process"]


def arrival_process(shape: str, mean_interarrival: float) -> ArrivalProcess:
    """The named arrival shape at the given mean inter-arrival time."""
    if mean_interarrival <= 0:
        raise ConfigurationError(
            f"mean interarrival must be positive, got {mean_interarrival}"
        )
    if shape == "poisson":
        return PoissonArrivals(mean_interarrival)
    if shape == "uniform":
        return DeterministicArrivals(mean_interarrival)
    if shape == "sinusoid":
        return SinusoidalArrivals(mean_interarrival)
    raise ConfigurationError(f"unknown arrival shape {shape!r}")


class SubmissionPlan:
    """A fixed, seeded sequence of HTTP submission bodies.

    ``deadline_floor`` guards live runs: the service decides a wave at a
    clock reading *past* the drawn arrival, so every window gets this
    much slack beyond its bottleneck-feasible length — a knife-edge
    window would otherwise flip from valid to infeasible between the
    client's draw and the wave flush.
    """

    def __init__(
        self,
        platform: Platform,
        n: int,
        *,
        seed: int = 0,
        shape: str = "poisson",
        mean_interarrival: float = 1.0,
        volumes: VolumeDistribution | None = None,
        durations: DurationDistribution | None = None,
        pairs: PairSelector | None = None,
        deadline_floor: float = 600.0,
    ) -> None:
        if n <= 0:
            raise ConfigurationError(f"plan needs a positive size, got {n}")
        self.platform = platform
        self.seed = seed
        self.shape = shape
        rng = np.random.default_rng(seed)
        arrivals = arrival_process(shape, mean_interarrival)
        t_start = arrivals.generate(n, rng)
        volume = (volumes or PaperVolumes()).generate(n, rng)
        duration = (durations or paper_durations()).generate(n, rng)
        ingress, egress = (pairs or UniformPairs()).generate(platform, n, rng)
        cap = np.minimum(
            platform.ingress_capacity[ingress], platform.egress_capacity[egress]
        )
        # A window shorter than the fastest feasible transfer can never be
        # admitted, and one *exactly* at the feasibility limit flips to
        # infeasible when the frontier flushes its wave a few (simulated)
        # seconds after the drawn arrival — so the floor is added on top
        # of the bottleneck transfer time, never absorbed by it.
        duration = np.maximum(duration, volume / cap) + deadline_floor
        self._bodies: list[dict[str, Any]] = [
            {
                "ingress": int(ingress[i]),
                "egress": int(egress[i]),
                "volume": float(volume[i]),
                "at": float(t_start[i]),
                "deadline": float(t_start[i] + duration[i]),
            }
            for i in range(n)
        ]

    def __len__(self) -> int:
        return len(self._bodies)

    def body(self, position: int) -> dict[str, Any]:
        """The submission at ``position`` (cycling past the end)."""
        return dict(self._bodies[position % len(self._bodies)])

    def slice_for(self, client: int, clients: int, count: int) -> list[dict[str, Any]]:
        """``count`` consecutive bodies along client ``client``'s stride."""
        if not 0 <= client < clients:
            raise ConfigurationError(f"client {client} outside fleet of {clients}")
        return [self.body(client + k * clients) for k in range(count)]
