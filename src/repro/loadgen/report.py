"""The load-run artifact: percentile arithmetic, schema, validation.

Every run ends in one JSON document (``LOADGEN_*.json``) that the serve
benchmark gates on.  The document is validated against
:data:`LOADGEN_SCHEMA` with the repo's own minimal validator
(:func:`repro.obs.schema.validate`) before it is written — a malformed
artifact fails the producer, not a downstream consumer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from ..core.errors import ConfigurationError
from ..obs.schema import SchemaError, validate

__all__ = ["LOADGEN_SCHEMA", "LatencySummary", "LoadReport", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``samples``.

    Deterministic and library-free: sort, index at ``ceil(q/100 * n)``.
    Returns 0.0 for an empty sample set (a run that never measured).
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = max(1, -(-int(q * len(ordered)) // 100))  # ceil without floats
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(slots=True)
class LatencySummary:
    """Wall-latency percentiles over one sample population (seconds)."""

    count: int
    p50: float
    p99: float
    p999: float
    mean: float
    max: float

    @classmethod
    def of(cls, samples: list[float]) -> LatencySummary:
        if not samples:
            return cls(count=0, p50=0.0, p99=0.0, p999=0.0, mean=0.0, max=0.0)
        return cls(
            count=len(samples),
            p50=percentile(samples, 50.0),
            p99=percentile(samples, 99.0),
            p999=percentile(samples, 99.9),
            mean=sum(samples) / len(samples),
            max=max(samples),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "p50": self.p50,
            "p99": self.p99,
            "p999": self.p999,
            "mean": self.mean,
            "max": self.max,
        }


@dataclass
class LoadReport:
    """Everything one load run measured, in artifact shape."""

    seed: int
    clients: int
    mode: str
    wall_seconds: float = 0.0
    submits: int = 0
    accepted: int = 0
    rejected: int = 0
    edge_refused: int = 0
    quota_refused: int = 0
    #: Batch entries the service refused as structurally invalid (stale
    #: window, malformed fields) — never reached the gateway.
    invalid: int = 0
    http_errors: int = 0
    transport_errors: int = 0
    #: Per-submission wall latency (the enclosing POST's round trip).
    submit_latencies: list[float] = field(default_factory=list)
    reject_reasons: Counter[str] = field(default_factory=Counter)
    #: HTTP requests per endpoint pattern.
    endpoint_requests: Counter[str] = field(default_factory=Counter)
    #: Bookkeeping for the runner's auxiliary status/cancel reads (not
    #: part of the artifact).
    last_accepted_rid: int | None = None

    @property
    def decided(self) -> int:
        return self.accepted + self.rejected

    @property
    def accept_rate(self) -> float:
        return self.accepted / self.decided if self.decided else 0.0

    def merge(self, other: LoadReport) -> None:
        """Fold a per-client report into this fleet-wide one."""
        self.submits += other.submits
        self.accepted += other.accepted
        self.rejected += other.rejected
        self.edge_refused += other.edge_refused
        self.quota_refused += other.quota_refused
        self.invalid += other.invalid
        self.http_errors += other.http_errors
        self.transport_errors += other.transport_errors
        self.submit_latencies.extend(other.submit_latencies)
        self.reject_reasons.update(other.reject_reasons)
        self.endpoint_requests.update(other.endpoint_requests)

    def to_dict(self) -> dict[str, Any]:
        """The artifact document; validated against :data:`LOADGEN_SCHEMA`."""
        latency = LatencySummary.of(self.submit_latencies)
        throughput = self.submits / self.wall_seconds if self.wall_seconds > 0 else 0.0
        doc: dict[str, Any] = {
            "kind": "loadgen-report",
            "version": 1,
            "seed": self.seed,
            "clients": self.clients,
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "submits": self.submits,
            "submits_per_second": throughput,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "edge_refused": self.edge_refused,
            "quota_refused": self.quota_refused,
            "invalid": self.invalid,
            "http_errors": self.http_errors,
            "transport_errors": self.transport_errors,
            "accept_rate": self.accept_rate,
            "latency": latency.to_dict(),
            "reject_reasons": dict(sorted(self.reject_reasons.items())),
            "endpoints": {
                pattern: {
                    "requests": count,
                    "per_second": count / self.wall_seconds
                    if self.wall_seconds > 0
                    else 0.0,
                }
                for pattern, count in sorted(self.endpoint_requests.items())
            },
        }
        errors = validate(doc, LOADGEN_SCHEMA)
        if errors:
            raise SchemaError("; ".join(errors))
        return doc


_LATENCY_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": ["count", "p50", "p99", "p999", "mean", "max"],
    "properties": {
        "count": {"type": "integer"},
        "p50": {"type": "number"},
        "p99": {"type": "number"},
        "p999": {"type": "number"},
        "mean": {"type": "number"},
        "max": {"type": "number"},
    },
}

#: The load-run artifact contract (``LOADGEN_*.json``).
LOADGEN_SCHEMA: dict[str, Any] = {
    "type": "object",
    "required": [
        "kind",
        "version",
        "seed",
        "clients",
        "mode",
        "wall_seconds",
        "submits",
        "submits_per_second",
        "accepted",
        "rejected",
        "edge_refused",
        "quota_refused",
        "invalid",
        "http_errors",
        "transport_errors",
        "accept_rate",
        "latency",
        "reject_reasons",
        "endpoints",
    ],
    "properties": {
        "kind": {"type": "string", "enum": ["loadgen-report"]},
        "version": {"type": "integer"},
        "seed": {"type": "integer"},
        "clients": {"type": "integer"},
        "mode": {"type": "string", "enum": ["closed", "paced"]},
        "wall_seconds": {"type": "number"},
        "submits": {"type": "integer"},
        "submits_per_second": {"type": "number"},
        "accepted": {"type": "integer"},
        "rejected": {"type": "integer"},
        "edge_refused": {"type": "integer"},
        "quota_refused": {"type": "integer"},
        "invalid": {"type": "integer"},
        "http_errors": {"type": "integer"},
        "transport_errors": {"type": "integer"},
        "accept_rate": {"type": "number"},
        "latency": _LATENCY_SCHEMA,
        "reject_reasons": {"type": "object"},
        "endpoints": {"type": "object"},
    },
}
