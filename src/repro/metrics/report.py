"""Tabular report rendering (plain text, markdown, CSV).

No plotting dependencies are available offline, so every experiment's
output is a :class:`Table`: aligned plain text for the terminal, markdown
for EXPERIMENTS.md, CSV for downstream tooling.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["Table"]


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) < 1 and value != 0:
            return f"{value:.4f}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A simple column-oriented result table."""

    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    title: str = ""

    def add_row(self, *values: Any) -> None:
        """Append a row; must match the header width."""
        if len(values) != len(self.headers):
            raise ValueError(f"expected {len(self.headers)} values, got {len(values)}")
        self.rows.append(list(values))

    def column(self, name: str) -> list[Any]:
        """All values of the named column."""
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Aligned plain-text rendering."""
        cells = [self.headers] + [[_render(v) for v in row] for row in self.rows]
        widths = [max(len(row[c]) for row in cells) for c in range(len(self.headers))]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_render(v) for v in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (headers + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.headers)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save_csv(self, path: str | Path) -> None:
        """Write the CSV rendering to ``path``."""
        Path(path).write_text(self.to_csv())

    def __str__(self) -> str:
        return self.to_text()
