"""Fault-tolerance counters for the online reservation control plane.

The paper motivates reservations with reliability — "a large amount of
resources could be wasted when long transfer failure occurs" (§6).  When
the control plane runs with failure injection (:mod:`repro.control.faults`)
these counters quantify the damage and the recovery:

- **wasted volume** — MB carried by transfers that later aborted;
- **freed volume** — MB of reservation tail returned to the ledger by
  aborts, cancellations, and outage displacements;
- **recovered volume** — MB of residual transfer successfully rebooked
  after an outage displaced the original reservation;
- **re-admission rate** — fraction of backlogged rejections later admitted
  into freed capacity;
- **mean time to rebook** — displacement-to-rebooking latency.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

__all__ = ["FaultStats"]


@dataclass
class FaultStats:
    """Mutable counters owned by a :class:`~repro.control.service.ReservationService`."""

    #: Mid-flight transfer aborts processed.
    aborted: int = 0
    #: Port degradations / outages applied.
    degradations: int = 0
    #: Reservations cancelled because a degradation left them infeasible.
    displaced: int = 0
    #: Live reservations whose tail was re-shaped into residual capacity
    #: (the malleable-transfer recovery verb, tried before displacement).
    reshaped: int = 0
    #: MB carried by transfers before they aborted (burned for nothing).
    wasted_volume: float = 0.0
    #: MB of reservation tail returned to the ledger by aborts/displacements.
    freed_volume: float = 0.0
    #: Residual MB successfully rebooked after displacement.
    recovered_volume: float = 0.0
    #: Rebooking submissions attempted for displaced residuals.
    rebook_attempts: int = 0
    #: Displaced reservations whose residual was successfully rebooked.
    rebooked: int = 0
    #: Σ (rebooked_at − displaced_at) over successful rebookings, seconds.
    rebook_wait_total: float = 0.0
    #: Rejected requests pushed onto the re-admission backlog.
    backlogged: int = 0
    #: Backlogged rejections later admitted into freed capacity.
    readmitted: int = 0
    #: MB admitted through backlog re-admission.
    readmitted_volume: float = 0.0

    # ------------------------------------------------------------------
    @property
    def readmission_rate(self) -> float:
        """Backlogged rejections that were eventually admitted."""
        return self.readmitted / self.backlogged if self.backlogged else 0.0

    @property
    def rebook_rate(self) -> float:
        """Displaced reservations whose residual volume found a new slot."""
        return self.rebooked / self.displaced if self.displaced else 0.0

    @property
    def mean_time_to_rebook(self) -> float:
        """Mean displacement-to-rebooking latency in seconds."""
        return self.rebook_wait_total / self.rebooked if self.rebooked else 0.0

    # ------------------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Counters plus derived rates, flat (CSV/JSON friendly)."""
        out = asdict(self)
        out["readmission_rate"] = self.readmission_rate
        out["rebook_rate"] = self.rebook_rate
        out["mean_time_to_rebook"] = self.mean_time_to_rebook
        return out

    def merge(self, other: FaultStats) -> FaultStats:
        """Elementwise sum (aggregating replications); returns a new object."""
        merged = FaultStats()
        for key, value in asdict(self).items():
            setattr(merged, key, value + getattr(other, key))
        return merged
