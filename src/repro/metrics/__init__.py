"""Evaluation metrics and report tables."""

from .collector import MetricsReport, evaluate, jain_index
from .faults import FaultStats
from .report import Table
from .steady import accept_rate_series, steady_accept_rate, steady_window

__all__ = [
    "FaultStats",
    "MetricsReport",
    "Table",
    "accept_rate_series",
    "evaluate",
    "jain_index",
    "steady_accept_rate",
    "steady_window",
]
