"""Schedule evaluation: one call computing every metric a benchmark reports.

:func:`evaluate` combines the paper's objectives (§2.2–2.3) with the
engineering metrics the figures discuss — waiting time (response time of
interval-based scheduling), granted-rate quality, per-port balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np

from ..core.allocation import ScheduleResult
from ..core.capacity import utilisation
from ..core.objectives import (
    guaranteed_rate,
    resource_utilization,
    resource_utilization_time_averaged,
)
from ..core.problem import ProblemInstance

__all__ = ["MetricsReport", "evaluate", "jain_index"]


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n Σx²)``: 1 when perfectly even."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return 1.0
    denom = arr.size * float(np.sum(arr * arr))
    if denom == 0:
        return 1.0
    return float(np.sum(arr)) ** 2 / denom


@dataclass(frozen=True)
class MetricsReport:
    """All evaluation metrics for one (problem, schedule) pair."""

    scheduler: str
    num_requests: int
    accept_rate: float
    resource_utilization: float
    utilization_time_averaged: float
    guaranteed: dict[float, float]
    mean_wait: float
    max_wait: float
    mean_granted_over_max: float
    mean_transfer_duration: float
    port_jain_index: float

    def as_dict(self) -> dict[str, Any]:
        """Flat dict (guaranteed rates expanded) for tables and CSV."""
        out: dict[str, Any] = {
            "scheduler": self.scheduler,
            "num_requests": self.num_requests,
            "accept_rate": self.accept_rate,
            "resource_utilization": self.resource_utilization,
            "utilization_time_averaged": self.utilization_time_averaged,
            "mean_wait": self.mean_wait,
            "max_wait": self.max_wait,
            "mean_granted_over_max": self.mean_granted_over_max,
            "mean_transfer_duration": self.mean_transfer_duration,
            "port_jain_index": self.port_jain_index,
        }
        for f, rate in sorted(self.guaranteed.items()):
            out[f"guaranteed_f{f:g}"] = rate
        return out


def evaluate(
    problem: ProblemInstance,
    result: ScheduleResult,
    *,
    fractions: Sequence[float] = (0.5, 0.8, 1.0),
) -> MetricsReport:
    """Compute the full metric set for a schedule."""
    requests = problem.requests
    allocations = list(result.accepted.values())

    waits = []
    granted_ratio = []
    durations = []
    for alloc in allocations:
        request = requests.by_rid(alloc.rid)
        waits.append(alloc.sigma - request.t_start)
        granted_ratio.append(alloc.bw / request.max_rate)
        durations.append(alloc.duration)

    ledger = result.build_ledger(problem.platform)
    t0, t1 = requests.time_span()
    if allocations and t1 > t0:
        port_utils = []
        for i in range(problem.platform.num_ingress):
            port_utils.append(
                utilisation(ledger.ingress_timeline(i), problem.platform.bin(i), t0, t1)
            )
        for e in range(problem.platform.num_egress):
            port_utils.append(
                utilisation(ledger.egress_timeline(e), problem.platform.bout(e), t0, t1)
            )
        port_fairness = jain_index(port_utils)
    else:
        port_fairness = 1.0

    return MetricsReport(
        scheduler=result.scheduler,
        num_requests=len(requests),
        accept_rate=result.accept_rate,
        resource_utilization=resource_utilization(problem.platform, requests, result),
        utilization_time_averaged=resource_utilization_time_averaged(
            problem.platform, requests, result
        ),
        guaranteed={f: guaranteed_rate(requests, result, f) for f in fractions},
        mean_wait=float(np.mean(waits)) if waits else 0.0,
        max_wait=float(np.max(waits)) if waits else 0.0,
        mean_granted_over_max=float(np.mean(granted_ratio)) if granted_ratio else 0.0,
        mean_transfer_duration=float(np.mean(durations)) if durations else 0.0,
        port_jain_index=port_fairness,
    )
