"""Steady-state estimation: warm-up/cool-down trimming and time series.

A finite simulated trace is biased at both ends: early requests face an
empty network (inflated accept rate) and the last arrivals compete with
the accumulated backlog but nothing after them.  These helpers estimate
steady-state quantities by trimming the arrival horizon, and expose the
accept-rate time series so the transient is visible.
"""

from __future__ import annotations

import numpy as np

from ..core.allocation import ScheduleResult
from ..core.problem import ProblemInstance

__all__ = ["steady_window", "steady_accept_rate", "accept_rate_series"]


def steady_window(problem: ProblemInstance, trim: float = 0.2) -> tuple[float, float]:
    """Arrival-time window with a ``trim`` fraction cut from each end."""
    if not (0.0 <= trim < 0.5):
        raise ValueError(f"trim must be in [0, 0.5), got {trim}")
    arrivals = np.array([r.t_start for r in problem.requests])
    if arrivals.size == 0:
        return (0.0, 0.0)
    return (
        float(np.quantile(arrivals, trim)),
        float(np.quantile(arrivals, 1.0 - trim)),
    )


def steady_accept_rate(
    problem: ProblemInstance, result: ScheduleResult, trim: float = 0.2
) -> float:
    """Accept rate among requests arriving inside the trimmed window."""
    lo, hi = steady_window(problem, trim)
    considered = accepted = 0
    for request in problem.requests:
        if lo <= request.t_start <= hi:
            considered += 1
            accepted += request.rid in result.accepted
    return accepted / considered if considered else 0.0


def accept_rate_series(
    problem: ProblemInstance, result: ScheduleResult, num_bins: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Accept rate per arrival-time bin: ``(bin centres, rates)``.

    Bins with no arrivals get ``nan`` so plots show gaps rather than
    fabricated zeros.
    """
    if num_bins < 1:
        raise ValueError(f"num_bins must be >= 1, got {num_bins}")
    arrivals = np.array([r.t_start for r in problem.requests])
    if arrivals.size == 0:
        return (np.zeros(0), np.zeros(0))
    accepted = np.array([r.rid in result.accepted for r in problem.requests], dtype=float)
    lo, hi = float(arrivals.min()), float(arrivals.max())
    if hi <= lo:
        return (np.array([lo]), np.array([accepted.mean()]))
    edges = np.linspace(lo, hi, num_bins + 1)
    which = np.clip(np.searchsorted(edges, arrivals, side="right") - 1, 0, num_bins - 1)
    centres = (edges[:-1] + edges[1:]) / 2
    rates = np.full(num_bins, np.nan)
    for b in range(num_bins):
        mask = which == b
        if mask.any():
            rates[b] = accepted[mask].mean()
    return centres, rates
