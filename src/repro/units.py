"""Units and quantity helpers used throughout the library.

Conventions (see DESIGN.md §5):

- **time** is expressed in seconds,
- **bandwidth** in megabytes per second (MB/s),
- **volume** in megabytes (MB).

The paper's 1 GB/s access ports are therefore ``1000.0`` and a 1 TB transfer
is ``1_000_000.0``.  Decimal prefixes are used (1 GB = 1000 MB), matching the
paper's networking context.

This module provides named constants, parsing of human-readable strings such
as ``"1GB/s"`` or ``"250 MB"``, and compact formatting for reports.
"""

from __future__ import annotations

import math
import re

__all__ = [
    "MB",
    "GB",
    "TB",
    "KB",
    "MBPS",
    "GBPS",
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "REL_TOL",
    "parse_volume",
    "parse_bandwidth",
    "parse_duration",
    "format_volume",
    "format_bandwidth",
    "format_duration",
    "close",
    "seconds_eq",
    "bandwidth_eq",
    "volume_eq",
]

# Volumes, in MB.
KB: float = 1e-3
MB: float = 1.0
GB: float = 1000.0
TB: float = 1_000_000.0

# Bandwidths, in MB/s.
MBPS: float = 1.0
GBPS: float = 1000.0

# Times, in seconds.
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86400.0

#: Default relative tolerance for quantity comparisons.  Times, rates and
#: volumes are sums/products of floats (``tau = sigma + volume / bw``); one
#: part in 10⁹ absorbs the round-off of any realistic chain of operations
#: while staying far below every physically meaningful difference.  Matches
#: ``repro.core.ledger.CAPACITY_SLACK`` and the deadline slack of
#: ``repro.core.booking.deadline_tolerance``.
REL_TOL: float = 1e-9


def close(a: float, b: float, *, rel: float = REL_TOL, floor: float = 1.0) -> bool:
    """Tolerance-aware equality for float quantities.

    True when ``|a - b| <= rel * max(floor, |a|, |b|)``.  The absolute
    ``floor`` keeps the tolerance meaningful near zero (where a purely
    relative bound collapses to exact equality): quantities at ``t ≈ 0`` or
    rates of a few MB/s still compare with ~1e-9 slack.  Infinities compare
    equal only to themselves; NaN compares equal to nothing.
    """
    if a == b:  # gridlint: disable=GL003 -- fast path incl. matching infinities
        return True
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    return abs(a - b) <= rel * max(floor, abs(a), abs(b))


def seconds_eq(a: float, b: float, *, rel: float = REL_TOL) -> bool:
    """Are two times (seconds) equal up to numerical noise?

    The absolute floor of one second's 1e-9 matches
    :func:`repro.core.booking.deadline_tolerance`, so admission checks and
    comparisons written with either helper agree.
    """
    return close(a, b, rel=rel, floor=1.0)


def bandwidth_eq(a: float, b: float, *, rel: float = REL_TOL) -> bool:
    """Are two bandwidths (MB/s) equal up to numerical noise?"""
    return close(a, b, rel=rel, floor=1.0)


def volume_eq(a: float, b: float, *, rel: float = REL_TOL) -> bool:
    """Are two volumes (MB) equal up to numerical noise?"""
    return close(a, b, rel=rel, floor=1.0)


_VOLUME_UNITS = {
    "kb": KB,
    "mb": MB,
    "gb": GB,
    "tb": TB,
    "k": KB,
    "m": MB,
    "g": GB,
    "t": TB,
}

_TIME_UNITS = {
    "s": SECOND,
    "sec": SECOND,
    "second": SECOND,
    "seconds": SECOND,
    "min": MINUTE,
    "minute": MINUTE,
    "minutes": MINUTE,
    "h": HOUR,
    "hour": HOUR,
    "hours": HOUR,
    "d": DAY,
    "day": DAY,
    "days": DAY,
}

_QUANTITY_RE = re.compile(
    r"^\s*(?P<num>[-+]?\d+(?:\.\d*)?(?:[eE][-+]?\d+)?)\s*(?P<unit>[a-zA-Z/]*)\s*$"
)


def _split(text: str) -> tuple[float, str]:
    match = _QUANTITY_RE.match(text)
    if match is None:
        raise ValueError(f"cannot parse quantity: {text!r}")
    return float(match.group("num")), match.group("unit").lower()


def parse_volume(text: str | float | int) -> float:
    """Parse a data volume into MB.

    Accepts a bare number (already in MB) or a string such as ``"100GB"``,
    ``"1 TB"`` or ``"512mb"``.
    """
    if isinstance(text, (int, float)):
        return float(text)
    value, unit = _split(text)
    if unit == "":
        return value
    try:
        return value * _VOLUME_UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown volume unit {unit!r} in {text!r}") from None


def parse_bandwidth(text: str | float | int) -> float:
    """Parse a bandwidth into MB/s.

    Accepts a bare number (already in MB/s) or a string such as ``"1GB/s"``
    or ``"10 MB/s"``.
    """
    if isinstance(text, (int, float)):
        return float(text)
    value, unit = _split(text)
    if unit == "":
        return value
    if unit.endswith("/s"):
        unit = unit[:-2]
    if unit.endswith("ps"):
        unit = unit[:-2]
    try:
        return value * _VOLUME_UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown bandwidth unit in {text!r}") from None


def parse_duration(text: str | float | int) -> float:
    """Parse a duration into seconds (``"2h"``, ``"90 min"``, ``"1 day"``)."""
    if isinstance(text, (int, float)):
        return float(text)
    value, unit = _split(text)
    if unit == "":
        return value
    try:
        return value * _TIME_UNITS[unit]
    except KeyError:
        raise ValueError(f"unknown time unit {unit!r} in {text!r}") from None


def _format_scaled(value: float, steps: list[tuple[float, str]], suffix: str) -> str:
    for factor, name in steps:
        if abs(value) >= factor:
            scaled = value / factor
            return f"{scaled:.4g}{name}{suffix}"
    return f"{value:.4g}MB{suffix}"


def format_volume(mb: float) -> str:
    """Format a volume in MB as a compact human-readable string."""
    if not math.isfinite(mb):
        return str(mb)
    return _format_scaled(mb, [(TB, "TB"), (GB, "GB"), (MB, "MB")], "")


def format_bandwidth(mbps: float) -> str:
    """Format a bandwidth in MB/s as a compact human-readable string."""
    if not math.isfinite(mbps):
        return str(mbps)
    return _format_scaled(mbps, [(GBPS, "GB"), (MBPS, "MB")], "/s")


def format_duration(seconds: float) -> str:
    """Format a duration in seconds as a compact human-readable string."""
    if not math.isfinite(seconds):
        return str(seconds)
    if abs(seconds) >= DAY:
        return f"{seconds / DAY:.4g}d"
    if abs(seconds) >= HOUR:
        return f"{seconds / HOUR:.4g}h"
    if abs(seconds) >= MINUTE:
        return f"{seconds / MINUTE:.4g}min"
    return f"{seconds:.4g}s"
