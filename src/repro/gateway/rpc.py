"""The coordinator↔broker message layer: seeded, deterministic chaos.

Every protocol call a :class:`~repro.gateway.twophase.TwoPhaseCoordinator`
makes against a :class:`~repro.gateway.broker.ShardBroker` — ``prepare``,
``commit``, ``abort_hold``, ``book_pair`` and the compensation ``release``
— travels through a :class:`Channel`.  With no :class:`ChaosPolicy`
attached the channel is a pure pass-through (zero extra state, zero RNG
draws), so a chaos-free gateway behaves — decision for decision, trace
for trace — exactly as if the layer did not exist.

With a policy attached, each delivery is subjected to the faults a real
network boundary exhibits, all sampled from a per-edge ``random.Random``
seeded from ``(policy.seed, shard_id)`` and all accounted in **simulated
time** (GL001/GL002 clean):

- **drop** — the message (or its reply) is lost; the caller sees a
  :class:`ChannelTimeout` after ``timeout_cost`` simulated seconds.  Half
  of the drops lose the *reply*: the broker executed the call, the caller
  doesn't know — the case idempotency keys exist for;
- **duplicate** — the message is delivered twice (at-least-once
  delivery); the broker-side idempotency table must absorb the replay;
- **delay / latency** — the call succeeds but burns simulated seconds,
  surfaced through :attr:`ChannelStats.latency`;
- **partition** — a shard is unreachable over ``[start, end)``; every
  unreliable delivery times out until the partition heals;
- **crash_after_prepare / crash_after_commit** — the broker process dies
  right after acknowledging, wiping its volatile holds: the
  crash-mid-2PC hazard the presumed-abort protocol must survive.

Compensation releases are delivered with ``reliable=True`` — they model a
durable compensation record (a write-ahead log entry replayed until
acknowledged), so a partial two-phase commit can always be undone.
Aborts stay *unreliable* on purpose: a dropped abort strands the hold
until the broker's TTL sweep reclaims it, exercising presumed-abort.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from collections.abc import Callable
from typing import TYPE_CHECKING, Any, TypeVar

from ..core.errors import ConfigurationError, ReproError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs.causal import CausalObserver, TraceContext
    from .broker import Hold, ShardBroker

__all__ = [
    "Channel",
    "ChannelStats",
    "ChannelTimeout",
    "ChaosPolicy",
    "EdgeChaos",
    "Partition",
    "ShardUnreachable",
]

_T = TypeVar("_T")

#: Mixes the policy seed and the shard id into one RNG seed; any odd
#: multiplier works, it only needs to keep distinct shards' streams apart.
_SEED_STRIDE = 1_000_003


class ChannelTimeout(ReproError):
    """One delivery was lost (drop or partition); the caller timed out.

    ``cost`` is the simulated seconds the caller waited before concluding
    loss — the coordinator adds it to the transaction's virtual clock and
    its retry deadline budget.
    """

    def __init__(self, message: str, *, cost: float = 0.0) -> None:
        super().__init__(message)
        self.cost = cost


class ShardUnreachable(ReproError):
    """Retry/deadline budget exhausted on timeouts: give the shard up.

    Terminal for the transaction (mapped to the machine-readable
    ``shard-unreachable`` :class:`~repro.core.booking.RejectReason`), not
    for the request: the gateway backlog re-admits it once the shard
    answers again.
    """


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


def _check_nonnegative(name: str, value: float) -> None:
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True, slots=True)
class EdgeChaos:
    """Fault probabilities and costs of one coordinator→shard edge."""

    #: Probability a delivery is lost (half request-lost, half reply-lost).
    drop: float = 0.0
    #: Probability the message is delivered twice.
    duplicate: float = 0.0
    #: Probability the delivery is slow (adds ``delay_cost`` sim seconds).
    delay: float = 0.0
    #: Simulated seconds a sampled delay costs.
    delay_cost: float = 0.0
    #: Fixed simulated seconds every delivery on this edge costs.
    latency: float = 0.0
    #: Probability the broker crashes right after acknowledging a prepare.
    crash_after_prepare: float = 0.0
    #: Probability the broker crashes right after acknowledging a commit.
    crash_after_commit: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "crash_after_prepare", "crash_after_commit"):
            _check_probability(name, getattr(self, name))
        for name in ("delay_cost", "latency"):
            _check_nonnegative(name, getattr(self, name))

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (journal header)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> EdgeChaos:
        """Inverse of :meth:`to_dict`."""
        return cls(**{f.name: float(data.get(f.name, 0.0)) for f in fields(cls)})


@dataclass(frozen=True, slots=True)
class Partition:
    """Shard ``shard`` is unreachable over ``[start, end)`` (sim time)."""

    shard: int
    start: float
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.shard < 0:
            raise ConfigurationError(f"shard must be >= 0, got {self.shard}")
        if not (self.end > self.start):
            raise ConfigurationError(f"empty partition window [{self.start}, {self.end})")

    def covers(self, now: float) -> bool:
        """Is the partition active at ``now``?"""
        return self.start <= now < self.end

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form; an unhealed partition stores ``end: None``."""
        return {
            "shard": self.shard,
            "start": self.start,
            "end": None if math.isinf(self.end) else self.end,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Partition:
        """Inverse of :meth:`to_dict`."""
        end = data.get("end")
        return cls(
            shard=int(data["shard"]),
            start=float(data["start"]),
            end=math.inf if end is None else float(end),
        )


@dataclass(frozen=True)
class ChaosPolicy:
    """The full fault configuration of a gateway's coordinator↔broker mesh.

    ``default`` applies to every edge; ``edges`` overrides per shard.
    The policy is immutable and serialisable (it rides in the journal
    header), and together with its ``seed`` makes every chaotic run a
    deterministic function of the operation stream — which is exactly why
    :meth:`~repro.gateway.gateway.Gateway.replay` converges under chaos.
    """

    seed: int = 0
    default: EdgeChaos = EdgeChaos()
    #: Per-shard overrides as ``(shard_id, EdgeChaos)`` pairs.
    edges: tuple[tuple[int, EdgeChaos], ...] = ()
    partitions: tuple[Partition, ...] = ()
    #: Simulated seconds one lost delivery costs the caller.
    timeout_cost: float = 30.0

    def __post_init__(self) -> None:
        _check_nonnegative("timeout_cost", self.timeout_cost)

    # ------------------------------------------------------------------
    def edge_for(self, shard: int) -> EdgeChaos:
        """The fault profile of the edge to ``shard``."""
        for shard_id, edge in self.edges:
            if shard_id == shard:
                return edge
        return self.default

    def is_partitioned(self, shard: int, now: float) -> bool:
        """Is ``shard`` inside any partition window at ``now``?"""
        return any(p.shard == shard and p.covers(now) for p in self.partitions)

    # ------------------------------------------------------------------
    # Canned scenarios (the chaos-matrix vocabulary)
    # ------------------------------------------------------------------
    @classmethod
    def lossy(
        cls,
        *,
        seed: int = 0,
        drop: float = 0.15,
        duplicate: float = 0.05,
        delay: float = 0.10,
        delay_cost: float = 2.0,
        timeout_cost: float = 30.0,
    ) -> ChaosPolicy:
        """A uniformly lossy mesh: drops, duplicates, slow deliveries."""
        return cls(
            seed=seed,
            default=EdgeChaos(
                drop=drop, duplicate=duplicate, delay=delay, delay_cost=delay_cost
            ),
            timeout_cost=timeout_cost,
        )

    @classmethod
    def duplicate_storm(cls, *, seed: int = 0, duplicate: float = 0.6) -> ChaosPolicy:
        """At-least-once gone wild: most messages are delivered twice."""
        return cls(seed=seed, default=EdgeChaos(duplicate=duplicate))

    @classmethod
    def slow(cls, *, seed: int = 0, latency: float = 2.0) -> ChaosPolicy:
        """A uniformly slow mesh: every delivery costs ``latency`` seconds."""
        return cls(seed=seed, default=EdgeChaos(latency=latency))

    @classmethod
    def with_partition(
        cls,
        shard: int,
        start: float,
        end: float = math.inf,
        *,
        seed: int = 0,
        timeout_cost: float = 30.0,
    ) -> ChaosPolicy:
        """One shard unreachable over ``[start, end)``, otherwise clean."""
        return cls(
            seed=seed,
            partitions=(Partition(shard=shard, start=start, end=end),),
            timeout_cost=timeout_cost,
        )

    @classmethod
    def crash_mid_2pc(
        cls,
        *,
        seed: int = 0,
        crash_after_prepare: float = 0.08,
        crash_after_commit: float = 0.02,
    ) -> ChaosPolicy:
        """Brokers that die right after acknowledging a protocol phase."""
        return cls(
            seed=seed,
            default=EdgeChaos(
                crash_after_prepare=crash_after_prepare,
                crash_after_commit=crash_after_commit,
            ),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (journal header / reports)."""
        return {
            "seed": self.seed,
            "timeout_cost": self.timeout_cost,
            "default": self.default.to_dict(),
            "edges": {str(shard): edge.to_dict() for shard, edge in self.edges},
            "partitions": [p.to_dict() for p in self.partitions],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ChaosPolicy:
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data.get("seed", 0)),
            timeout_cost=float(data.get("timeout_cost", 30.0)),
            default=EdgeChaos.from_dict(data.get("default") or {}),
            edges=tuple(
                sorted(
                    (int(shard), EdgeChaos.from_dict(edge))
                    for shard, edge in (data.get("edges") or {}).items()
                )
            ),
            partitions=tuple(
                Partition.from_dict(p) for p in (data.get("partitions") or [])
            ),
        )


@dataclass
class ChannelStats:
    """What one channel did to its deliveries (all deterministic)."""

    calls: int = 0
    drops: int = 0
    duplicates: int = 0
    delays: int = 0
    partitioned: int = 0
    crashes: int = 0
    #: Ambiguous outcomes resolved in the caller's favour by a durable-log
    #: read (termination probe answered "it landed").
    recovered: int = 0
    #: Simulated seconds of latency/delay accrued by successful deliveries.
    latency: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (reports / telemetry deltas)."""
        return dict(vars(self))


class Channel:
    """One coordinator→broker edge; the only sanctioned protocol path.

    ``policy=None`` (the default everywhere chaos is not explicitly
    requested) short-circuits every wrapper straight into the broker
    method — no RNG is created, no stats move, and behaviour is
    bit-identical to calling the broker directly.
    """

    def __init__(
        self,
        broker: ShardBroker,
        policy: ChaosPolicy | None = None,
        observer: CausalObserver | None = None,
    ) -> None:
        self.broker = broker
        self.policy = policy
        self.observer = observer
        self.stats = ChannelStats()
        self._edge = policy.edge_for(broker.shard_id) if policy is not None else EdgeChaos()
        seed = policy.seed if policy is not None else 0
        self._rng = random.Random(seed * _SEED_STRIDE + broker.shard_id + 1)

    # ------------------------------------------------------------------
    # Causal tracing: the channel is where faults become visible, so it
    # is the channel that annotates them onto the request's timeline.
    # ------------------------------------------------------------------
    def _observe_delivery(
        self, op: str, now: float, ctx: TraceContext | None, **detail: Any
    ) -> None:
        if self.observer is not None and ctx is not None:
            self.observer.delivery(op, shard=self.shard_id, now=now, ctx=ctx, **detail)

    def _observe_fault(
        self, kind: str, op: str, now: float, ctx: TraceContext | None, **detail: Any
    ) -> None:
        if self.observer is not None and ctx is not None:
            self.observer.fault(kind, op, shard=self.shard_id, now=now, ctx=ctx, **detail)

    # ------------------------------------------------------------------
    @property
    def shard_id(self) -> int:
        """The shard this channel talks to."""
        return self.broker.shard_id

    def partitioned(self, now: float) -> bool:
        """Is the edge inside a partition window at ``now``?"""
        return self.policy is not None and self.policy.is_partitioned(
            self.broker.shard_id, now
        )

    def serviceable(self, now: float) -> bool:
        """Would a call at ``now`` reach a live broker? (Read-only probe —
        draws nothing, so it is safe to gate re-admission attempts on.)"""
        return not self.broker.crashed and not self.partitioned(now)

    # ------------------------------------------------------------------
    # Termination protocol: durable-log reads
    # ------------------------------------------------------------------
    def resolved_committed(
        self, hold_id: int, *, now: float = 0.0, ctx: TraceContext | None = None
    ) -> bool:
        """Did ``hold_id``'s commit land, per the broker's durable log?

        The coordinator's termination-protocol read for an ambiguous
        commit (every acknowledgement lost): like compensation records it
        is modelled reliable — a recovery read of the WAL, not a fresh
        delivery — so it draws nothing and ignores partitions.
        """
        landed = self.broker.resolution_of(hold_id) == "committed"
        if landed:
            self.stats.recovered += 1
            self._observe_delivery(
                "commit", now, ctx, outcome="recovered", hold_id=hold_id
            )
        return landed

    def booking_landed(
        self, rid: int, *, now: float = 0.0, ctx: TraceContext | None = None
    ) -> bool:
        """Did the pair booking keyed ``rid`` land?  (Reliable log read,
        the :meth:`resolved_committed` analogue for the local fast path.)"""
        landed = self.broker.was_booked(rid)
        if landed:
            self.stats.recovered += 1
            self._observe_delivery("book_pair", now, ctx, outcome="recovered", rid=rid)
        return landed

    # ------------------------------------------------------------------
    def deliver(
        self,
        op: str,
        invoke: Callable[[], _T],
        *,
        now: float,
        reliable: bool = False,
        ctx: TraceContext | None = None,
    ) -> _T:
        """Run one broker call through the configured chaos.

        Fault draws happen in a fixed order — partition, drop (then a
        coin for "request lost" vs "executed, reply lost"), delay,
        duplicate — and a draw only happens when its probability is
        non-zero, so an all-zero policy consumes no randomness at all.
        ``reliable=True`` (compensation records) bypasses partition,
        drop and duplication: only latency applies.  ``ctx`` is the
        causal trace context of the transaction this delivery serves;
        every fault that strikes is annotated onto its timeline.
        """
        if self.policy is None:
            result = invoke()
            self._observe_delivery(op, now, ctx)
            return result
        self.stats.calls += 1
        edge = self._edge
        rng = self._rng
        if edge.latency > 0.0:
            self.stats.latency += edge.latency
        if not reliable:
            if self.partitioned(now):
                self.stats.partitioned += 1
                self._observe_fault(
                    "partition", op, now, ctx, cost=self.policy.timeout_cost
                )
                raise ChannelTimeout(
                    f"{op}: shard {self.shard_id} is partitioned",
                    cost=self.policy.timeout_cost,
                )
            if edge.drop > 0.0 and rng.random() < edge.drop:
                self.stats.drops += 1
                reply_lost = rng.random() < 0.5
                self._observe_fault(
                    "drop",
                    op,
                    now,
                    ctx,
                    mode="reply-lost" if reply_lost else "request-lost",
                    cost=self.policy.timeout_cost,
                )
                if reply_lost:
                    # The request reached the broker; only the reply died.
                    try:
                        invoke()
                    except ReproError:
                        pass
                raise ChannelTimeout(
                    f"{op}: delivery to shard {self.shard_id} lost",
                    cost=self.policy.timeout_cost,
                )
        if edge.delay > 0.0 and rng.random() < edge.delay:
            self.stats.delays += 1
            self.stats.latency += edge.delay_cost
            self._observe_fault("delay", op, now, ctx, cost=edge.delay_cost)
        result = invoke()
        if not reliable and edge.duplicate > 0.0 and rng.random() < edge.duplicate:
            self.stats.duplicates += 1
            self._observe_fault("duplicate", op, now, ctx)
            try:
                invoke()  # at-least-once: the broker sees the replay too
            except ReproError:
                pass
        self._observe_delivery(op, now, ctx)
        return result

    def _maybe_crash(
        self,
        probability: float,
        op: str,
        now: float,
        ctx: TraceContext | None,
    ) -> None:
        """Sample a broker crash right after an acknowledged phase."""
        if (
            probability > 0.0
            and not self.broker.crashed
            and self._rng.random() < probability
        ):
            self.stats.crashes += 1
            self._observe_fault("crash", op, now, ctx)
            self.broker.crash()

    # ------------------------------------------------------------------
    # Typed protocol wrappers (what the coordinator actually calls)
    # ------------------------------------------------------------------
    def prepare(
        self,
        side: str,
        port: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        rid: int,
        expires: float,
        now: float,
        ctx: TraceContext | None = None,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> Hold | None:
        """Phase one through the channel; ``(rid, side)`` keys the replay.

        ``segments`` rides the wire for malleable (stepwise-profile)
        holds; the idempotency key is unchanged, so duplicate deliveries
        of a profile prepare replay exactly like constant ones.
        """
        if self.policy is None:
            hold = self.broker.prepare(
                side,
                port,
                t0,
                t1,
                bw,
                rid=rid,
                expires=expires,
                key=(rid, side),
                segments=segments,
            )
            self._observe_delivery(
                "prepare", now, ctx, rid=rid, side=side, held=hold is not None
            )
            return hold
        hold = self.deliver(
            "prepare",
            lambda: self.broker.prepare(
                side,
                port,
                t0,
                t1,
                bw,
                rid=rid,
                expires=expires,
                key=(rid, side),
                segments=segments,
            ),
            now=now,
            ctx=ctx,
        )
        if hold is not None:
            self._maybe_crash(self._edge.crash_after_prepare, "prepare", now, ctx)
        return hold

    def commit(
        self, hold_id: int, *, now: float, ctx: TraceContext | None = None
    ) -> None:
        """Phase two through the channel."""
        if self.policy is None:
            self.broker.commit(hold_id)
            self._observe_delivery("commit", now, ctx, hold_id=hold_id)
            return
        self.deliver("commit", lambda: self.broker.commit(hold_id), now=now, ctx=ctx)
        self._maybe_crash(self._edge.crash_after_commit, "commit", now, ctx)

    def abort_hold(
        self, hold_id: int, *, now: float, ctx: TraceContext | None = None
    ) -> bool:
        """Abort through the channel — deliberately *unreliable*: a lost
        abort strands the hold until the broker's TTL sweep (presumed
        abort), which is the failure mode the drills must exercise."""
        if self.policy is None:
            released = self.broker.abort_hold(hold_id)
            self._observe_delivery("abort", now, ctx, hold_id=hold_id)
            return released
        return self.deliver(
            "abort", lambda: self.broker.abort_hold(hold_id), now=now, ctx=ctx
        )

    def book_pair(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        rid: int,
        now: float,
        ctx: TraceContext | None = None,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> None:
        """Shard-local atomic booking through the channel; ``rid`` keys it."""
        if self.policy is None:
            self.broker.book_pair(ingress, egress, t0, t1, bw, key=rid, segments=segments)
            self._observe_delivery("book_pair", now, ctx, rid=rid)
            return
        self.deliver(
            "book_pair",
            lambda: self.broker.book_pair(
                ingress, egress, t0, t1, bw, key=rid, segments=segments
            ),
            now=now,
            ctx=ctx,
        )

    def release(
        self,
        side: str,
        port: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        now: float,
        ctx: TraceContext | None = None,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> None:
        """Compensation release — ``reliable``: modelled as a durable
        compensation record replayed until acknowledged, so undoing a
        partial commit can never itself be lost."""
        if self.policy is None:
            self.broker.release(side, port, t0, t1, bw, segments=segments)
            self._observe_delivery("release", now, ctx, side=side)
            return
        self.deliver(
            "release",
            lambda: self.broker.release(side, port, t0, t1, bw, segments=segments),
            now=now,
            ctx=ctx,
            reliable=True,
        )
