"""The front-end batcher: coalesce concurrent arrivals, order the batch.

Cohen et al.'s throughput-optimal online reservation results show batched
admission need not sacrifice throughput — and batching is what exposes
cross-shard parallelism: requests in one batch that touch disjoint
brokers are admitted concurrently, so the batch's critical path is the
busiest broker, not the sum of all work.

The batcher collects submissions that arrive at the same simulated
instant (the gateway force-flushes whenever its clock advances, so a
batch never mixes instants) up to ``batch_size``, then releases them in
the order of a pluggable policy:

- ``fifo`` — submission order (the monolithic service's order; the
  single-shard equivalence tests run this);
- ``min-laxity`` — least scheduling slack first
  (``(t_end − now) − vol/MaxRate``), the classic urgency order: tight
  requests grab capacity before flexible ones fragment it;
- ``max-value`` — largest volume first, a provider revenue proxy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from .gateway import Ticket

__all__ = ["AdmissionOrdering", "Batcher", "PendingAdmission"]


class AdmissionOrdering(enum.Enum):
    """Pluggable intra-batch admission order."""

    FIFO = "fifo"
    MIN_LAXITY = "min-laxity"
    MAX_VALUE = "max-value"

    @classmethod
    def from_name(cls, name: str | AdmissionOrdering) -> AdmissionOrdering:
        """Resolve a policy by its wire name (``fifo`` / ``min-laxity`` / ``max-value``)."""
        if isinstance(name, cls):
            return name
        for member in cls:
            if member.value == name:
                return member
        raise ConfigurationError(
            f"unknown admission ordering {name!r}; "
            f"known: {', '.join(m.value for m in cls)}"
        )


@dataclass(frozen=True, slots=True)
class PendingAdmission:
    """One enqueued submission awaiting its batch's flush."""

    seq: int
    ticket: Ticket


@dataclass
class Batcher:
    """Bounded accumulator of pending admissions with a flush order."""

    batch_size: int
    ordering: AdmissionOrdering = AdmissionOrdering.FIFO
    _pending: list[PendingAdmission] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {self.batch_size}")

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def full(self) -> bool:
        """Has the batch reached ``batch_size``?"""
        return len(self._pending) >= self.batch_size

    def enqueue(self, pending: PendingAdmission) -> None:
        """Add one submission to the open batch."""
        self._pending.append(pending)

    def drain(self, now: float) -> list[PendingAdmission]:
        """Close the batch: empty the buffer, return it in admission order."""
        batch, self._pending = self._pending, []
        return self.order(batch, now)

    def order(self, batch: list[PendingAdmission], now: float) -> list[PendingAdmission]:
        """Sort one batch by the configured policy (stable, seq tiebreak)."""
        if self.ordering is AdmissionOrdering.FIFO:
            return sorted(batch, key=lambda p: p.seq)
        if self.ordering is AdmissionOrdering.MIN_LAXITY:
            return sorted(
                batch,
                key=lambda p: (
                    (p.ticket.request.t_end - now) - p.ticket.request.min_duration,
                    p.seq,
                ),
            )
        return sorted(batch, key=lambda p: (-p.ticket.request.volume, p.seq))
