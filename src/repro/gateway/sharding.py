"""Partitioning of access points across shard brokers.

Because every request touches exactly one ingress and one egress point and
Eq. 1 constrains only per-port capacity, the admission state of the whole
platform partitions cleanly: each port's timelines live on exactly one
shard, and a request concerns at most two shards.  :class:`ShardMap` is
the (deterministic, configuration-free) assignment both the gateway and
the analysis tooling use.
"""

from __future__ import annotations

from ..core.errors import ConfigurationError
from ..core.platform import Platform

__all__ = ["ShardMap"]


class ShardMap:
    """Deterministic round-robin assignment of ports to shards.

    Ingress point ``i`` lives on shard ``i % num_shards`` and egress point
    ``e`` on shard ``e % num_shards``.  Round-robin (rather than
    contiguous ranges) spreads the low-numbered, typically hottest ports
    of a workload across brokers.
    """

    __slots__ = ("platform", "num_shards")

    def __init__(self, platform: Platform, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        max_ports = max(platform.num_ingress, platform.num_egress)
        if num_shards > max_ports:
            raise ConfigurationError(
                f"{num_shards} shards over {max_ports} ports would leave empty shards"
            )
        self.platform = platform
        self.num_shards = num_shards

    def ingress_shard(self, i: int) -> int:
        """Shard owning ingress point ``i``."""
        if not (0 <= i < self.platform.num_ingress):
            raise ConfigurationError(f"no ingress port {i} on this platform")
        return i % self.num_shards

    def egress_shard(self, e: int) -> int:
        """Shard owning egress point ``e``."""
        if not (0 <= e < self.platform.num_egress):
            raise ConfigurationError(f"no egress port {e} on this platform")
        return e % self.num_shards

    def shard_of(self, side: str, port: int) -> int:
        """Shard owning ``port`` on ``side`` ('ingress' | 'egress')."""
        if side == "ingress":
            return self.ingress_shard(port)
        if side == "egress":
            return self.egress_shard(port)
        raise ConfigurationError(f"side must be 'ingress' or 'egress', got {side!r}")

    def ports_of(self, shard: int) -> tuple[list[int], list[int]]:
        """The (ingress, egress) port lists owned by ``shard``."""
        if not (0 <= shard < self.num_shards):
            raise ConfigurationError(f"no shard {shard} (have {self.num_shards})")
        ins = [i for i in range(self.platform.num_ingress) if i % self.num_shards == shard]
        outs = [e for e in range(self.platform.num_egress) if e % self.num_shards == shard]
        return ins, outs

    def is_local(self, ingress: int, egress: int) -> bool:
        """True when both ports of a pair live on the same shard."""
        return self.ingress_shard(ingress) == self.egress_shard(egress)
