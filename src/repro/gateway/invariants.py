"""Post-drill invariant checking for the admission gateway.

The paper's guarantee — *accepted means scheduled, no overcommit* — must
survive everything the chaos plane throws at the control plane: lost and
duplicated deliveries, partitions, brokers crashing between prepare and
commit.  :func:`check_gateway` audits a finished (or mid-flight) gateway
against the four invariants the design rests on:

1. **No overcommit** — no port's committed usage exceeds its capacity
   (Eq. 1 per shard slice), beyond the standard numerical slack.
2. **Presumed abort** — every prepared-never-committed hold is either
   still within its TTL, or gone (released / timeout-expired / wiped);
   a hold past its tolerance-aware expiry is a zombie, and at a
   quiesced end (``expect_quiesced=True``) no hold may be live at all.
3. **Ledger reconciliation** — every shard timeline carries *exactly*
   the bandwidth the decided reservations (minus their released tails)
   plus the live holds account for: no committed booking exists that the
   journal-derived reservation state does not explain, and nothing the
   state promises is missing from a ledger.
4. **Replay convergence** — when the gateway's journal is supplied,
   :meth:`~repro.gateway.gateway.Gateway.replay` rebuilds a
   ``snapshot()``-identical gateway, chaos, crash-mid-commit and all.

The checker never asserts; it collects human-readable violation strings
into an :class:`InvariantReport` so a chaos-matrix cell can carry them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..control.journal import Journal
from ..core.errors import InternalInvariantError
from ..core.ledger import CAPACITY_SLACK
from ..units import bandwidth_eq
from .broker import hold_expired
from .gateway import Gateway

__all__ = ["InvariantReport", "check_gateway"]


@dataclass
class InvariantReport:
    """What :func:`check_gateway` found."""

    violations: list[str] = field(default_factory=list)
    #: How much was audited (shards, ports, reservations, live holds...).
    checks: dict[str, int] = field(default_factory=dict)
    #: Flight-recorder dump captured at failure time (only when the
    #: audited gateway carries a recorder AND something was violated).
    #: Deliberately excluded from :meth:`to_dict` — it is a post-mortem
    #: artifact saved to its own file, not a matrix-cell payload.
    flight: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        """Did every invariant hold?"""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Escalate violations into an :class:`InternalInvariantError`."""
        if self.violations:
            raise InternalInvariantError(
                "gateway invariants violated:\n- " + "\n- ".join(self.violations)
            )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (chaos-matrix cells / CI artifacts)."""
        return {"ok": self.ok, "violations": list(self.violations), "checks": dict(self.checks)}


def _all_ports(gateway: Gateway) -> list[tuple[str, int]]:
    platform = gateway.platform
    return [("ingress", i) for i in range(platform.num_ingress)] + [
        ("egress", e) for e in range(platform.num_egress)
    ]


def _expected_intervals(gateway: Gateway) -> dict[tuple[str, int], list[tuple[float, float, float]]]:
    """Per-port ``(t0, t1, bw)`` intervals the reservation state explains.

    A live reservation occupies ``[σ, τ)``; one that ended early
    (cancel / abort / displacement) kept only ``[σ, min(τ, max(end, σ)))``
    — its tail was released back to the shards.  A stepwise (malleable)
    reservation contributes its profile segments instead of one constant
    rectangle, head-truncated the same way.  Live two-phase holds pin
    their window too (prepare books capacity immediately).
    """
    expected: dict[tuple[str, int], list[tuple[float, float, float]]] = {}
    for reservation in gateway.reservations():
        alloc = reservation.allocation
        if alloc is None:
            continue
        stop = reservation.terminated_at
        if alloc.profile is not None:
            kept = (
                alloc.profile
                if stop is None
                else alloc.profile.head_until(max(stop, alloc.sigma))
            )
            for s0, s1, rate in kept.segments:
                expected.setdefault(("ingress", alloc.ingress), []).append((s0, s1, rate))
                expected.setdefault(("egress", alloc.egress), []).append((s0, s1, rate))
            continue
        end = alloc.tau if stop is None else min(alloc.tau, max(stop, alloc.sigma))
        if end <= alloc.sigma:
            continue
        expected.setdefault(("ingress", alloc.ingress), []).append(
            (alloc.sigma, end, alloc.bw)
        )
        expected.setdefault(("egress", alloc.egress), []).append(
            (alloc.sigma, end, alloc.bw)
        )
    for broker in gateway.brokers:
        for hold in broker.holds():
            for s0, s1, rate in hold.steps():
                expected.setdefault((hold.side, hold.port), []).append((s0, s1, rate))
    return expected


def check_gateway(
    gateway: Gateway,
    *,
    journal: Journal | None = None,
    now: float | None = None,
    expect_quiesced: bool = False,
) -> InvariantReport:
    """Audit a gateway against the four admission invariants.

    Parameters
    ----------
    gateway:
        The gateway to audit (typically after a drill).
    journal:
        When given, invariant 4 replays it and compares snapshots.
    now:
        The audit instant for TTL checks; defaults to the gateway clock.
    expect_quiesced:
        The drill claims to have fully settled: any live hold at all is
        then a violation (every transaction must have committed, aborted
        or TTL-expired by now).
    """
    at = gateway.now if now is None else now
    report = InvariantReport()
    violations = report.violations

    # 1 — no overcommit on any shard slice.
    platform = gateway.platform
    caps = [platform.bin(i) for i in range(platform.num_ingress)] + [
        platform.bout(e) for e in range(platform.num_egress)
    ]
    tolerance = CAPACITY_SLACK * max(1.0, max(caps, default=1.0))
    for broker in gateway.brokers:
        overshoot = broker.max_overcommit()
        if overshoot > tolerance:
            violations.append(
                f"shard {broker.shard_id}: usage exceeds capacity by "
                f"{overshoot:.6g} MB/s (tolerance {tolerance:.3g})"
            )

    # 2 — presumed abort: no zombie holds, none at all when quiesced.
    live_holds = 0
    for broker in gateway.brokers:
        resolved = broker.resolutions()
        for hold in broker.holds():
            live_holds += 1
            if hold.hold_id in resolved:
                violations.append(
                    f"shard {broker.shard_id}: hold {hold.hold_id} is live "
                    f"but already resolved ({resolved[hold.hold_id]})"
                )
            if hold_expired(hold.expires, at):
                violations.append(
                    f"shard {broker.shard_id}: zombie hold {hold.hold_id} "
                    f"(rid {hold.rid}) past its TTL "
                    f"(expires {hold.expires:.6g} <= now {at:.6g})"
                )
            elif expect_quiesced:
                violations.append(
                    f"shard {broker.shard_id}: hold {hold.hold_id} "
                    f"(rid {hold.rid}) still live at a quiesced end"
                )

    # 3 — ledger reconciliation: timelines == reservations + live holds.
    expected = _expected_intervals(gateway)
    ports = _all_ports(gateway)
    for side, port in ports:
        intervals = expected.get((side, port), [])
        broker = gateway.coordinator.broker_for(side, port)
        edges = sorted({t for t0, t1, _ in intervals for t in (t0, t1)})
        samples = [lo + (hi - lo) / 2.0 for lo, hi in zip(edges, edges[1:])]
        samples.append((edges[-1] if edges else at) + 1.0)
        for t in samples:
            want = sum(bw for t0, t1, bw in intervals if t0 <= t < t1)
            got = broker.usage_at(side, port, t)
            if not bandwidth_eq(want, got):
                violations.append(
                    f"{side} port {port} at t={t:.6g}: ledger carries "
                    f"{got:.6g} MB/s but reservations+holds account for "
                    f"{want:.6g} MB/s"
                )
                break  # one sample per port is diagnosis enough

    # 4 — replay convergence (when the journal is available).
    replayed = 0
    if journal is not None:
        replayed = 1
        rebuilt = Gateway.replay(journal).snapshot()
        current = gateway.snapshot()
        if rebuilt != current:
            diverged = sorted(
                key
                for key in set(rebuilt) | set(current)
                if rebuilt.get(key) != current.get(key)
            )
            violations.append(
                "journal replay diverges on: " + ", ".join(diverged)
            )

    report.checks = {
        "shards": len(gateway.brokers),
        "ports": len(ports),
        "reservations": len(gateway.reservations()),
        "live_holds": live_holds,
        "replayed": replayed,
    }
    if report.violations and gateway.recorder is not None:
        # Post-mortem: freeze every component's recent tail the moment the
        # audit fails, before any further activity rolls the rings over.
        report.flight = gateway.recorder.dump(
            reason=f"invariant-violation: {report.violations[0]}", now=at
        )
    return report
