"""Cached per-port headroom index for fast admission pre-checks.

The earliest-fit search walks every usage breakpoint of both port
profiles.  Most admissions on a lightly-loaded port don't need that: if
the requested rate fits under ``capacity − peak_usage`` (the port's
all-time committed peak), it fits *everywhere*, so the very first
candidate start — the window opening — is feasible and is exactly what
the full search would return.  :class:`HeadroomIndex` is a thin wrapper
over the capacity kernel's cached peak query
(:meth:`~repro.core.capacity.CapacityProfile.global_max`, recomputed
lazily inside the kernel after mutations): the index keeps its own
per-port entry only so that cross-broker invalidation stays observable
(hit/miss/invalidation stats) and stale reads stay detectable
(:meth:`HeadroomIndex.verify_against`).  Brokers invalidate the entry on
every booking, hold, release, or degradation of the port.

The index is a pure accelerator: a hit must produce the identical
decision the full search would (the single-shard equivalence tests hold
the gateway to this), so it only answers on ports with **no registered
degradations** — time-varying capacity voids the "peak bounds every
window" argument.
"""

from __future__ import annotations

from ..core.capacity import CapacityProfile
from ..core.errors import InternalInvariantError

__all__ = ["HeadroomIndex"]


class HeadroomIndex:
    """Lazily-recomputed peak committed usage per (side, port)."""

    __slots__ = ("_peaks", "_hits", "_misses", "_invalidations")

    def __init__(self) -> None:
        self._peaks: dict[tuple[str, int], float] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0

    def peak(self, side: str, port: int, timeline: CapacityProfile) -> float:
        """The cached all-time peak usage of ``port``; recomputed on miss."""
        key = (side, port)
        cached = self._peaks.get(key)
        if cached is not None:
            self._hits += 1
            return cached
        self._misses += 1
        # The kernel caches global_max itself; this read re-primes both.
        peak = max(0.0, timeline.global_max())
        self._peaks[key] = peak
        return peak

    def invalidate(self, side: str, port: int) -> None:
        """Drop the cached peak after any mutation of the port's timeline."""
        self._invalidations += 1
        self._peaks.pop((side, port), None)

    def verify_against(self, side: str, port: int, timeline: CapacityProfile) -> None:
        """Assert the cached entry (if any) matches the timeline (test hook)."""
        cached = self._peaks.get((side, port))
        if cached is None:
            return
        actual = max(0.0, timeline.global_max())
        if abs(cached - actual) > 1e-9 * max(1.0, actual):
            raise InternalInvariantError(
                f"stale headroom cache on {side} {port}: cached {cached}, actual {actual}"
            )

    @property
    def stats(self) -> dict[str, int]:
        """Cache effectiveness counters (hits / misses / invalidations)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
        }
