"""Two-phase cross-shard reservation: prepare-hold → commit / abort.

A request whose ingress and egress live on different shards must change
two brokers' slices consistently.  The coordinator runs presumed-abort
two-phase commit:

1. **search** — earliest-fit over a :class:`~repro.gateway.view.PairLedgerView`
   stitching the two authoritative slices (shard-local pairs skip the
   protocol entirely and book atomically on their broker);
2. **prepare** — pin the chosen rate on the ingress broker, then the
   egress broker, as :class:`~repro.gateway.broker.Hold`\\ s with a TTL;
3. **commit** — both holds become committed bookings; or **abort** —
   every placed hold is released.

Failure semantics (what the fault drills exercise):

- a broker found down is retried per a
  :class:`~repro.schedulers.retry.BackoffSchedule`; brokers stay down for
  at least the rest of the simulated instant, so the budget exhausts
  deterministically and the request is rejected ``broker-unavailable``
  with every already-placed hold aborted;
- a broker *crash* wipes its own (volatile) holds — capacity returns
  instantly — and the coordinator aborts the surviving peer holds, so a
  crashed peer never strands capacity;
- a crashed **coordinator** is covered by the hold TTL: brokers
  timeout-abort uncommitted holds in their expiry sweep.

Every protocol call travels through a :class:`~repro.gateway.rpc.Channel`
(one per broker).  With no :class:`~repro.gateway.rpc.ChaosPolicy` the
channels are pure pass-throughs and behaviour is identical to calling the
brokers directly; with one, deliveries can be dropped, duplicated,
delayed or partitioned, and the coordinator additionally:

- treats a :class:`~repro.gateway.rpc.ChannelTimeout` like an
  unavailability, burning the same backoff budget, but escalates to
  :class:`~repro.gateway.rpc.ShardUnreachable` (reject reason
  ``shard-unreachable``) when the timeouts exhaust the attempts or the
  configured ``rpc_deadline`` of simulated waiting;
- **compensates** a partially-committed transaction: when a commit fails
  after a peer commit already succeeded, the committed booking is
  released through the channel's reliable compensation path, so a
  crash-mid-2PC never strands committed capacity;
- leaves a hold whose abort was lost to the broker's TTL sweep
  (presumed abort) and counts it as stranded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, TypeVar

from ..core.allocation import Allocation
from ..core.booking import (
    FitProbe,
    RejectReason,
    deadline_tolerance,
    earliest_fit,
    earliest_fit_profile,
    shape_profile,
)
from ..core.errors import ConfigurationError, InternalInvariantError
from ..core.capacity import fits_under
from ..core.profile import RateProfile
from ..core.request import Request
from ..obs.causal import child_of
from ..schedulers.retry import BackoffSchedule
from .broker import BrokerUnavailable, Hold, ShardBroker
from .rpc import Channel, ChannelTimeout, ChaosPolicy, ShardUnreachable
from .sharding import ShardMap
from .view import PairLedgerView

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..obs.causal import CausalObserver, TraceContext

__all__ = ["TwoPhaseCoordinator", "TwoPhaseOutcome"]

_T = TypeVar("_T")


@dataclass
class TwoPhaseOutcome:
    """Everything one admission attempt produced, for stats and telemetry."""

    allocation: Allocation | None
    probe: FitProbe
    #: Both ports on one shard (booked atomically, no protocol run).
    local: bool = False
    #: The cached headroom index answered without a full search.
    fastpath: bool = False
    #: Prepare/commit attempts burned on crashed brokers.
    retries: int = 0
    #: Simulated seconds of backoff the retries would have waited.
    retry_delay: float = 0.0
    #: A two-phase transaction was started and rolled back.
    aborted: bool = False
    holds: list[Hold] = field(default_factory=list)
    #: Simulated seconds burned waiting on lost deliveries (chaos only).
    chaos_wait: float = 0.0
    #: Committed bookings undone because a peer commit failed (chaos only).
    compensations: int = 0
    #: Holds whose abort delivery was lost — the broker TTL sweep will
    #: reclaim them (presumed abort).
    stranded: int = 0
    #: Ambiguous deliveries (every ack lost) the termination probe found
    #: had actually landed on the broker's durable log (chaos only).
    recovered: int = 0


class TwoPhaseCoordinator:
    """Admission coordinator over a fleet of shard brokers."""

    def __init__(
        self,
        brokers: Sequence[ShardBroker],
        shard_map: ShardMap,
        *,
        backoff: BackoffSchedule | None = None,
        hold_ttl: float = 300.0,
        chaos: ChaosPolicy | None = None,
        rpc_deadline: float | None = None,
        observer: CausalObserver | None = None,
    ) -> None:
        if rpc_deadline is not None and rpc_deadline <= 0:
            raise ConfigurationError(
                f"rpc_deadline must be positive, got {rpc_deadline}"
            )
        self.brokers = list(brokers)
        self.shard_map = shard_map
        self.backoff = backoff
        self.hold_ttl = hold_ttl
        self.chaos = chaos
        #: Simulated seconds of waiting (backoff + timeouts) a transaction
        #: may burn on one shard before it is declared unreachable.
        self.rpc_deadline = rpc_deadline
        self.channels = [
            Channel(broker, policy=chaos, observer=observer) for broker in brokers
        ]

    # ------------------------------------------------------------------
    def broker_for(self, side: str, port: int) -> ShardBroker:
        """The broker owning ``port`` on ``side``."""
        return self.brokers[self.shard_map.shard_of(side, port)]

    def channel_for(self, side: str, port: int) -> Channel:
        """The channel to the broker owning ``port`` on ``side``."""
        return self.channels[self.shard_map.shard_of(side, port)]

    def reserve(
        self,
        request: Request,
        rate_for: Callable[[float], float | None],
        now: float,
        *,
        ctx: TraceContext | None = None,
        profile: RateProfile | None = None,
        malleable: bool = False,
    ) -> TwoPhaseOutcome:
        """Admit one request: search, then place it consistently.

        Returns a :class:`TwoPhaseOutcome`; ``outcome.allocation`` is
        ``None`` on rejection with ``outcome.probe.reason`` set.
        ``ctx`` (when tracing) is the request's causal context; each
        protocol phase runs under a derived child context so faults land
        on the right hop of the timeline.

        ``profile`` places an explicitly requested stepwise shape
        (:func:`~repro.core.booking.earliest_fit_profile`) instead of the
        constant-rate search.  ``malleable`` enables the shaped fallback:
        when the constant search rejects for capacity, a profile is
        shaped into the pair's residual valleys before giving up — the
        constant path itself stays decision-identical.
        """
        ingress_broker = self.broker_for("ingress", request.ingress)
        egress_broker = self.broker_for("egress", request.egress)
        probe = FitProbe()
        outcome = TwoPhaseOutcome(allocation=None, probe=probe)
        outcome.local = ingress_broker is egress_broker

        if profile is not None:
            view = PairLedgerView(
                ingress_broker, egress_broker, request.ingress, request.egress
            )
            allocation = earliest_fit_profile(
                view, request, profile, not_before=request.t_start, probe=probe
            )
            ingress_broker.add_work(float(max(1, probe.candidates)))
            egress_broker.add_work(float(max(1, probe.candidates)))
            if allocation is None:
                return outcome
        else:
            allocation = self._fastpath(
                request, rate_for, ingress_broker, egress_broker, probe
            )
            if allocation is not None:
                outcome.fastpath = True
            else:
                if probe.reason is not None:
                    # The fast path already proved the window infeasible.
                    return outcome
                view = PairLedgerView(
                    ingress_broker, egress_broker, request.ingress, request.egress
                )
                allocation = earliest_fit(view, request, rate_for, probe=probe)
                ingress_broker.add_work(float(max(1, probe.candidates)))
                egress_broker.add_work(float(max(1, probe.candidates)))
                if allocation is None and malleable:
                    shaped_probe = FitProbe()
                    shaped = shape_profile(view, request, probe=shaped_probe)
                    ingress_broker.add_work(float(max(1, shaped_probe.candidates)))
                    egress_broker.add_work(float(max(1, shaped_probe.candidates)))
                    if shaped is not None:
                        allocation = Allocation.for_profile(request, shaped)
                        probe = shaped_probe
                        outcome.probe = shaped_probe
                    # On shaping failure the constant search's diagnostics
                    # are kept — they name the fuller port.
            if allocation is None:
                return outcome

        if outcome.local:
            self._place_local(
                self.channel_for("ingress", request.ingress),
                allocation,
                outcome,
                probe,
                now,
                ctx,
            )
        else:
            self._place_two_phase(allocation, now, outcome, probe, ctx)
        return outcome

    # ------------------------------------------------------------------
    def _fastpath(
        self,
        request: Request,
        rate_for: Callable[[float], float | None],
        ingress_broker: ShardBroker,
        egress_broker: ShardBroker,
        probe: FitProbe,
    ) -> Allocation | None:
        """Answer from the cached headroom index when it is conclusive.

        A hit must be decision-identical to the full search: it only fires
        on degradation-free ports where the chosen rate fits under
        ``capacity − all-time peak`` on both sides — then the window
        opening (the search's first candidate) is feasible and is exactly
        what the full search would return.
        """
        earliest = request.t_start
        latest = request.t_end - request.min_duration
        if latest < earliest:
            probe.reason = RejectReason.WINDOW_INFEASIBLE
            return None
        if ingress_broker.has_degradations(
            "ingress", request.ingress
        ) or egress_broker.has_degradations("egress", request.egress):
            return None
        bw = rate_for(earliest)
        if bw is None or bw <= 0:
            return None
        tau = earliest + request.volume / bw
        if tau > request.t_end + deadline_tolerance(request.t_end):
            return None
        platform = ingress_broker.platform
        cap_in = platform.bin(request.ingress)
        cap_out = platform.bout(request.egress)
        in_peak = ingress_broker.cached_peak("ingress", request.ingress)
        out_peak = egress_broker.cached_peak("egress", request.egress)
        if not fits_under(in_peak, bw, cap_in):
            return None
        if not fits_under(out_peak, bw, cap_out):
            return None
        probe.candidates = 1
        ingress_broker.add_work(1.0)
        egress_broker.add_work(1.0)
        return Allocation.for_request(request, bw, sigma=earliest)

    # ------------------------------------------------------------------
    def _place_local(
        self,
        channel: Channel,
        allocation: Allocation,
        outcome: TwoPhaseOutcome,
        probe: FitProbe,
        now: float,
        ctx: TraceContext | None = None,
    ) -> None:
        """Shard-local placement: one atomic pair booking, no protocol."""
        book_ctx = child_of(ctx, "book")
        segments = allocation.segments() if allocation.profile is not None else None
        try:
            self._with_retry(
                lambda: channel.book_pair(
                    allocation.ingress,
                    allocation.egress,
                    allocation.sigma,
                    allocation.tau,
                    allocation.bw,
                    rid=allocation.rid,
                    now=now,
                    ctx=book_ctx,
                    segments=segments,
                ),
                outcome,
            )
        except BrokerUnavailable:
            probe.reason = RejectReason.BROKER_UNAVAILABLE
            return
        except ShardUnreachable:
            if channel.booking_landed(allocation.rid, now=now, ctx=book_ctx):
                # Termination probe: the booking executed and only its
                # acknowledgements were lost.  Accepting is the only
                # correct answer — rejecting would strand the booked
                # capacity with no reservation to explain it.
                outcome.recovered += 1
                outcome.allocation = allocation
                return
            probe.reason = RejectReason.SHARD_UNREACHABLE
            return
        outcome.allocation = allocation

    def _place_two_phase(
        self,
        allocation: Allocation,
        now: float,
        outcome: TwoPhaseOutcome,
        probe: FitProbe,
        ctx: TraceContext | None = None,
    ) -> None:
        """Cross-shard placement: prepare both holds, then commit both."""
        expires = now + self.hold_ttl
        segments = allocation.segments() if allocation.profile is not None else None
        plan = (
            (
                self.channel_for("ingress", allocation.ingress),
                "ingress",
                allocation.ingress,
                RejectReason.INGRESS_FULL,
            ),
            (
                self.channel_for("egress", allocation.egress),
                "egress",
                allocation.egress,
                RejectReason.EGRESS_FULL,
            ),
        )
        placed: list[tuple[Channel, Hold]] = []
        for channel, side, port, full_reason in plan:
            prepare_ctx = child_of(ctx, f"prepare:{side}")
            try:
                hold = self._with_retry(
                    lambda c=channel, s=side, p=port, x=prepare_ctx: c.prepare(
                        s,
                        p,
                        allocation.sigma,
                        allocation.tau,
                        allocation.bw,
                        rid=allocation.rid,
                        expires=expires,
                        now=now,
                        ctx=x,
                        segments=segments,
                    ),
                    outcome,
                )
            except BrokerUnavailable:
                self._abort(placed, outcome, now, ctx)
                probe.reason = RejectReason.BROKER_UNAVAILABLE
                return
            except ShardUnreachable:
                self._abort(placed, outcome, now, ctx)
                probe.reason = RejectReason.SHARD_UNREACHABLE
                return
            if hold is None:
                # The search said it fits; a refusal here means the slice
                # moved between search and prepare (never within one batch,
                # but the protocol does not assume that).
                self._abort(placed, outcome, now, ctx)
                probe.reason = full_reason
                return
            placed.append((channel, hold))
            outcome.holds.append(hold)
        committed: list[tuple[Channel, Hold]] = []
        for channel, hold in placed:
            commit_ctx = child_of(ctx, f"commit:{hold.side}")
            try:
                self._with_retry(
                    lambda c=channel, h=hold, x=commit_ctx: c.commit(
                        h.hold_id, now=now, ctx=x
                    ),
                    outcome,
                )
            except (BrokerUnavailable, ShardUnreachable) as exc:
                if isinstance(exc, ShardUnreachable) and channel.resolved_committed(
                    hold.hold_id, now=now, ctx=commit_ctx
                ):
                    # Termination probe against the broker's durable
                    # resolution log: the commit landed and only its
                    # acknowledgements were lost.  The transaction
                    # marches on — presuming abort here would strand the
                    # committed booking.
                    outcome.recovered += 1
                    committed.append((channel, hold))
                    continue
                # Atomicity under partial commit: undo the peer bookings
                # that already committed (reliable compensation records),
                # then abort whatever is still held.
                self._compensate(committed, outcome, now, ctx)
                self._abort(placed[len(committed):], outcome, now, ctx)
                probe.reason = (
                    RejectReason.SHARD_UNREACHABLE
                    if isinstance(exc, ShardUnreachable)
                    else RejectReason.BROKER_UNAVAILABLE
                )
                return
            committed.append((channel, hold))
        outcome.allocation = allocation

    def _abort(
        self,
        placed: list[tuple[Channel, Hold]],
        outcome: TwoPhaseOutcome,
        now: float,
        ctx: TraceContext | None = None,
    ) -> None:
        """Roll the transaction back: release every hold we placed.

        ``abort_hold`` is served even by a crashed broker (its crash
        already wiped the hold; the call is then a no-op), so rollback
        never strands capacity — unless the abort *delivery* itself is
        lost, in which case the hold is stranded on purpose and the
        broker's TTL sweep reclaims it (presumed abort).
        """
        for channel, hold in placed:
            try:
                channel.abort_hold(
                    hold.hold_id, now=now, ctx=child_of(ctx, f"abort:{hold.side}")
                )
            except ChannelTimeout:
                outcome.stranded += 1
        outcome.aborted = True

    def _compensate(
        self,
        committed: list[tuple[Channel, Hold]],
        outcome: TwoPhaseOutcome,
        now: float,
        ctx: TraceContext | None = None,
    ) -> None:
        """Undo committed halves of a failed transaction (never lost)."""
        for channel, hold in committed:
            channel.release(
                hold.side,
                hold.port,
                hold.t0,
                hold.t1,
                hold.bw,
                now=now,
                ctx=child_of(ctx, f"release:{hold.side}"),
                segments=hold.segments,
            )
            outcome.compensations += 1

    def _with_retry(self, call: Callable[[], _T], outcome: TwoPhaseOutcome) -> _T:
        """Run a broker call, burning the backoff budget on failures.

        Within one simulated instant a crashed broker cannot recover, so
        the loop deterministically accumulates the retry count and the
        backoff delay the attempts would have waited, then re-raises.
        Lost deliveries (:class:`ChannelTimeout`) burn the same attempt
        budget plus their timeout cost in simulated waiting; when the
        attempts run out on a timeout, or the accumulated waiting would
        exceed ``rpc_deadline``, the shard is declared
        :class:`ShardUnreachable` — a real deadline, not a wedged batch.
        """
        attempt = 0
        waited = 0.0
        timeouts = 0
        while True:
            try:
                return call()
            except (BrokerUnavailable, ChannelTimeout) as exc:
                attempt += 1
                if isinstance(exc, ChannelTimeout):
                    timeouts += 1
                    waited += exc.cost
                    outcome.chaos_wait += exc.cost
                if self.backoff is None or attempt >= self.backoff.max_attempts:
                    if timeouts:
                        raise ShardUnreachable(
                            f"gave up after {attempt} attempts "
                            f"({timeouts} lost deliveries)"
                        ) from exc
                    raise
                delay = self.backoff.delay(attempt)
                if (
                    self.rpc_deadline is not None
                    and waited + delay > self.rpc_deadline
                ):
                    raise ShardUnreachable(
                        f"rpc deadline {self.rpc_deadline}s exhausted after "
                        f"{attempt} attempts ({waited:.1f}s waited)"
                    ) from exc
                outcome.retries += 1
                outcome.retry_delay += delay
                waited += delay

    # ------------------------------------------------------------------
    def expire_holds(self, now: float) -> int:
        """Sweep every broker for timed-out holds; returns the count."""
        expired = 0
        for broker in self.brokers:
            expired += len(broker.expire_holds(now))
        return expired

    def release_pair(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> None:
        """Release a committed pair booking back to the owning brokers.

        ``segments`` releases a stepwise profile instead of the constant
        ``(t0, t1, bw)`` rectangle (the malleable tail-release path).
        """
        if t1 <= t0:
            raise InternalInvariantError(f"empty release window [{t0}, {t1})")
        self.broker_for("ingress", ingress).release(
            "ingress", ingress, t0, t1, bw, segments=segments
        )
        self.broker_for("egress", egress).release(
            "egress", egress, t0, t1, bw, segments=segments
        )

    def restore_pair(
        self,
        ingress: int,
        egress: int,
        segments: tuple[tuple[float, float, float], ...],
    ) -> None:
        """Re-add segments on both owning brokers without a capacity probe.

        The reshape path's inverse of :meth:`release_pair` — used to roll
        a released tail back when shaping failed, and to commit a shaped
        profile that fits by construction.
        """
        self.broker_for("ingress", ingress).restore("ingress", ingress, segments)
        self.broker_for("egress", egress).restore("egress", egress, segments)
