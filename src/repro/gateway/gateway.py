"""The client-facing admission gateway: batched, sharded, journaled.

:class:`Gateway` offers the :class:`~repro.control.service.ReservationService`
surface — submit / cancel / abort / degrade, with journaling and crash
:meth:`Gateway.replay` — but serves it through the sharded pipeline:

1. the **edge** (optional per-client token bucket) refuses out-of-quota
   submissions before they cost any admission work;
2. the **batcher** coalesces submissions arriving at the same simulated
   instant, up to ``batch_size``, releasing them in the configured order
   (FIFO / min-laxity / max-value);
3. the **coordinator** admits each batched request against the owning
   shard brokers — shard-local pairs atomically, cross-shard pairs
   through the two-phase prepare/commit protocol.

Determinism: the gateway clock only moves forward; a pending batch is
force-flushed *before* the clock advances (a batch never mixes
instants), and every externally-triggered state change — submission,
explicit drain, cancel, abort, degradation, broker crash/restart — is
journaled, so :meth:`replay` rebuilds a state-identical gateway
(``snapshot()`` equality, mirroring the service's recovery contract).

With ``num_shards=1`` and ``batch_size=1`` every admission is a
shard-local booking decided immediately in submission order against one
authoritative ledger: decision-for-decision the monolithic service (the
equivalence property tests hold the gateway to this).

The gateway also maintains a **simulated cost model** for the benchmark:
brokers conceptually run in parallel, so each flush contributes its
coordinator overhead plus the *maximum* work any broker did for the
batch; :attr:`Gateway.simulated_cost` is the accumulated critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..control.journal import Journal
from ..control.service import Reservation, ReservationState
from ..core.booking import RejectReason, deadline_tolerance, shape_profile
from ..core.errors import ConfigurationError, InternalInvariantError, InvalidRequestError
from ..core.ledger import CAPACITY_SLACK, Degradation
from ..core.platform import Platform
from ..core.profile import RateProfile
from ..core.request import Request
from ..obs.causal import CausalObserver, TraceContext
from ..obs.recorder import FlightRecorder
from ..obs.slo import SloWatchdog
from ..obs.telemetry import Telemetry, get_telemetry
from ..schedulers.policies import BandwidthPolicy, MinRatePolicy, policy_from_name
from ..schedulers.retry import BackoffSchedule
from .batch import AdmissionOrdering, Batcher, PendingAdmission
from .edge import EdgeLimit, EdgeLimiter
from .rpc import ChaosPolicy
from .sharding import ShardMap
from .broker import ShardBroker
from .twophase import TwoPhaseCoordinator
from .view import PairLedgerView

__all__ = ["Gateway", "GatewayStats", "Ticket"]

#: Simulated coordinator cost per flush and per batched request — the
#: serial fraction of the pipeline in the cost model.
FLUSH_OVERHEAD = 1.0
PER_REQUEST_OVERHEAD = 0.25


@dataclass
class GatewayStats:
    """Counters a gateway accumulates (all deterministic)."""

    submits: int = 0
    accepted: int = 0
    rejected: int = 0
    edge_refused: int = 0
    batches: int = 0
    local: int = 0
    cross_shard: int = 0
    fastpath_hits: int = 0
    prepare_retries: int = 0
    retry_delay_total: float = 0.0
    twophase_aborts: int = 0
    holds_expired: int = 0
    cancelled: int = 0
    aborted: int = 0
    degradations: int = 0
    displaced: int = 0
    #: Live reservations whose tail was re-shaped instead of displaced.
    reshaped: int = 0
    crashes: int = 0
    restarts: int = 0
    #: Requests rejected ``shard-unreachable`` (chaos: retry/deadline out).
    shard_unreachable: int = 0
    #: Rejections parked in the re-admission backlog.
    backlogged: int = 0
    #: Backlogged requests successfully re-admitted later.
    readmitted: int = 0
    #: Committed bookings undone after a partial two-phase commit.
    compensations: int = 0
    #: Holds whose abort delivery was lost (TTL sweep reclaims them).
    stranded_holds: int = 0
    #: Ambiguous deliveries the termination probe resolved as landed.
    recovered_deliveries: int = 0
    #: Simulated seconds burned waiting on lost deliveries.
    chaos_wait_total: float = 0.0
    # Mirrors of the channels' chaos counters (absolute, not deltas).
    chaos_drops: int = 0
    chaos_duplicates: int = 0
    chaos_delays: int = 0
    chaos_partitioned: int = 0
    chaos_crashes: int = 0

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form (snapshot / reports)."""
        return dict(vars(self))


@dataclass
class Ticket:
    """A client's handle on one submission, pending until its batch flushes."""

    seq: int
    client: str
    request: Request
    #: Refused by the per-client edge limiter (never entered a batch).
    edge_refused: bool = False
    #: Seconds until the refused volume would conform again (edge refusals
    #: only; ``inf`` when the volume exceeds the burst).  The service
    #: plane surfaces this as an HTTP 429 ``Retry-After`` hint.
    retry_after: float | None = None
    #: The admission decision; ``None`` while the batch is still open.
    reservation: Reservation | None = None
    origin: int | None = None
    #: The stepwise shape the client asked for (``None`` = constant rate).
    profile: RateProfile | None = None

    @property
    def decided(self) -> bool:
        """Has the batch containing this submission been flushed?"""
        return self.edge_refused or self.reservation is not None

    @property
    def rid(self) -> int:
        """The reservation id assigned at submission."""
        return self.request.rid


class Gateway:
    """Sharded, batched admission gateway over one platform.

    Parameters
    ----------
    platform:
        Port capacities (shared, read-only).
    num_shards:
        Shard broker count; ports are assigned round-robin.
    batch_size:
        Admissions per batch; ``1`` decides every submission immediately.
    ordering:
        Intra-batch admission order (``fifo`` / ``min-laxity`` / ``max-value``).
    policy:
        Bandwidth assignment policy (default: deadline-implied minimum rate).
    edge:
        Optional per-client token-bucket limit applied before batching.
    hold_ttl:
        Seconds an uncommitted two-phase hold survives before brokers
        timeout-abort it.
    backoff:
        Retry schedule for two-phase calls against a crashed broker
        (default: 3 attempts, 5 s base, no jitter — deterministic).
    chaos:
        Optional :class:`~repro.gateway.rpc.ChaosPolicy` injected into
        the coordinator↔broker channels (``None`` keeps them pure
        pass-throughs — bit-identical to a gateway without the layer).
    rpc_deadline:
        Simulated seconds of waiting (backoff + delivery timeouts) a
        transaction may burn on one shard before it rejects
        ``shard-unreachable`` instead of wedging the batch.
    backlog_limit:
        Re-admission backlog depth for requests rejected only because a
        shard was down or unreachable; ``0`` (default) disables it.
        Backlogged requests are retried — as fresh, window-clipped
        submissions linked via ``origin`` — whenever the clock advances
        or a broker restarts and their shards answer again.
    journal / telemetry:
        As on :class:`~repro.control.service.ReservationService`.
    recorder:
        Optional :class:`~repro.obs.recorder.FlightRecorder` — bounded
        per-component ring buffers of recent causal events, dumped by
        :func:`~repro.gateway.invariants.check_gateway` on violation and
        by drills on demand.  Always on when attached (records even
        under :class:`~repro.obs.telemetry.NullTelemetry`); never
        journaled, snapshotted or replayed.
    slo:
        Optional :class:`~repro.obs.slo.SloWatchdog` evaluated at every
        batch flush over windowed admission/health aggregates; breaches
        are edge-triggered events, never admission decisions.
    on_decision:
        Callback ``(reservation, now)`` invoked for every flushed
        decision — the fault drill uses it to sample mid-flight aborts.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        num_shards: int = 1,
        batch_size: int = 1,
        ordering: str | AdmissionOrdering = AdmissionOrdering.FIFO,
        policy: BandwidthPolicy | None = None,
        edge: EdgeLimit | None = None,
        hold_ttl: float = 300.0,
        backoff: BackoffSchedule | None = None,
        chaos: ChaosPolicy | None = None,
        rpc_deadline: float | None = None,
        backlog_limit: int = 0,
        malleable: bool = False,
        journal: Journal | None = None,
        telemetry: Telemetry | None = None,
        recorder: FlightRecorder | None = None,
        slo: SloWatchdog | None = None,
        on_decision=None,
    ) -> None:
        if hold_ttl <= 0:
            raise ConfigurationError(f"hold_ttl must be positive, got {hold_ttl}")
        if backlog_limit < 0:
            raise ConfigurationError(f"backlog_limit must be >= 0, got {backlog_limit}")
        self.platform = platform
        self.shard_map = ShardMap(platform, num_shards)
        self.brokers = [ShardBroker(s, self.shard_map) for s in range(num_shards)]
        self.policy = policy or MinRatePolicy()
        self.backoff = backoff if backoff is not None else BackoffSchedule(
            base=5.0, multiplier=2.0, max_attempts=3
        )
        self.chaos = chaos
        self.rpc_deadline = rpc_deadline
        self.backlog_limit = backlog_limit
        #: Opt-in stepwise-profile admission: shaped fallback after a
        #: constant-rate reject, and reshape-before-displace on degrade.
        #: Off (the default) the gateway is decision-identical to before.
        self.malleable = malleable
        self.recorder = recorder
        self.slo = slo
        self._observer = CausalObserver(lambda: self.telemetry, recorder=recorder)
        #: Root trace context per rid, for joining later lifecycle hops.
        self._trace_roots: dict[int, TraceContext] = {}
        # The coordinator gets its own copy of the broker list: the shard
        # set is fixed at construction, and a shared alias would let either
        # side mutate the other's view once brokers move out-of-process.
        self.coordinator = TwoPhaseCoordinator(
            list(self.brokers),
            self.shard_map,
            backoff=self.backoff,
            hold_ttl=hold_ttl,
            chaos=chaos,
            rpc_deadline=rpc_deadline,
            observer=self._observer,
        )
        self.batcher = Batcher(batch_size, AdmissionOrdering.from_name(ordering))
        self.edge = EdgeLimiter(edge) if edge is not None else None
        self.hold_ttl = hold_ttl
        self.stats = GatewayStats()
        self._backlog: list[int] = []
        self._chaos_seen: dict[str, float] = {}
        self._edge_seen: dict[str, float] = {}
        self._overcommit_hwm = 0.0
        self.on_decision = on_decision
        self.journal = journal
        self._telemetry = telemetry
        self._clock = float("-inf")
        self._batch_opened = float("-inf")
        self._next_seq = 0
        self._next_rid = 0
        self._reservations: dict[int, Reservation] = {}
        self._tickets: dict[int, Ticket] = {}
        self._degradations: list[Degradation] = []
        #: Accumulated simulated critical-path cost (see module docstring).
        self.simulated_cost = 0.0
        if journal is not None:
            header: dict[str, Any] = {
                "kind": "gateway",
                "platform": platform.to_dict(),
                "num_shards": num_shards,
                "batch_size": batch_size,
                "ordering": self.batcher.ordering.value,
                "policy": self.policy.name,
                "hold_ttl": hold_ttl,
                "backoff": {
                    "base": self.backoff.base,
                    "multiplier": self.backoff.multiplier,
                    "max_attempts": self.backoff.max_attempts,
                    "jitter": self.backoff.jitter,
                },
                "edge": edge.to_dict() if edge is not None else None,
                "chaos": chaos.to_dict() if chaos is not None else None,
                "rpc_deadline": rpc_deadline,
                "backlog_limit": backlog_limit,
            }
            if malleable:
                # Key present only when the feature is on, so journals of
                # constant-rate gateways stay byte-identical.
                header["malleable"] = True
            journal.set_header(header)

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Last observed gateway time."""
        return self._clock

    @property
    def num_shards(self) -> int:
        """Number of shard brokers."""
        return len(self.brokers)

    @property
    def telemetry(self) -> Telemetry:
        """The handle decisions are reported through (instance or process-wide)."""
        return self._telemetry if self._telemetry is not None else get_telemetry()

    def _advance(self, now: float) -> None:
        """Move the clock forward, flushing the previous instant's batch."""
        if now < self._clock:
            raise ConfigurationError(f"time went backwards: {now} < {self._clock}")
        moved = now > self._clock
        if moved and len(self.batcher):
            self._flush(self._clock)
        self._clock = now
        expired = self.coordinator.expire_holds(now)
        if expired:
            self.stats.holds_expired += expired
            tel = self.telemetry
            if tel.enabled:
                tel.metrics.counter(
                    "gateway_holds_expired_total",
                    "Two-phase holds timeout-aborted by the brokers' expiry sweep.",
                ).inc(float(expired))
        if moved and self._backlog:
            self._readmit(now)

    def _take_rid(self) -> int:
        rid = self._next_rid
        self._next_rid += 1
        return rid

    def _record(self, op: str, now: float, **args: Any) -> None:
        if self.journal is not None:
            self.journal.append(op, now, **args)

    # ------------------------------------------------------------------
    # Causal tracing (observability only: never touches decisions,
    # journal, snapshot or replay)
    # ------------------------------------------------------------------
    def _tracing(self) -> bool:
        """Should this gateway mint trace contexts at all?"""
        return self.recorder is not None or self.telemetry.enabled

    def _trace_event(
        self,
        component: str,
        now: float,
        kind: str,
        ctx: TraceContext | None,
        **fields: Any,
    ) -> None:
        """One gateway-side hop on a request's causal timeline."""
        if ctx is None:
            return
        merged = {**ctx.fields(), **fields}
        tel = self.telemetry
        if tel.enabled:
            tel.tracer.instant(kind, now, cat="causal", **merged)
        if self.recorder is not None:
            self.recorder.record(component, now, kind, **merged)

    def _flight(self, component: str, now: float, kind: str, **fields: Any) -> None:
        """A component-level (not request-level) flight-recorder row."""
        if self.recorder is not None:
            self.recorder.record(component, now, kind, **fields)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------
    def submit(
        self,
        *,
        ingress: int,
        egress: int,
        volume: float,
        deadline: float,
        now: float,
        max_rate: float | None = None,
        client: str = "default",
        origin: int | None = None,
        profile: RateProfile | list[Any] | None = None,
    ) -> Ticket:
        """Enqueue a transfer; the decision lands when its batch flushes.

        With ``batch_size=1`` the batch flushes inside this call and the
        returned ticket is already decided.  ``origin`` links a rebooking
        to the reservation it replaces, as on the service.  ``profile``
        requests a stepwise (malleable) rate shape — absolute-time
        ``(t0, t1, rate)`` segments delivering exactly ``volume`` MB —
        placed as-given or slid later within the window.
        """
        self._advance(now)
        if max_rate is None:
            max_rate = self.platform.bottleneck(ingress, egress)
        if origin is not None and origin not in self._reservations:
            raise KeyError(f"unknown origin reservation {origin}")
        wanted = RateProfile.maybe_from(profile)
        if wanted is not None and not wanted.conserves(volume):
            raise InvalidRequestError(
                f"profile delivers {wanted.volume} MB but the submission asks for {volume} MB"
            )
        # Structural validation happens in the Request constructor and
        # propagates as InvalidRequestError (malformed, not rejected) —
        # nothing is journaled for a submission that never existed, so the
        # rid is only consumed after construction succeeds (a burned rid
        # with no journal entry would diverge on replay).
        rid = self._next_rid
        request = Request(
            rid=rid,
            ingress=ingress,
            egress=egress,
            volume=volume,
            t_start=now,
            t_end=deadline,
            max_rate=max_rate,
        )
        self._next_rid += 1
        seq = self._next_seq
        self._next_seq += 1
        ticket = Ticket(
            seq=seq, client=client, request=request, origin=origin, profile=wanted
        )
        self._tickets[rid] = ticket
        args: dict[str, Any] = {
            "rid": rid,
            "client": client,
            "ingress": ingress,
            "egress": egress,
            "volume": volume,
            "deadline": deadline,
            "max_rate": max_rate,
            "origin": origin,
        }
        if wanted is not None:
            args["profile"] = wanted.to_list()
        self._record("gw_submit", now, **args)
        self.stats.submits += 1
        ctx: TraceContext | None = None
        if self._tracing():
            # A rebooking joins the original request's trace so one
            # `grid-obs explain` shows the whole lineage.
            parent = self._trace_roots.get(origin) if origin is not None else None
            ctx = (
                parent.child(f"rebook:{rid}")
                if parent is not None
                else TraceContext.root(rid)
            )
            self._trace_roots[rid] = ctx
            self._trace_event(
                "gateway",
                now,
                "gateway.trace.submit",
                ctx,
                rid=rid,
                client=client,
                ingress=ingress,
                egress=egress,
                origin=origin,
            )
        if self.edge is not None and not self.edge.admit(client, volume, now):
            ticket.edge_refused = True
            ticket.retry_after = self.edge.retry_after(client, volume, now)
            self.stats.edge_refused += 1
            self._trace_event(
                "gateway", now, "gateway.trace.edge_refused", ctx, rid=rid, client=client
            )
            tel = self.telemetry
            if tel.enabled:
                tel.metrics.counter(
                    "gateway_edge_refusals_total",
                    "Submissions refused by the per-client edge token bucket.",
                ).inc(client=client)
                tel.emit(
                    "gateway.edge_refusal", now, rid=rid, client=client, volume=volume
                )
            return ticket
        if not len(self.batcher):
            self._batch_opened = now
        self.batcher.enqueue(PendingAdmission(seq=seq, ticket=ticket))
        self._trace_event(
            "gateway", now, "gateway.trace.enqueued", ctx, rid=rid, pending=len(self.batcher)
        )
        if self.batcher.full:
            self._flush(now)
        return ticket

    def submit_many(
        self,
        submissions: list[dict[str, Any]],
        *,
        now: float,
        drain: bool = True,
    ) -> list[Ticket]:
        """Admit a whole wave of submissions at one instant, then decide.

        This is the service plane's hot path: the asyncio frontier
        coalesces concurrent in-flight HTTP submits into one wave so the
        admission pipeline sees full batches (the batcher still splits the
        wave at ``batch_size``) instead of degenerate singletons.  Each
        entry is a keyword dict for :meth:`submit` minus ``now``; with
        ``drain=True`` (default) the trailing partial batch is flushed so
        every returned ticket is decided.

        Runs synchronously on the caller's thread — safe to call from a
        single-threaded event loop between ``await`` points, because
        nothing here yields.
        """
        tickets = [self.submit(**fields, now=now) for fields in submissions]
        if drain and len(self.batcher):
            self.drain(now)
        return tickets

    def drain(self, now: float | None = None) -> None:
        """Force the open batch to decide now (journaled — order matters)."""
        at = self._clock if now is None else now
        self._advance(at)
        self._record("gw_drain", at)
        self._flush(at)

    def _flush(self, now: float) -> None:
        """Decide every pending admission of the open batch, in batch order."""
        batch = self.batcher.drain(now)
        if not batch:
            return
        work_before = [broker.work for broker in self.brokers]
        for pending in batch:
            self._decide(pending.ticket, now)
        deltas = [b.work - w0 for b, w0 in zip(self.brokers, work_before)]
        self.simulated_cost += (
            FLUSH_OVERHEAD + PER_REQUEST_OVERHEAD * len(batch) + max(deltas)
        )
        self.stats.batches += 1
        tel = self.telemetry
        health = (
            self._health_snapshot(now)
            if (tel.enabled or self.slo is not None)
            else None
        )
        if tel.enabled:
            tel.metrics.counter(
                "gateway_batches_total", "Admission batches flushed, by ordering."
            ).inc(ordering=self.batcher.ordering.value)
            tel.metrics.histogram(
                "gateway_batch_occupancy", "Requests per flushed batch."
            ).observe(float(len(batch)))
            tel.tracer.complete(
                "gateway.batch",
                self._batch_opened,
                now,
                cat="gateway",
                size=len(batch),
                ordering=self.batcher.ordering.value,
            )
            tel.emit(
                "gateway.batch",
                now,
                size=len(batch),
                ordering=self.batcher.ordering.value,
                critical_path=max(deltas),
                **(health or {}),
            )
        if self.slo is not None and health is not None:
            for metric in ("backlog_depth", "max_hold_age", "overcommit_proximity"):
                self.slo.sample(metric, now, health[metric])
            self.slo.evaluate(now, telemetry=tel, recorder=self.recorder)
        self._publish_chaos()

    def _decide(self, ticket: Ticket, now: float) -> None:
        """Run one admission through the coordinator; publish the outcome."""
        request = ticket.request
        ctx = self._trace_roots.get(request.rid)
        outcome = self.coordinator.reserve(
            request,
            lambda sigma: self.policy.assign(request, sigma),
            now,
            ctx=ctx,
            profile=ticket.profile,
            malleable=self.malleable,
        )
        reservation = Reservation(
            rid=request.rid,
            request=request,
            allocation=outcome.allocation,
            origin=ticket.origin,
            reject_reason=outcome.probe.reason,
        )
        self._reservations[request.rid] = reservation
        ticket.reservation = reservation
        if outcome.local:
            self.stats.local += 1
        else:
            self.stats.cross_shard += 1
        if outcome.fastpath:
            self.stats.fastpath_hits += 1
        self.stats.prepare_retries += outcome.retries
        self.stats.retry_delay_total += outcome.retry_delay
        self.stats.chaos_wait_total += outcome.chaos_wait
        self.stats.compensations += outcome.compensations
        self.stats.stranded_holds += outcome.stranded
        self.stats.recovered_deliveries += outcome.recovered
        if outcome.aborted:
            self.stats.twophase_aborts += 1
        if outcome.allocation is not None:
            self.stats.accepted += 1
            if self.telemetry.enabled or self.slo is not None:
                self._note_port_peaks(request.ingress, request.egress)
        else:
            self.stats.rejected += 1
            if outcome.probe.reason is RejectReason.SHARD_UNREACHABLE:
                self.stats.shard_unreachable += 1
            self._maybe_backlog(ticket, outcome.probe.reason)
        # Admission latency in simulated time: queueing since the request's
        # window opened plus the retry backoff and chaos waiting its
        # transaction burned.
        latency = (now - request.t_start) + outcome.retry_delay + outcome.chaos_wait
        accepted = outcome.allocation is not None
        reason = outcome.probe.reason.value if outcome.probe.reason is not None else None
        if self.slo is not None:
            self.slo.admission(now, accepted=accepted, latency=latency)
        self._trace_event(
            "gateway",
            now,
            "gateway.trace.decision",
            ctx,
            rid=request.rid,
            outcome="accepted" if accepted else "rejected",
            reason=None if accepted else reason,
            latency=latency,
        )
        self._observe_decision(reservation, outcome, now, latency)
        if self.on_decision is not None:
            self.on_decision(reservation, now)

    def _maybe_backlog(self, ticket: Ticket, reason: RejectReason | None) -> None:
        """Park a broker-down/unreachable rejection for later re-admission.

        Only *infrastructure* rejections qualify — a capacity or window
        reject is final.  Re-admissions themselves (``origin`` set) are
        not parked again: their backlog entry is the original rid.
        """
        if self.backlog_limit <= 0 or ticket.origin is not None:
            return
        if reason not in (
            RejectReason.BROKER_UNAVAILABLE,
            RejectReason.SHARD_UNREACHABLE,
        ):
            return
        if len(self._backlog) >= self.backlog_limit:
            return
        self._backlog.append(ticket.rid)
        self.stats.backlogged += 1
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "gateway_backlogged_total",
                "Broker-down rejections parked for re-admission.",
            ).inc()

    def _observe_decision(
        self, reservation: Reservation, outcome, now: float, latency: float
    ) -> None:
        tel = self.telemetry
        if not tel.enabled:
            return
        alloc = reservation.allocation
        decided = "accepted" if alloc is not None else "rejected"
        tel.metrics.counter(
            "gateway_submits_total", "Gateway admissions by outcome."
        ).inc(outcome=decided)
        tel.metrics.counter(
            "gateway_admissions_total", "Gateway admissions by placement path."
        ).inc(path="local" if outcome.local else "cross-shard")
        tel.metrics.counter(
            "gateway_fastpath_total", "Headroom-index fast-path answers."
        ).inc(outcome="hit" if outcome.fastpath else "miss")
        if outcome.retries:
            tel.metrics.counter(
                "gateway_prepare_retries_total",
                "Two-phase attempts burned on crashed brokers.",
            ).inc(float(outcome.retries))
        if outcome.aborted:
            tel.metrics.counter(
                "gateway_twophase_aborts_total",
                "Two-phase transactions rolled back with holds released.",
            ).inc()
        tel.metrics.histogram(
            "gateway_admission_latency_seconds",
            "Admission latency in simulated seconds (queueing + retries + chaos).",
        ).observe(latency)
        fields: dict[str, Any] = {
            "rid": reservation.rid,
            "ingress": reservation.request.ingress,
            "egress": reservation.request.egress,
            "volume": reservation.request.volume,
            "deadline": reservation.request.t_end,
            "outcome": decided,
            "path": "local" if outcome.local else "cross-shard",
            "fastpath": outcome.fastpath,
            "candidates": outcome.probe.candidates,
            "latency": latency,
        }
        trace_ctx = self._trace_roots.get(reservation.rid)
        if trace_ctx is not None:
            fields.update(trace_ctx.fields())
        if alloc is not None:
            fields.update(sigma=alloc.sigma, tau=alloc.tau, bw=alloc.bw)
        else:
            reason = (
                outcome.probe.reason.value
                if outcome.probe.reason is not None
                else "unspecified"
            )
            fields["reason"] = reason
            tel.metrics.counter(
                "gateway_rejects_total", "Gateway rejections by reason."
            ).inc(reason=reason)
        tel.emit("gateway.submit", now, **fields)

    # ------------------------------------------------------------------
    # Degraded-mode re-admission (the backlog)
    # ------------------------------------------------------------------
    def _readmit(self, now: float) -> None:
        """Retry backlogged rejections whose shards answer again.

        Mirrors the service backlog: each entry is retried as a fresh,
        window-clipped request (new rid, ``origin`` = the rejected rid)
        once a **read-only** serviceability probe says both owning shards
        are up and unpartitioned; entries whose deadline can no longer be
        met even at MaxRate are dropped.  Nothing here is journaled —
        re-admission is a deterministic function of the op stream (and
        the chaos seed), so :meth:`replay` reproduces it.
        """
        keep: list[int] = []
        admitted: list[tuple[int, int]] = []
        work_before = [broker.work for broker in self.brokers]
        attempted = 0
        for rid in self._backlog:
            original = self._reservations[rid].request
            tol = deadline_tolerance(original.t_end)
            if now + original.volume / original.max_rate > original.t_end + tol:
                continue  # deadline unreachable: give the request up
            in_ok = self.coordinator.channel_for("ingress", original.ingress)
            out_ok = self.coordinator.channel_for("egress", original.egress)
            if not (in_ok.serviceable(now) and out_ok.serviceable(now)):
                keep.append(rid)
                continue
            # Every attempt burns a fresh rid — the rid doubles as the
            # broker-side idempotency key, and a failed attempt leaves
            # replay records keyed by it on the brokers.  Reusing the rid
            # for the next attempt would answer a *different* request from
            # a stale record (a compensated commit replays as "committed"
            # and books nothing).  Failed attempts therefore leave rid
            # gaps; replay burns them identically.
            candidate = Request(
                rid=self._take_rid(),
                ingress=original.ingress,
                egress=original.egress,
                volume=original.volume,
                t_start=max(now, original.t_start),
                t_end=original.t_end,
                max_rate=original.max_rate,
            )
            attempted += 1
            ctx: TraceContext | None = None
            if self._tracing():
                # Re-admissions stay on the original request's trace: the
                # fresh rid is one more hop of the same causal story.
                root = self._trace_roots.get(rid)
                ctx = (
                    root.child(f"readmit:{candidate.rid}")
                    if root is not None
                    else TraceContext.root(candidate.rid)
                )
                self._trace_roots[candidate.rid] = ctx
                self._trace_event(
                    "gateway",
                    now,
                    "gateway.trace.readmit_attempt",
                    ctx,
                    rid=candidate.rid,
                    origin=rid,
                )
            outcome = self.coordinator.reserve(
                candidate,
                lambda sigma, r=candidate: self.policy.assign(r, sigma),
                now,
                ctx=ctx,
                malleable=self.malleable,
            )
            accepted = outcome.allocation is not None
            if self.slo is not None:
                self.slo.admission(
                    now,
                    accepted=accepted,
                    latency=(now - original.t_start)
                    + outcome.retry_delay
                    + outcome.chaos_wait,
                )
            self._trace_event(
                "gateway",
                now,
                "gateway.trace.readmit_decision",
                ctx,
                rid=candidate.rid,
                origin=rid,
                outcome="accepted" if accepted else "rejected",
            )
            if outcome.allocation is None:
                keep.append(rid)
                continue
            self._reservations[candidate.rid] = Reservation(
                rid=candidate.rid,
                request=candidate,
                allocation=outcome.allocation,
                origin=rid,
            )
            self.stats.readmitted += 1
            if self.telemetry.enabled or self.slo is not None:
                self._note_port_peaks(candidate.ingress, candidate.egress)
            admitted.append((rid, candidate.rid))
        self._backlog = keep
        if attempted:
            deltas = [b.work - w0 for b, w0 in zip(self.brokers, work_before)]
            self.simulated_cost += PER_REQUEST_OVERHEAD * attempted + max(deltas)
        tel = self.telemetry
        if tel.enabled and admitted:
            tel.metrics.counter(
                "gateway_readmissions_total",
                "Backlogged rejections successfully re-admitted.",
            ).inc(float(len(admitted)))
            for origin_rid, new_rid in admitted:
                fields: dict[str, Any] = {"origin": origin_rid, "rid": new_rid}
                new_ctx = self._trace_roots.get(new_rid)
                if new_ctx is not None:
                    fields.update(new_ctx.fields())
                tel.emit("gateway.readmit", now, **fields)
        self._publish_chaos()

    # ------------------------------------------------------------------
    # Health gauges (SLO watchdog inputs, sampled at every flush)
    # ------------------------------------------------------------------
    def _health_snapshot(self, now: float) -> dict[str, float]:
        """Point-in-time health gauges: backlog, hold age, peak proximity.

        ``overcommit_proximity`` is the worst all-time ``peak / capacity``
        ratio across ports — 1.0 is a fully-booked port, anything beyond
        the capacity slack is an invariant violation in the making.  It is
        a high-water mark advanced by :meth:`_note_port_peaks` as bookings
        confirm, so sampling here costs O(live holds), not a rescan of
        every port timeline at every flush.
        """
        max_age = 0.0
        for broker in self.brokers:
            for hold in broker.holds():
                max_age = max(max_age, now - (hold.expires - self.hold_ttl))
        return {
            "backlog_depth": float(len(self._backlog)),
            "max_hold_age": max_age,
            "overcommit_proximity": self._overcommit_hwm,
        }

    def _note_port_peaks(self, ingress: int, egress: int) -> None:
        """Advance the overcommit high-water mark after a confirmed booking.

        Only the two ports the booking touched can move the worst
        ``peak / capacity`` ratio, so the probe stays O(1) per admission.
        Cancellations, compensations and broker restarts can later lower
        the live peaks; the mark deliberately keeps the worst proximity
        the run ever reached.
        """
        for side, port in (("ingress", ingress), ("egress", egress)):
            cap = self.platform.bin(port) if side == "ingress" else self.platform.bout(port)
            if cap <= 0:
                continue
            peak = self.coordinator.broker_for(side, port).cached_peak(side, port)
            if peak / cap > self._overcommit_hwm:
                self._overcommit_hwm = peak / cap

    # ------------------------------------------------------------------
    # Chaos accounting (channel counters → stats + telemetry deltas)
    # ------------------------------------------------------------------
    _CHAOS_COUNTERS = {
        "drops": "Deliveries lost on coordinator→broker channels.",
        "duplicates": "Deliveries replayed (at-least-once) to brokers.",
        "delays": "Deliveries sampled slow on coordinator→broker channels.",
        "partitioned": "Deliveries refused by an active shard partition.",
        "crashes": "Broker crashes sampled right after a protocol phase.",
    }

    #: Per-edge channel counters surfaced as shard-labeled metrics
    #: (``ChannelStats`` field → metric name + help).
    _CHANNEL_COUNTERS = {
        "calls": (
            "gateway_channel_deliveries_total",
            "Protocol deliveries attempted per coordinator→broker edge.",
        ),
        "drops": (
            "gateway_channel_dropped_total",
            "Deliveries lost per coordinator→broker edge.",
        ),
        "duplicates": (
            "gateway_channel_duplicated_total",
            "Deliveries replayed (at-least-once) per edge.",
        ),
        "delays": (
            "gateway_channel_delayed_total",
            "Deliveries sampled slow per edge.",
        ),
        "partitioned": (
            "gateway_channel_partitioned_total",
            "Deliveries refused by a partition window per edge.",
        ),
        "crashes": (
            "gateway_channel_crashes_total",
            "Broker crashes sampled mid-protocol per edge.",
        ),
        "recovered": (
            "gateway_channel_recovered_total",
            "Ambiguous deliveries the termination probe recovered per edge.",
        ),
    }

    def _publish_chaos(self) -> None:
        """Fold the channels' chaos counters into stats and telemetry.

        With no chaos configured this returns immediately — no counters
        move, no events are emitted, decision traces stay byte-identical.
        """
        if self.chaos is None:
            return
        totals = {name: 0.0 for name in self._CHAOS_COUNTERS}
        totals["latency"] = 0.0
        for channel in self.coordinator.channels:
            for name, value in channel.stats.as_dict().items():
                if name in totals:
                    totals[name] += float(value)
        self.stats.chaos_drops = int(totals["drops"])
        self.stats.chaos_duplicates = int(totals["duplicates"])
        self.stats.chaos_delays = int(totals["delays"])
        self.stats.chaos_partitioned = int(totals["partitioned"])
        self.stats.chaos_crashes = int(totals["crashes"])
        tel = self.telemetry
        if tel.enabled:
            for name, help_text in self._CHAOS_COUNTERS.items():
                delta = totals[name] - self._chaos_seen.get(name, 0.0)
                if delta > 0:
                    tel.metrics.counter(
                        f"gateway_chaos_{name}_total", help_text
                    ).inc(delta)
            for channel in self.coordinator.channels:
                per_edge = channel.stats.as_dict()
                for field, (metric, help_text) in self._CHANNEL_COUNTERS.items():
                    key = f"{channel.shard_id}:{field}"
                    value = float(per_edge[field])
                    delta = value - self._edge_seen.get(key, 0.0)
                    self._edge_seen[key] = value
                    if delta > 0:
                        tel.metrics.counter(metric, help_text).inc(
                            delta, shard=channel.shard_id
                        )
        self._chaos_seen = totals

    # ------------------------------------------------------------------
    # Lifecycle operations (mirroring the monolithic service)
    # ------------------------------------------------------------------
    def cancel(self, rid: int, *, now: float) -> bool:
        """Cancel a reservation; the unconsumed tail returns to its shards."""
        self._advance(now)
        self._flush(self._clock)
        reservation = self._require_reservation(rid)
        self._record("gw_cancel", now, rid=rid)
        released = False
        if reservation.state(now) in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            self._release_tail(reservation, now)
            reservation.cancelled_at = now
            self.stats.cancelled += 1
            released = True
        self._trace_event(
            "gateway",
            now,
            "gateway.trace.cancel",
            self._trace_roots.get(rid),
            rid=rid,
            released=released,
        )
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("gateway_cancels_total", "Cancellations by effect.").inc(
                released=str(released).lower()
            )
            tel.emit("gateway.cancel", now, rid=rid, released=released)
        return released

    def abort(self, rid: int, *, now: float) -> bool:
        """A transfer died mid-flight; free its tail on both shards."""
        self._advance(now)
        self._flush(self._clock)
        reservation = self._require_reservation(rid)
        self._record("gw_abort", now, rid=rid)
        if reservation.state(now) not in (
            ReservationState.CONFIRMED,
            ReservationState.ACTIVE,
        ):
            return False
        self._release_tail(reservation, now)
        reservation.aborted_at = now
        self.stats.aborted += 1
        self._trace_event(
            "gateway", now, "gateway.trace.abort", self._trace_roots.get(rid), rid=rid
        )
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter("gateway_aborts_total", "Mid-flight transfer aborts.").inc()
            tel.emit("gateway.abort", now, rid=rid, wasted=reservation.carried)
        return True

    def degrade(
        self,
        *,
        side: str,
        port: int,
        amount: float,
        start: float,
        end: float,
        now: float,
    ) -> list[Reservation]:
        """Apply a capacity reduction on the owning shard; displace overflow.

        Victim selection mirrors the service: latest-starting live
        reservations on the port yield first, until the shard's slice fits
        under the remaining capacity again.
        """
        self._advance(now)
        self._flush(self._clock)
        degradation = Degradation(side=side, port=port, t0=start, t1=end, amount=amount)
        broker = self.coordinator.broker_for(side, port)
        broker.degrade(degradation)
        self._degradations.append(degradation)
        self.stats.degradations += 1
        self._record(
            "gw_degrade", now, side=side, port=port, amount=amount, start=start, end=end
        )
        displaced: list[Reservation] = []
        reshaped_rids: list[int] = []
        cap = self.platform.bin(port) if side == "ingress" else self.platform.bout(port)
        tol = CAPACITY_SLACK * max(1.0, cap)
        while broker.overcommit_on(side, port, start, end) > tol:
            victim = self._displacement_victim(side, port, start, end, now)
            if victim is None:
                break  # remaining overcommit is not ours to resolve
            if (
                self.malleable
                and victim.rid not in reshaped_rids
                and self._reshape_tail(victim, now)
            ):
                # Malleable recovery: the victim's tail was re-carved
                # around the degraded window — no displacement needed.
                # Each rid is tried once per degradation; a reshaped
                # reservation that still blocks the port is displaced on
                # the next pass.
                reshaped_rids.append(victim.rid)
                continue
            self._release_tail(victim, now)
            victim.displaced_at = now
            self.stats.displaced += 1
            displaced.append(victim)
        flight_fields: dict[str, Any] = {
            "side": side,
            "port": port,
            "amount": amount,
            "displaced": [r.rid for r in displaced],
        }
        if reshaped_rids:
            flight_fields["reshaped"] = reshaped_rids
        self._flight("gateway", now, "degrade", **flight_fields)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "gateway_degrades_total", "Capacity degradations applied, by side."
            ).inc(side=side)
            if displaced:
                tel.metrics.counter(
                    "gateway_displacements_total",
                    "Reservations displaced by degradations.",
                ).inc(float(len(displaced)))
            fields: dict[str, Any] = {
                "side": side,
                "port": port,
                "amount": amount,
                "start": start,
                "end": end,
                "displaced": [r.rid for r in displaced],
            }
            if reshaped_rids:
                fields["reshaped"] = reshaped_rids
            tel.emit("gateway.degrade", now, **fields)
        return displaced

    def reshape(self, rid: int, *, now: float) -> bool:
        """Re-shape a live reservation's unconsumed tail (malleable verb).

        Mirrors :meth:`~repro.control.service.ReservationService.reshape`:
        the tail ``[max(now, σ), τ)`` returns to its shards and the still
        undelivered volume is re-carved into the pair's residual capacity
        valleys.  On failure the original tail is restored exactly.
        Journaled as ``gw_reshape``; returns True when re-shaped.
        """
        self._advance(now)
        self._flush(self._clock)
        reservation = self._require_reservation(rid)
        self._record("gw_reshape", now, rid=rid)
        if reservation.state(now) in (ReservationState.CONFIRMED, ReservationState.ACTIVE):
            ok = self._reshape_tail(reservation, now)
        else:
            ok = False
        self._trace_event(
            "gateway",
            now,
            "gateway.trace.reshape",
            self._trace_roots.get(rid),
            rid=rid,
            reshaped=ok,
        )
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "gateway_reshapes_total", "Malleable tail re-shapes by effect."
            ).inc(reshaped=str(ok).lower())
            tel.emit("gateway.reshape", now, rid=rid, reshaped=ok)
        return ok

    def _reshape_tail(self, reservation: Reservation, now: float) -> bool:
        """Release + re-carve one live tail; restores the shards on failure."""
        alloc = reservation.allocation
        if alloc is None:
            raise InternalInvariantError(
                f"reservation {reservation.rid} is live but carries no allocation"
            )
        release_from = max(now, alloc.sigma)
        if release_from >= alloc.tau:
            return False
        if alloc.profile is not None:
            old_tail = alloc.profile.tail_from(release_from).segments
        else:
            old_tail = ((release_from, alloc.tau, alloc.bw),)
        residual = max(0.0, reservation.request.volume - alloc.carried_before(release_from))
        if residual <= 0.0 or not old_tail:
            return False
        try:
            target = Request(
                rid=reservation.rid,
                ingress=alloc.ingress,
                egress=alloc.egress,
                volume=residual,
                t_start=release_from,
                t_end=reservation.request.t_end,
                max_rate=reservation.request.max_rate,
            )
        except InvalidRequestError:
            return False  # residual window no longer structurally valid
        self.coordinator.release_pair(
            alloc.ingress, alloc.egress, release_from, alloc.tau, alloc.bw,
            segments=old_tail,
        )
        view = PairLedgerView(
            self.coordinator.broker_for("ingress", alloc.ingress),
            self.coordinator.broker_for("egress", alloc.egress),
            alloc.ingress,
            alloc.egress,
        )
        shaped = shape_profile(view, target, not_before=release_from)
        if shaped is None:
            # Put the tail back exactly; unchecked because the region may
            # sit in an already-overcommitted (degraded) state — that was
            # the pre-existing condition, not ours to reject.
            self.coordinator.restore_pair(alloc.ingress, alloc.egress, old_tail)
            return False
        if alloc.profile is not None:
            head = alloc.profile.head_until(release_from)
        elif release_from > alloc.sigma:
            head = RateProfile.constant(alloc.sigma, release_from, alloc.bw)
        else:
            head = RateProfile(())
        self.coordinator.restore_pair(alloc.ingress, alloc.egress, shaped.segments)
        reservation.allocation = alloc.with_profile(head.concat(shaped))
        self.stats.reshaped += 1
        return True

    def _displacement_victim(
        self, side: str, port: int, start: float, end: float, now: float
    ) -> Reservation | None:
        """Latest-starting live reservation using the port inside the window."""
        best: Reservation | None = None
        for reservation in self._reservations.values():
            if reservation.state(now) not in (
                ReservationState.CONFIRMED,
                ReservationState.ACTIVE,
            ):
                continue
            alloc = reservation.allocation
            if alloc is None:
                continue
            on_port = alloc.ingress == port if side == "ingress" else alloc.egress == port
            if not on_port:
                continue
            live_from = max(now, alloc.sigma)
            if live_from >= end or alloc.tau <= start:
                continue
            if best is None or best.allocation is None or (
                alloc.sigma,
                reservation.rid,
            ) > (best.allocation.sigma, best.rid):
                best = reservation
        return best

    def _release_tail(self, reservation: Reservation, now: float) -> float:
        """Return the unconsumed part of a live allocation to its shards."""
        alloc = reservation.allocation
        if alloc is None:
            raise InternalInvariantError(
                f"reservation {reservation.rid} is live but carries no allocation"
            )
        release_from = max(now, alloc.sigma)
        if release_from >= alloc.tau:
            return 0.0
        if alloc.profile is not None:
            tail = alloc.profile.tail_from(release_from)
            if not tail:
                return 0.0
            self.coordinator.release_pair(
                alloc.ingress, alloc.egress, release_from, alloc.tau, alloc.bw,
                segments=tail.segments,
            )
            return tail.volume
        self.coordinator.release_pair(
            alloc.ingress, alloc.egress, release_from, alloc.tau, alloc.bw
        )
        return alloc.bw * (alloc.tau - release_from)

    def _require_reservation(self, rid: int) -> Reservation:
        reservation = self._reservations.get(rid)
        if reservation is None:
            raise KeyError(f"unknown reservation {rid}")
        return reservation

    # ------------------------------------------------------------------
    # Broker faults
    # ------------------------------------------------------------------
    def crash_broker(self, shard: int, *, now: float) -> int:
        """Kill one shard broker; its volatile holds are wiped (capacity
        returns) and two-phase calls against it fail until restart.

        Deliberately does *not* flush the open batch: submissions pending
        at the crash instant face the crashed broker when their batch
        decides — the mid-prepare abort path the drills exercise.
        """
        self._advance(now)
        broker = self._broker(shard)
        wiped = broker.crash()
        self.stats.crashes += 1
        self._record("gw_crash", now, shard=shard)
        self._flight(f"rpc.shard{shard}", now, "broker.crash", holds_wiped=wiped)
        tel = self.telemetry
        if tel.enabled:
            tel.metrics.counter(
                "gateway_broker_crashes_total", "Shard broker crashes injected."
            ).inc(shard=shard)
            tel.emit("gateway.crash", now, shard=shard, holds_wiped=wiped)
        return wiped

    def restart_broker(self, shard: int, *, now: float) -> None:
        """Bring a crashed broker back (committed slices intact, holds gone)."""
        self._advance(now)
        self._broker(shard).restart()
        self.stats.restarts += 1
        self._record("gw_restart", now, shard=shard)
        self._flight(f"rpc.shard{shard}", now, "broker.restart")
        tel = self.telemetry
        if tel.enabled:
            tel.emit("gateway.restart", now, shard=shard)
        if self._backlog:
            self._readmit(now)

    def _broker(self, shard: int) -> ShardBroker:
        if not (0 <= shard < len(self.brokers)):
            raise ConfigurationError(f"no shard {shard} (have {len(self.brokers)})")
        return self.brokers[shard]

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def get(self, rid: int) -> Ticket:
        """Look up a submission's ticket by reservation id."""
        try:
            return self._tickets[rid]
        except KeyError:
            raise KeyError(f"unknown reservation {rid}") from None

    def reservations(self) -> list[Reservation]:
        """All decided reservations, in submission order."""
        return [self._reservations[rid] for rid in sorted(self._reservations)]

    def pending(self) -> int:
        """Submissions waiting in the open batch."""
        return len(self.batcher)

    def degradations(self) -> list[Degradation]:
        """Every capacity degradation applied so far, in order."""
        return list(self._degradations)

    def max_overcommit(self) -> float:
        """Worst ``usage − capacity`` across every shard (≤ 0 ⇔ valid)."""
        return max(broker.max_overcommit() for broker in self.brokers)

    def port_usage(self, t: float) -> tuple[list[float], list[float]]:
        """Committed bandwidth per (ingress, egress) port at time ``t``."""
        ins = [
            self.coordinator.broker_for("ingress", i).usage_at("ingress", i, t)
            for i in range(self.platform.num_ingress)
        ]
        outs = [
            self.coordinator.broker_for("egress", e).usage_at("egress", e, t)
            for e in range(self.platform.num_egress)
        ]
        return ins, outs

    def throughput(self) -> float:
        """Decided admissions per simulated cost unit (the bench metric)."""
        decided = self.stats.accepted + self.stats.rejected
        if self.simulated_cost <= 0:
            return 0.0
        return decided / self.simulated_cost

    def work_report(self) -> dict[str, Any]:
        """Cost-model digest: per-broker work and the critical-path total."""
        return {
            "per_broker": [broker.work for broker in self.brokers],
            "simulated_cost": self.simulated_cost,
            "batches": self.stats.batches,
            "headroom": [broker.headroom.stats for broker in self.brokers],
        }

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Canonical, JSON-able digest of the full gateway state.

        Two gateways are state-identical iff their snapshots compare
        equal; the replay tests rely on this.
        """
        reservations = []
        for rid in sorted(self._reservations):
            r = self._reservations[rid]
            reservations.append(
                {
                    "rid": r.rid,
                    "request": r.request.to_dict(),
                    "allocation": r.allocation.to_dict() if r.allocation else None,
                    "cancelled_at": r.cancelled_at,
                    "aborted_at": r.aborted_at,
                    "displaced_at": r.displaced_at,
                    "origin": r.origin,
                    "reject_reason": r.reject_reason.value if r.reject_reason else None,
                }
            )
        return {
            "clock": self._clock,
            "next_rid": self._next_rid,
            "pending": [p.seq for p in self.batcher._pending],
            "reservations": reservations,
            "edge_refused": sorted(
                rid for rid, t in self._tickets.items() if t.edge_refused
            ),
            "backlog": list(self._backlog),
            "shards": [broker.snapshot() for broker in self.brokers],
            "degradations": [d.to_dict() for d in self._degradations],
            "stats": self.stats.as_dict(),
        }

    @classmethod
    def replay(cls, journal: Journal) -> Gateway:
        """Rebuild a gateway from its operation journal.

        The header supplies the configuration; the recorded operations are
        re-applied in order.  Batch flushes triggered by batch-full and
        clock-advance recur identically (they are functions of the op
        stream), and explicit drains are journaled, so the rebuilt gateway
        is state-identical (``snapshot()`` equality).
        """
        header = journal.header
        if not header:
            raise ConfigurationError("journal has no header; cannot replay")
        if header.get("kind") != "gateway":
            raise ConfigurationError(
                f"not a gateway journal (kind: {header.get('kind')!r})"
            )
        backoff_cfg = header.get("backoff") or {}
        edge_cfg = header.get("edge")
        chaos_cfg = header.get("chaos")
        rpc_deadline = header.get("rpc_deadline")
        gateway = cls(
            Platform.from_dict(header["platform"]),
            num_shards=int(header.get("num_shards", 1)),
            batch_size=int(header.get("batch_size", 1)),
            ordering=str(header.get("ordering", "fifo")),
            policy=policy_from_name(header.get("policy", "min-bw")),
            edge=EdgeLimit.from_dict(edge_cfg) if edge_cfg is not None else None,
            hold_ttl=float(header.get("hold_ttl", 300.0)),
            backoff=BackoffSchedule(
                base=float(backoff_cfg.get("base", 5.0)),
                multiplier=float(backoff_cfg.get("multiplier", 2.0)),
                max_attempts=int(backoff_cfg.get("max_attempts", 3)),
                jitter=float(backoff_cfg.get("jitter", 0.0)),
            ),
            chaos=ChaosPolicy.from_dict(chaos_cfg) if chaos_cfg is not None else None,
            rpc_deadline=float(rpc_deadline) if rpc_deadline is not None else None,
            backlog_limit=int(header.get("backlog_limit", 0)),
            malleable=bool(header.get("malleable", False)),
            journal=None,
        )
        for entry in journal:
            args = dict(entry.args)
            if entry.op == "gw_submit":
                gateway.submit(
                    ingress=int(args["ingress"]),
                    egress=int(args["egress"]),
                    volume=float(args["volume"]),
                    deadline=float(args["deadline"]),
                    now=entry.now,
                    max_rate=args.get("max_rate"),
                    client=str(args.get("client", "default")),
                    origin=args.get("origin"),
                    profile=args.get("profile"),
                )
            elif entry.op == "gw_drain":
                gateway.drain(entry.now)
            elif entry.op == "gw_cancel":
                gateway.cancel(int(args["rid"]), now=entry.now)
            elif entry.op == "gw_abort":
                gateway.abort(int(args["rid"]), now=entry.now)
            elif entry.op == "gw_degrade":
                gateway.degrade(
                    side=str(args["side"]),
                    port=int(args["port"]),
                    amount=float(args["amount"]),
                    start=float(args["start"]),
                    end=float(args["end"]),
                    now=entry.now,
                )
            elif entry.op == "gw_reshape":
                gateway.reshape(int(args["rid"]), now=entry.now)
            elif entry.op == "gw_crash":
                gateway.crash_broker(int(args["shard"]), now=entry.now)
            elif entry.op == "gw_restart":
                gateway.restart_broker(int(args["shard"]), now=entry.now)
            else:  # pragma: no cover - Journal validates ops on construction
                raise ConfigurationError(f"unknown gateway journal op {entry.op!r}")
        return gateway

    @classmethod
    def resume(
        cls,
        journal: Journal,
        *,
        telemetry: Telemetry | None = None,
        slo: SloWatchdog | None = None,
        recorder: FlightRecorder | None = None,
    ) -> Gateway:
        """Replay a journal into a gateway that keeps *living* on it.

        The service plane's restart path: :meth:`replay` deliberately
        rebuilds without observability wiring (replayed history must not
        re-emit metrics or SLO samples — it already happened), then this
        re-attaches the live handles and re-arms the journal so new
        operations append after the replayed ones.
        """
        gateway = cls.replay(journal)
        gateway._telemetry = telemetry
        gateway.slo = slo
        gateway.recorder = recorder
        gateway._observer = CausalObserver(lambda: gateway.telemetry, recorder=recorder)
        for channel in gateway.coordinator.channels:
            channel.observer = gateway._observer
        gateway.journal = journal
        return gateway
