"""One shard broker: authoritative owner of its ports' ledger slices.

A :class:`ShardBroker` holds the usage and degradation timelines of every
access point its shard owns (see :class:`~repro.gateway.sharding.ShardMap`)
and is the **only** component allowed to mutate them — gridlint rule
GL008 enforces the boundary.  All state a broker carries:

- the owned ledger slices (committed bookings + registered degradations);
- the **prepare-holds** of in-flight two-phase reservations — capacity
  pinned on one side while the coordinator secures the other.  Holds are
  volatile: a broker crash wipes them (the capacity returns), while
  committed bookings survive, mirroring a write-ahead-logged store that
  loses only its in-memory transaction table;
- a cached per-port headroom index
  (:class:`~repro.gateway.headroom.HeadroomIndex`), invalidated on every
  mutation of a port's timeline;
- a simulated-work counter (:attr:`work`) the gateway's cost model uses:
  brokers conceptually run in parallel, so a batch's critical path is the
  *maximum* work any one broker did for it, not the sum.

The broker reuses :class:`~repro.core.ledger.PortLedger` for its slices —
non-owned ports simply stay empty — so every capacity query (degradation
handling included) is the battle-tested Eq. 1 implementation, not a fork.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from collections.abc import Iterator

from ..core.capacity import CAPACITY_SLACK, CapacityProfile, fits_under
from ..core.errors import ConfigurationError, ReproError
from ..core.ledger import Degradation, PortLedger
from ..units import seconds_eq
from .headroom import HeadroomIndex
from .sharding import ShardMap

__all__ = ["BrokerUnavailable", "Hold", "ShardBroker", "hold_expired"]


def hold_expired(expires: float, now: float) -> bool:
    """Has a hold's TTL deadline passed at ``now``?

    A deadline exactly *at* ``now`` counts as expired, and so does one
    within :func:`repro.units.seconds_eq` noise of it — so the broker
    sweep and the coordinator sweep (which delegates to it) classify the
    boundary identically instead of depending on float round-off.
    """
    return expires <= now or seconds_eq(expires, now)


class BrokerUnavailable(ReproError):
    """The addressed shard broker is crashed and cannot serve the call."""


@dataclass(frozen=True, slots=True)
class Hold:
    """Capacity pinned on one port by phase one of a two-phase reservation."""

    hold_id: int
    side: str
    port: int
    t0: float
    t1: float
    bw: float
    rid: int
    #: Absolute sim time at which an uncommitted hold self-releases — the
    #: timeout-abort that keeps a crashed *coordinator* from stranding
    #: capacity on a healthy broker.
    expires: float
    #: Stepwise ``(t0, t1, rate)`` steps for a malleable (profile) hold;
    #: ``None`` for the constant-rate case, where ``(t0, t1, bw)`` is the
    #: whole story.  When present, ``t0``/``t1``/``bw`` summarise the
    #: span and peak — idempotency keys and the wire shape are unchanged.
    segments: tuple[tuple[float, float, float], ...] | None = None

    def steps(self) -> tuple[tuple[float, float, float], ...]:
        """The rate steps this hold pins (1-segment for constant holds)."""
        if self.segments is not None:
            return self.segments
        return ((self.t0, self.t1, self.bw),)


class ShardBroker:
    """Owns and serves the ledger slices of one shard's access points."""

    def __init__(self, shard_id: int, shard_map: ShardMap) -> None:
        self.shard_id = shard_id
        self.platform = shard_map.platform
        owned_in, owned_out = shard_map.ports_of(shard_id)
        self._owned_ports: dict[str, frozenset[int]] = {
            "ingress": frozenset(owned_in),
            "egress": frozenset(owned_out),
        }
        self._owned_ledger = PortLedger(self.platform)
        self._holds: dict[int, Hold] = {}
        self._hold_ids = itertools.count()
        #: Idempotency tables for at-least-once delivery: a replayed
        #: ``prepare`` finds its first answer here instead of double-
        #: booking, a replayed ``book_pair`` finds its key already
        #: recorded, and a replayed ``commit`` consults the terminal
        #: resolution of its hold.  ``_prepared`` is volatile transaction
        #: state (a crash clears it, like the holds it guards);
        #: ``_booked`` and ``_resolution`` model WAL-backed records — they
        #: survive crashes exactly because the bookings they witness do.
        self._prepared: dict[object, Hold | None] = {}
        self._booked: set[object] = set()
        self._resolution: dict[int, str] = {}
        self._degraded: set[tuple[str, int]] = set()
        self.headroom = HeadroomIndex()
        self.crashed = False
        #: Simulated work units accrued (candidate scans, hold ops, sweeps).
        self.work = 0.0
        self.holds_expired = 0
        self.holds_wiped = 0

    # ------------------------------------------------------------------
    # Ownership
    # ------------------------------------------------------------------
    def owns(self, side: str, port: int) -> bool:
        """Does this shard own ``port`` on ``side``?"""
        owned = self._owned_ports.get(side)
        if owned is None:
            raise ConfigurationError(f"side must be 'ingress' or 'egress', got {side!r}")
        return port in owned

    def _require_owned(self, side: str, port: int) -> None:
        if not self.owns(side, port):
            raise ConfigurationError(
                f"shard {self.shard_id} does not own {side} port {port}"
            )

    def _require_up(self) -> None:
        if self.crashed:
            raise BrokerUnavailable(f"shard broker {self.shard_id} is down")

    def add_work(self, units: float) -> None:
        """Account ``units`` of simulated work to this broker."""
        self.work += units

    # ------------------------------------------------------------------
    # Read surface (safe from any module; GL008 only guards mutation)
    # ------------------------------------------------------------------
    def timeline(self, side: str, port: int) -> CapacityProfile:
        """The usage profile of an owned port (treat as read-only)."""
        self._require_owned(side, port)
        if side == "ingress":
            return self._owned_ledger.ingress_timeline(port)
        return self._owned_ledger.egress_timeline(port)

    def free_capacity(self, side: str, port: int, t0: float, t1: float) -> float:
        """Guaranteed free bandwidth on an owned port over ``[t0, t1)``."""
        self._require_owned(side, port)
        return self._owned_ledger.free_capacity(side, port, t0, t1)

    def max_usage(self, side: str, port: int, t0: float, t1: float) -> float:
        """Peak committed bandwidth on an owned port over ``[t0, t1)``."""
        return self.timeline(side, port).max_usage(t0, t1)

    def usage_at(self, side: str, port: int, t: float) -> float:
        """Committed bandwidth on an owned port at time ``t``."""
        return self.timeline(side, port).usage_at(t)

    def degradation_edges(self, side: str, port: int) -> Iterator[float]:
        """Capacity-change instants of an owned port."""
        self._require_owned(side, port)
        return self._owned_ledger.degradation_edges(side, port)

    def has_degradations(self, side: str, port: int) -> bool:
        """Has any capacity reduction been registered on the port?"""
        self._require_owned(side, port)
        return (side, port) in self._degraded

    def overcommit_on(self, side: str, port: int, t0: float, t1: float) -> float:
        """Worst ``usage − capacity`` on an owned port over ``[t0, t1)``."""
        self._require_owned(side, port)
        return self._owned_ledger.overcommit_on(side, port, t0, t1)

    def max_overcommit(self) -> float:
        """Worst overshoot across the owned ports (≤ 0 ⇔ shard is valid).

        Non-owned ports of the underlying ledger are empty and contribute
        only negative slack, so the full-ledger scan is the owned answer.
        """
        return self._owned_ledger.max_overcommit()

    def cached_peak(self, side: str, port: int) -> float:
        """The headroom index's peak usage for an owned port."""
        return self.headroom.peak(side, port, self.timeline(side, port))

    def fits_side(
        self,
        side: str,
        port: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> bool:
        """Would ``bw`` (or each step of ``segments``) fit on this port?

        With ``segments`` the check runs per step — the profile-aware
        variant; steps are non-overlapping, so each is an independent
        constant-rate fit and the 1-segment case answers identically to
        the scalar form.
        """
        self._require_owned(side, port)
        if segments is not None:
            return all(
                self._fits_side_step(side, port, s0, s1, rate)
                for s0, s1, rate in segments
            )
        return self._fits_side_step(side, port, t0, t1, bw)

    def _fits_side_step(self, side: str, port: int, t0: float, t1: float, bw: float) -> bool:
        cap = self._capacity(side, port)
        if (side, port) not in self._degraded:
            return fits_under(self.max_usage(side, port, t0, t1), bw, cap)
        return self.free_capacity(side, port, t0, t1) + cap * CAPACITY_SLACK >= bw

    def _capacity(self, side: str, port: int) -> float:
        return self.platform.bin(port) if side == "ingress" else self.platform.bout(port)

    def pair_fits(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> bool:
        """Joint two-port fit when this shard owns *both* ports of a pair.

        Delegates to the underlying :meth:`PortLedger.fits` (per step for
        a profile), so a shard-local admission answers exactly like the
        monolithic service — the anchor of the single-shard equivalence
        guarantee.
        """
        self._require_owned("ingress", ingress)
        self._require_owned("egress", egress)
        if segments is not None:
            return self._owned_ledger.fits_segments(ingress, egress, segments)
        return self._owned_ledger.fits(ingress, egress, t0, t1, bw)

    # ------------------------------------------------------------------
    # Mutation surface (the GL008-guarded owner of the slices)
    # ------------------------------------------------------------------
    def _timeline_add(self, side: str, port: int, t0: float, t1: float, delta: float) -> None:
        """The single point through which a slice's usage ever changes."""
        self.timeline(side, port).add(t0, t1, delta)
        self.headroom.invalidate(side, port)

    def book_pair(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        key: object | None = None,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> None:
        """Atomically commit a shard-local pair booking (both ports owned).

        This is the one-shard fast path: no holds, no second phase — the
        underlying :meth:`PortLedger.allocate` capacity check covers both
        ports at once, exactly like the monolithic service.  ``key``
        (the rid, when called through a channel) makes the call
        idempotent: a duplicated delivery finds the key recorded and
        books nothing twice.  ``segments`` books a stepwise profile
        instead of the constant ``(t0, t1, bw)``, all steps or none.
        """
        self._require_up()
        self._require_owned("ingress", ingress)
        self._require_owned("egress", egress)
        if key is not None and key in self._booked:
            self.add_work(1.0)
            return
        if segments is not None:
            self._owned_ledger.allocate_segments(ingress, egress, segments)
        else:
            self._owned_ledger.allocate(ingress, egress, t0, t1, bw)
        if key is not None:
            self._booked.add(key)
        self.headroom.invalidate("ingress", ingress)
        self.headroom.invalidate("egress", egress)
        self.add_work(1.0)

    def release(
        self,
        side: str,
        port: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> None:
        """Return committed bandwidth on one owned port (cancel/abort path)."""
        if segments is not None:
            for s0, s1, rate in segments:
                if rate < 0:
                    raise ConfigurationError(f"negative release {rate}")
                self._timeline_add(side, port, s0, s1, -rate)
            self.add_work(1.0)
            return
        if bw < 0:
            raise ConfigurationError(f"negative release {bw}")
        self._timeline_add(side, port, t0, t1, -bw)
        self.add_work(1.0)

    def restore(
        self, side: str, port: int, segments: tuple[tuple[float, float, float], ...]
    ) -> None:
        """Re-add segments to one owned port without a capacity probe.

        The malleable reshape path uses this twice: to roll a released
        tail back after shaping failed (the region may legitimately sit
        overcommitted after a degradation — that was the pre-existing
        state, not ours to reject), and to commit a shaped profile that
        fits by construction.
        """
        self._require_owned(side, port)
        for s0, s1, rate in segments:
            if rate < 0:
                raise ConfigurationError(f"negative restore {rate}")
            self._timeline_add(side, port, s0, s1, rate)
        self.add_work(1.0)

    def degrade(self, degradation: Degradation) -> None:
        """Register a capacity reduction on an owned port."""
        self._require_owned(degradation.side, degradation.port)
        self._owned_ledger.degrade(degradation)
        self._degraded.add((degradation.side, degradation.port))
        self.headroom.invalidate(degradation.side, degradation.port)
        self.add_work(1.0)

    # ------------------------------------------------------------------
    # Two-phase protocol: prepare / commit / abort / expire
    # ------------------------------------------------------------------
    def prepare(
        self,
        side: str,
        port: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        rid: int,
        expires: float,
        key: object | None = None,
        segments: tuple[tuple[float, float, float], ...] | None = None,
    ) -> Hold | None:
        """Phase one: pin ``bw`` on one owned port, or refuse.

        Raises :class:`BrokerUnavailable` when the broker is crashed;
        returns ``None`` when the port cannot carry the hold (the
        coordinator then aborts the transaction).  A granted hold is
        booked into the slice immediately, so concurrent searches see the
        pinned capacity.

        ``key`` (``(rid, side)`` when called through a channel) makes the
        call idempotent under at-least-once delivery: a replayed prepare
        returns the recorded answer — the original hold while it is live
        or committed, ``None`` once the transaction was refused or ended —
        instead of pinning the capacity twice.
        """
        self._require_up()
        self.add_work(1.0)
        if key is not None and key in self._prepared:
            prior = self._prepared[key]
            if prior is None:
                return None  # recorded refusal
            if prior.hold_id in self._holds:
                return prior  # still live: same hold, no double booking
            if self._resolution.get(prior.hold_id) == "committed":
                return prior
            return None  # aborted / expired / wiped: transaction is over
        if not self.fits_side(side, port, t0, t1, bw, segments=segments):
            if key is not None:
                self._prepared[key] = None
            return None
        hold = Hold(
            hold_id=next(self._hold_ids),
            side=side,
            port=port,
            t0=t0,
            t1=t1,
            bw=bw,
            rid=rid,
            expires=expires,
            segments=segments,
        )
        for s0, s1, rate in hold.steps():
            self._timeline_add(side, port, s0, s1, rate)
        self._holds[hold.hold_id] = hold
        if key is not None:
            self._prepared[key] = hold
        return hold

    def commit(self, hold_id: int) -> None:
        """Phase two: the hold's capacity becomes a committed booking.

        Idempotent under replay: committing an already-committed hold is
        a no-op; committing an id this broker never granted (or whose
        transaction was aborted — a protocol bug, not a delivery fault)
        still raises :class:`~repro.core.errors.ConfigurationError`.
        """
        self._require_up()
        hold = self._holds.pop(hold_id, None)
        if hold is None:
            if self._resolution.get(hold_id) == "committed":
                self.add_work(1.0)
                return
            raise ConfigurationError(f"no hold {hold_id} on shard {self.shard_id}")
        # The capacity is already in the timeline; dropping the hold record
        # is what makes it permanent (crash no longer releases it).
        self._resolution[hold_id] = "committed"
        self.add_work(1.0)

    def _drop_hold(self, hold_id: int, resolution: str) -> bool:
        """Release one live hold and record why it ended."""
        hold = self._holds.pop(hold_id, None)
        if hold is None:
            return False
        for s0, s1, rate in hold.steps():
            self._timeline_add(hold.side, hold.port, s0, s1, -rate)
        self._resolution[hold_id] = resolution
        self.add_work(1.0)
        return True

    def abort_hold(self, hold_id: int) -> bool:
        """Release one hold; True when it existed and its capacity returned.

        Deliberately callable on a crashed broker: aborting is how the
        coordinator *cleans up*, and a crash has already wiped the hold —
        the call then just reports ``False``.  Idempotent: a replayed
        abort finds the hold gone and reports ``False`` harmlessly.
        """
        return self._drop_hold(hold_id, "aborted")

    def expire_holds(self, now: float) -> list[Hold]:
        """Timeout-abort every hold whose ``expires`` has passed.

        The boundary is tolerance-aware (:func:`hold_expired`): a hold
        whose deadline equals ``now`` — or sits within float noise of it —
        expires on this sweep, consistently with the coordinator's sweep.
        """
        scanned = len(self._holds)
        if scanned:
            self.add_work(float(scanned))
        expired = [h for h in self._holds.values() if hold_expired(h.expires, now)]
        for hold in expired:
            self._drop_hold(hold.hold_id, "expired")
        self.holds_expired += len(expired)
        return expired

    def holds(self) -> list[Hold]:
        """The live (uncommitted) holds, in grant order."""
        return [self._holds[k] for k in sorted(self._holds)]

    def resolutions(self) -> dict[int, str]:
        """Terminal outcome per ended hold id (read-only copy).

        ``committed`` / ``aborted`` / ``expired`` (TTL sweep) /
        ``wiped`` (broker crash) — the record replayed deliveries are
        answered from.
        """
        return dict(self._resolution)

    def resolution_of(self, hold_id: int) -> str | None:
        """Terminal outcome of one hold (``None`` while it is live).

        This is the read the coordinator's termination protocol does when
        a commit's acknowledgements were all lost: the WAL-backed record,
        not the volatile tables, answers whether the commit landed.
        """
        return self._resolution.get(hold_id)

    def was_booked(self, key: object) -> bool:
        """Did an atomic pair booking with this idempotency key land?

        Like :meth:`resolution_of`, a durable-log read for the
        coordinator's termination protocol — it must work even while the
        broker is down, so no availability check.
        """
        return key in self._booked

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> int:
        """Kill the broker: volatile holds vanish, committed state survives.

        Returns the number of holds wiped.  Capacity pinned by the wiped
        holds returns to the slices immediately — the other half of each
        in-flight transaction is the coordinator's to abort.
        """
        wiped = list(self._holds.values())
        for hold in wiped:
            self._drop_hold(hold.hold_id, "wiped")
        self.holds_wiped += len(wiped)
        # The prepare table is in-memory transaction state and dies with
        # the process; the booking-key and resolution records (WAL-backed,
        # witnessing durable bookings) survive.
        self._prepared.clear()
        self.crashed = True
        return len(wiped)

    def restart(self) -> None:
        """Bring a crashed broker back (state = committed bookings only)."""
        self.crashed = False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """Canonical JSON-able digest of the shard's authoritative state."""
        slices: dict[str, dict[str, list]] = {"ingress": {}, "egress": {}}
        for side in ("ingress", "egress"):
            for port in sorted(self._owned_ports[side]):
                slices[side][str(port)] = list(self.timeline(side, port).segments())
        return {
            "shard": self.shard_id,
            "crashed": self.crashed,
            "slices": slices,
            "holds": [
                {
                    "side": h.side,
                    "port": h.port,
                    "t0": h.t0,
                    "t1": h.t1,
                    "bw": h.bw,
                    "rid": h.rid,
                    "expires": h.expires,
                    # Key present only for malleable holds: constant-rate
                    # snapshots stay byte-identical to the scalar format.
                    **({"segments": [list(s) for s in h.segments]} if h.segments is not None else {}),
                }
                for h in self.holds()
            ],
            "resolved": {
                str(hold_id): outcome
                for hold_id, outcome in sorted(self._resolution.items())
            },
            "prepared": {
                str(key): (hold.hold_id if hold is not None else None)
                for key, hold in sorted(
                    self._prepared.items(), key=lambda item: str(item[0])
                )
            },
            "booked": sorted(str(key) for key in self._booked),
        }
