"""Per-client token-bucket backpressure at the gateway edge.

The paper's deployment pairs admission with client-side token-bucket
enforcement (§5.4); the gateway reuses the same primitive
(:class:`~repro.control.token_bucket.TokenBucket`) one layer earlier, as
*submission* backpressure: each client may ask for at most ``burst`` MB
at once and ``rate`` MB/s sustained.  A submission whose volume does not
conform is refused at the edge — it never reaches a batch, never runs a
search, and is counted in the ``gateway_edge_refusals_total`` metric.

Refusal is deterministic: buckets are per-client, fed the gateway's
forward-only clock, and hold no randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..control.token_bucket import TokenBucket
from ..core.errors import ConfigurationError

__all__ = ["EdgeLimit", "EdgeLimiter"]


@dataclass(frozen=True, slots=True)
class EdgeLimit:
    """Edge policy: per-client sustained ``rate`` (MB/s) and ``burst`` (MB)."""

    rate: float
    burst: float

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.burst <= 0:
            raise ConfigurationError(
                f"edge limit needs positive rate and burst, got ({self.rate}, {self.burst})"
            )

    def to_dict(self) -> dict[str, float]:
        """Plain-dict form (journal header)."""
        return {"rate": self.rate, "burst": self.burst}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> EdgeLimit:
        """Inverse of :meth:`to_dict`."""
        return cls(rate=float(data["rate"]), burst=float(data["burst"]))


class EdgeLimiter:
    """Lazily-created per-client token buckets enforcing an :class:`EdgeLimit`."""

    __slots__ = ("limit", "_buckets", "refused", "admitted")

    def __init__(self, limit: EdgeLimit) -> None:
        self.limit = limit
        self._buckets: dict[str, TokenBucket] = {}
        self.refused = 0
        self.admitted = 0

    def admit(self, client: str, volume: float, now: float) -> bool:
        """Offer one submission's volume to the client's bucket."""
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(rate=self.limit.rate, burst=self.limit.burst)
            bucket.reset(now)
            self._buckets[client] = bucket
        if bucket.offer(now, volume):
            self.admitted += 1
            return True
        self.refused += 1
        return False

    def retry_after(self, client: str, volume: float, now: float) -> float:
        """Seconds until ``volume`` would conform for ``client``.

        The boundary mirrors the hold-TTL convention (``hold_expired``):
        at *exactly* ``now + retry_after`` the offer conforms — the refill
        instant itself is on the admitting side, so a client that sleeps
        the hinted duration and retries is never refused again by the same
        deficit.  ``0.0`` means the volume conforms right now (the refusal
        was for a different client or already healed); ``inf`` means the
        volume exceeds the burst and can never conform in one piece.
        """
        bucket = self._buckets.get(client)
        if bucket is None:
            return 0.0
        return max(0.0, bucket.earliest_conforming(now, volume) - now)

    def clients(self) -> list[str]:
        """Every client seen so far (deterministic order)."""
        return sorted(self._buckets)
