"""A two-port ledger view assembled from (up to two) shard brokers.

:func:`repro.core.booking.earliest_fit` searches one ingress/egress pair
against anything satisfying the :class:`~repro.core.booking.LedgerView`
protocol.  :class:`PairLedgerView` satisfies it by stitching the two
authoritative slices together: the ingress broker answers for the ingress
port, the egress broker for the egress port.

Shard-local pairs (both ports on one broker) delegate the joint ``fits``
to the broker's real :class:`~repro.core.ledger.PortLedger`, so a
single-shard gateway searches byte-for-byte the same predicate as the
monolithic service.  Cross-shard pairs combine the two per-side answers
with the same slack conventions.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..core.capacity import CAPACITY_SLACK, CapacityProfile, fits_under
from ..core.errors import ConfigurationError
from .broker import ShardBroker

__all__ = ["PairLedgerView"]


class PairLedgerView:
    """Read-only pair view over the owning brokers of one request's ports."""

    __slots__ = ("ingress_broker", "egress_broker", "ingress", "egress", "_local")

    def __init__(
        self,
        ingress_broker: ShardBroker,
        egress_broker: ShardBroker,
        ingress: int,
        egress: int,
    ) -> None:
        self.ingress_broker = ingress_broker
        self.egress_broker = egress_broker
        self.ingress = ingress
        self.egress = egress
        self._local = ingress_broker is egress_broker

    @property
    def is_local(self) -> bool:
        """True when both ports live on the same shard."""
        return self._local

    def _broker_for(self, side: str, port: int) -> ShardBroker:
        if side == "ingress" and port == self.ingress:
            return self.ingress_broker
        if side == "egress" and port == self.egress:
            return self.egress_broker
        raise ConfigurationError(
            f"pair view for ({self.ingress}, {self.egress}) cannot answer "
            f"for {side} port {port}"
        )

    # ------------------------------------------------------------------
    # The LedgerView protocol (what earliest_fit consumes)
    # ------------------------------------------------------------------
    def ingress_timeline(self, i: int) -> CapacityProfile:
        """Usage profile of the pair's ingress port."""
        return self._broker_for("ingress", i).timeline("ingress", i)

    def egress_timeline(self, e: int) -> CapacityProfile:
        """Usage profile of the pair's egress port."""
        return self._broker_for("egress", e).timeline("egress", e)

    def degradation_edges(self, side: str, port: int) -> Iterator[float]:
        """Capacity-change instants of either port of the pair."""
        return self._broker_for(side, port).degradation_edges(side, port)

    def free_capacity(self, side: str, port: int, t0: float, t1: float) -> float:
        """Guaranteed free bandwidth on either port over ``[t0, t1)``."""
        return self._broker_for(side, port).free_capacity(side, port, t0, t1)

    def fits(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> bool:
        """Joint pair fit, local-delegated or stitched across shards."""
        if ingress != self.ingress or egress != self.egress:
            raise ConfigurationError(
                f"pair view for ({self.ingress}, {self.egress}) asked about "
                f"({ingress}, {egress})"
            )
        if self._local:
            return self.ingress_broker.pair_fits(ingress, egress, t0, t1, bw)
        platform = self.ingress_broker.platform
        cap_in = platform.bin(ingress)
        cap_out = platform.bout(egress)
        in_degraded = self.ingress_broker.has_degradations("ingress", ingress)
        out_degraded = self.egress_broker.has_degradations("egress", egress)
        if not in_degraded and not out_degraded:
            # Mirrors the PortLedger fast path: constant capacities.
            if not fits_under(
                self.ingress_broker.max_usage("ingress", ingress, t0, t1), bw, cap_in
            ):
                return False
            if not fits_under(
                self.egress_broker.max_usage("egress", egress, t0, t1), bw, cap_out
            ):
                return False
            return True
        slack = max(cap_in, cap_out) * CAPACITY_SLACK
        if self.ingress_broker.free_capacity("ingress", ingress, t0, t1) + slack < bw:
            return False
        if self.egress_broker.free_capacity("egress", egress, t0, t1) + slack < bw:
            return False
        return True
