"""Sharded, batched admission gateway with two-phase cross-shard reservation.

The monolithic :class:`~repro.control.service.ReservationService` funnels
every admission through one :class:`~repro.core.ledger.PortLedger` — the
scalability wall named in the ROADMAP.  The paper's model is inherently
federated (a request touches exactly one ingress and one egress access
point, and Eq. 1 constrains only per-port capacity), so admission state
partitions cleanly across per-access-point brokers, the architecture Chen
& Primet's flexible-reservation framework argues for.  This package is
that serving layer:

- :class:`~repro.gateway.sharding.ShardMap` partitions access points
  across N **shard brokers**;
- :class:`~repro.gateway.broker.ShardBroker` owns the ledger slices of
  its ports (usage + degradation timelines, prepare-holds, a cached
  per-port headroom index invalidated on every booking/release);
- :class:`~repro.gateway.batch.Batcher` coalesces concurrently-arriving
  requests into admission batches ordered by a pluggable policy
  (FIFO / min-laxity / max-value);
- :class:`~repro.gateway.twophase.TwoPhaseCoordinator` runs the
  cross-shard reservation protocol: prepare-hold on the ingress and
  egress brokers, then commit — or abort with every hold released, so a
  crashed peer never strands capacity;
- :class:`~repro.gateway.gateway.Gateway` is the client-facing facade:
  submit / cancel / abort / degrade with journaling, crash
  :meth:`~repro.gateway.gateway.Gateway.replay`, and ``gateway_*``
  telemetry on every decision.

A single-shard, batch-of-one gateway is decision-for-decision equivalent
to :class:`~repro.control.service.ReservationService` on the same
workload (the property tests assert this); sharding and batching change
*where* the work happens, never *what* is decided.
"""

from .batch import AdmissionOrdering, Batcher, PendingAdmission
from .broker import BrokerUnavailable, Hold, ShardBroker, hold_expired
from .edge import EdgeLimit, EdgeLimiter
from .gateway import Gateway, GatewayStats, Ticket
from .headroom import HeadroomIndex
from .invariants import InvariantReport, check_gateway
from .rpc import (
    Channel,
    ChannelStats,
    ChannelTimeout,
    ChaosPolicy,
    EdgeChaos,
    Partition,
    ShardUnreachable,
)
from .sharding import ShardMap
from .twophase import TwoPhaseCoordinator, TwoPhaseOutcome
from .view import PairLedgerView

__all__ = [
    "AdmissionOrdering",
    "Batcher",
    "BrokerUnavailable",
    "Channel",
    "ChannelStats",
    "ChannelTimeout",
    "ChaosPolicy",
    "EdgeChaos",
    "EdgeLimit",
    "EdgeLimiter",
    "Gateway",
    "GatewayStats",
    "HeadroomIndex",
    "Hold",
    "InvariantReport",
    "PairLedgerView",
    "Partition",
    "PendingAdmission",
    "ShardBroker",
    "ShardMap",
    "ShardUnreachable",
    "Ticket",
    "TwoPhaseCoordinator",
    "TwoPhaseOutcome",
    "check_gateway",
    "hold_expired",
]
