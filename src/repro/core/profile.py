"""Stepwise rate profiles: the malleable-transfer generalisation.

The paper grants each accepted request one constant rate ``bw(r)`` for its
whole window.  Chen & Primet's flexible-reservation framework (PAPERS.md)
generalises that to a *stepwise rate profile*: an ordered sequence of
``(t0, t1, rate)`` segments, piecewise-constant exactly like the capacity
kernel underneath.  :class:`RateProfile` is the one canonical carrier of
that shape — every layer above :mod:`repro.core.capacity` that used to pass
``(t0, t1, bw)`` triples passes (or derives) a profile instead, and the old
constant-rate allocation is simply the 1-segment special case.

Segment hygiene lives in exactly one place, :meth:`RateProfile.normalize`:
zero-length and zero-rate segments are dropped, touching equal-rate
segments are coalesced, overlaps are rejected.  The capacity backends can
therefore keep their strict ``t1 > t0`` contract — nothing un-normalized
ever reaches them.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

from ..units import REL_TOL, bandwidth_eq, seconds_eq, volume_eq

__all__ = ["RateProfile", "Segment"]

#: One profile step: ``(t0, t1, rate)`` — rate in MB/s over ``[t0, t1)``.
Segment = tuple[float, float, float]


class RateProfile:
    """An immutable, normalized stepwise rate profile.

    Segments are ordered, non-overlapping, strictly positive in both
    length and rate; touching segments never share a rate (they would
    have been coalesced).  Gaps between segments are allowed and carry
    rate zero.  Instances normalise on construction — callers never see
    (and must never build) a raw segment list of their own; gridlint
    GL004/GL009 guard ``_segments`` as a ``repro.core``-owned internal.
    """

    __slots__ = ("_segments",)

    def __init__(self, segments: Iterable[Sequence[float]]) -> None:
        self._segments: tuple[Segment, ...] = RateProfile.normalize(segments)

    # -- canonical hygiene ---------------------------------------------
    @staticmethod
    def normalize(segments: Iterable[Sequence[float]]) -> tuple[Segment, ...]:
        """The one canonical segment clean-up (satellite: segment hygiene).

        - casts to ``float`` triples and validates finiteness;
        - rejects negative rates and inverted windows;
        - drops zero-length (``t0 == t1``) and zero-rate segments — they
          carry no volume;
        - sorts by start, rejects genuine overlaps, clamps sub-tolerance
          overlaps to touching;
        - coalesces touching segments with equal rates (per
          :func:`repro.units.bandwidth_eq`).

        Returns the normalized tuple; raises ``ValueError`` on malformed
        input.  Every ``RateProfile`` constructor path funnels through
        here, so the capacity backends only ever see ``t1 > t0``.
        """
        cleaned: list[Segment] = []
        for raw in segments:
            try:
                t0, t1, rate = (float(part) for part in raw)
            except (TypeError, ValueError) as exc:
                raise ValueError(f"malformed profile segment {raw!r}") from exc
            if not (math.isfinite(t0) and math.isfinite(t1) and math.isfinite(rate)):
                raise ValueError(f"profile segment must be finite, got {(t0, t1, rate)}")
            if rate < 0.0:
                raise ValueError(f"profile segment has negative rate {rate}")
            if t1 < t0:
                raise ValueError(f"profile segment ends before it starts: [{t0}, {t1})")
            if not (t1 > t0) or not (rate > 0.0):
                continue  # zero-length or zero-rate: carries no volume
            cleaned.append((t0, t1, rate))
        cleaned.sort()
        out: list[Segment] = []
        for t0, t1, rate in cleaned:
            if out:
                p0, p1, prev_rate = out[-1]
                if t0 < p1:
                    if not seconds_eq(t0, p1):
                        raise ValueError(
                            f"profile segments overlap: [{p0}, {p1}) and [{t0}, {t1})"
                        )
                    t0 = p1  # sub-tolerance overlap: clamp to touching
                    if not (t1 > t0):
                        continue
                if seconds_eq(t0, p1) and bandwidth_eq(rate, prev_rate):
                    out[-1] = (p0, t1, prev_rate)
                    continue
            out.append((t0, t1, rate))
        return tuple(out)

    # -- constructors ---------------------------------------------------
    @classmethod
    def constant(cls, t0: float, t1: float, rate: float) -> RateProfile:
        """The 1-segment special case: the paper's constant-rate transfer."""
        return cls(((t0, t1, rate),))

    @classmethod
    def from_list(cls, data: Iterable[Sequence[float]]) -> RateProfile:
        """Inverse of :meth:`to_list` (JSON wire shape)."""
        return cls(data)

    # -- shape ----------------------------------------------------------
    @property
    def segments(self) -> tuple[Segment, ...]:
        """The normalized ``(t0, t1, rate)`` segments, in time order."""
        return self._segments

    def __bool__(self) -> bool:
        return bool(self._segments)

    def __len__(self) -> int:
        return len(self._segments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"[{t0:g},{t1:g})@{rate:g}" for t0, t1, rate in self._segments)
        return f"RateProfile({inner})"

    @property
    def sigma(self) -> float:
        """Start of the first segment (the profile's σ)."""
        if not self._segments:
            raise ValueError("empty profile has no start")
        return self._segments[0][0]

    @property
    def tau(self) -> float:
        """End of the last segment (the profile's τ)."""
        if not self._segments:
            raise ValueError("empty profile has no end")
        return self._segments[-1][1]

    @property
    def duration(self) -> float:
        """Span ``τ − σ`` (including any internal gaps)."""
        return self.tau - self.sigma

    @property
    def volume(self) -> float:
        """Total volume carried, ``Σ rate × (t1 − t0)``, in MB."""
        return sum(rate * (t1 - t0) for t0, t1, rate in self._segments)

    @property
    def peak_rate(self) -> float:
        """Largest per-segment rate (the profile's bandwidth footprint)."""
        if not self._segments:
            return 0.0
        return max(rate for _, _, rate in self._segments)

    @property
    def is_constant(self) -> bool:
        """True for the 1-segment (paper-shaped) special case."""
        return len(self._segments) == 1

    # -- evaluation ------------------------------------------------------
    def rate_at(self, t: float) -> float:
        """Instantaneous rate at ``t`` (segments are half-open ``[t0, t1)``)."""
        for t0, t1, rate in self._segments:
            if t0 <= t < t1:
                return rate
            if t < t0:
                break
        return 0.0

    def volume_before(self, t: float) -> float:
        """Volume carried strictly before ``t`` (for consumed-head accounting)."""
        carried = 0.0
        for t0, t1, rate in self._segments:
            if t <= t0:
                break
            carried += rate * (min(t, t1) - t0)
        return carried

    # -- surgery (all return fresh normalized profiles) ------------------
    def shift(self, dt: float) -> RateProfile:
        """The same shape translated by ``dt`` seconds."""
        return RateProfile((t0 + dt, t1 + dt, rate) for t0, t1, rate in self._segments)

    def head_until(self, t: float) -> RateProfile:
        """The (possibly empty) portion carried strictly before ``t``."""
        return RateProfile(
            (t0, min(t, t1), rate) for t0, t1, rate in self._segments if t0 < t
        )

    def tail_from(self, t: float) -> RateProfile:
        """The (possibly empty) portion carried at or after ``t``."""
        return RateProfile(
            (max(t, t0), t1, rate) for t0, t1, rate in self._segments if t1 > t
        )

    def concat(self, other: RateProfile) -> RateProfile:
        """Union of two non-overlapping profiles (head + reshaped tail)."""
        return RateProfile((*self._segments, *other._segments))

    # -- comparisons ------------------------------------------------------
    def approx_eq(self, other: RateProfile, *, rel: float = REL_TOL) -> bool:
        """Segment-wise equality via :mod:`repro.units` tolerances (GL003)."""
        if len(self._segments) != len(other._segments):
            return False
        return all(
            seconds_eq(a0, b0, rel=rel)
            and seconds_eq(a1, b1, rel=rel)
            and bandwidth_eq(ar, br, rel=rel)
            for (a0, a1, ar), (b0, b1, br) in zip(self._segments, other._segments)
        )

    def conserves(self, volume: float, *, rel: float = 1e-6) -> bool:
        """Does this profile deliver ``volume`` MB (volume-conserving)?"""
        return volume_eq(self.volume, volume, rel=rel)

    # -- wire shape -------------------------------------------------------
    def to_list(self) -> list[list[float]]:
        """JSON wire shape: ``[[t0, t1, rate], ...]``."""
        return [[t0, t1, rate] for t0, t1, rate in self._segments]

    @staticmethod
    def maybe_from(value: Any) -> RateProfile | None:
        """Coerce an optional wire value (``None`` | list | profile)."""
        if value is None:
            return None
        if isinstance(value, RateProfile):
            return value
        return RateProfile.from_list(value)
