"""Capacity-checked allocation ledger for a whole platform.

:class:`PortLedger` keeps one capacity-kernel profile
(:class:`~repro.core.capacity.CapacityProfile`) per ingress and per egress
point and enforces the resource-sharing constraints of Eq. 1: at every
instant, the bandwidth committed on a port never exceeds its capacity.
All breakpoint arithmetic lives in :mod:`repro.core.capacity`; the ledger
only issues interface-level range queries and updates.

Schedulers use the ledger in two modes:

- *query* (``fits``): would a constant allocation of ``bw`` on the pair
  ``(ingress, egress)`` over ``[t0, t1)`` stay within both capacities?
- *mutate* (``allocate`` / ``release``): commit or return bandwidth.

Capacities may be **time-varying**: :meth:`PortLedger.degrade` registers a
capacity reduction over an interval (a maintenance window, a partial link
failure, or a full outage when the reduction equals the port capacity).
Reductions are tracked on separate timelines so committed usage and lost
capacity stay independently inspectable; every query (``fits``,
``headroom``, ``max_overcommit``) accounts for them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from .capacity import CAPACITY_SLACK, CapacityProfile, fits_under, make_profile
from .capacity import carried_volume as _kernel_carried_volume
from .errors import CapacityError, ConfigurationError
from .platform import Platform

__all__ = ["PortLedger", "Degradation", "CAPACITY_SLACK"]


@dataclass(frozen=True, slots=True)
class Degradation:
    """A capacity reduction on one port over a finite interval.

    ``amount`` MB/s are unavailable on the port over ``[t0, t1)``; an
    ``amount`` at or above the port capacity models a full outage.
    """

    side: str  # "ingress" | "egress"
    port: int
    t0: float
    t1: float
    amount: float

    def __post_init__(self) -> None:
        if self.side not in ("ingress", "egress"):
            raise ConfigurationError(f"side must be 'ingress' or 'egress', got {self.side!r}")
        if not (self.t1 > self.t0) or not math.isfinite(self.t0) or not math.isfinite(self.t1):
            raise ConfigurationError(f"degradation window [{self.t0}, {self.t1}) must be finite and non-empty")
        if self.amount <= 0:
            raise ConfigurationError(f"degradation amount must be positive, got {self.amount}")

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {"side": self.side, "port": self.port, "t0": self.t0, "t1": self.t1, "amount": self.amount}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Degradation:
        """Inverse of :meth:`to_dict`."""
        return cls(
            side=str(data["side"]),
            port=int(data["port"]),
            t0=float(data["t0"]),
            t1=float(data["t1"]),
            amount=float(data["amount"]),
        )


class PortLedger:
    """Tracks committed bandwidth on every access point of a platform."""

    __slots__ = ("platform", "_ingress", "_egress", "_ingress_red", "_egress_red")

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._ingress = [make_profile() for _ in range(platform.num_ingress)]
        self._egress = [make_profile() for _ in range(platform.num_egress)]
        # Capacity-reduction profiles, created lazily: most simulations
        # never degrade a port and must not pay for the possibility.
        self._ingress_red: list[CapacityProfile | None] = [None] * platform.num_ingress
        self._egress_red: list[CapacityProfile | None] = [None] * platform.num_egress

    # ------------------------------------------------------------------
    def ingress_timeline(self, i: int) -> CapacityProfile:
        """The usage profile of ingress point ``i`` (live view)."""
        return self._ingress[i]

    def egress_timeline(self, e: int) -> CapacityProfile:
        """The usage profile of egress point ``e`` (live view)."""
        return self._egress[e]

    # ------------------------------------------------------------------
    # Time-varying capacity
    # ------------------------------------------------------------------
    def degrade(self, degradation: Degradation) -> None:
        """Register a capacity reduction (see :class:`Degradation`).

        Degradations are external facts, not allocations: they are applied
        unconditionally and may leave already-committed reservations beyond
        the remaining capacity — callers inspect :meth:`overcommit_on` to
        find and displace them.
        """
        usage, reductions = self._side(degradation.side)
        if not (0 <= degradation.port < len(usage)):
            raise ConfigurationError(
                f"no {degradation.side} port {degradation.port} on this platform"
            )
        red = reductions[degradation.port]
        if red is None:
            red = make_profile()
            reductions[degradation.port] = red
        red.add(degradation.t0, degradation.t1, degradation.amount)

    def _side(
        self, side: str
    ) -> tuple[list[CapacityProfile], list[CapacityProfile | None]]:
        if side == "ingress":
            return self._ingress, self._ingress_red
        if side == "egress":
            return self._egress, self._egress_red
        raise ConfigurationError(f"side must be 'ingress' or 'egress', got {side!r}")

    def _base_capacity(self, side: str, port: int) -> float:
        return self.platform.bin(port) if side == "ingress" else self.platform.bout(port)

    def capacity_at(self, side: str, port: int, t: float) -> float:
        """Effective capacity of a port at time ``t`` (never negative)."""
        _, reductions = self._side(side)
        base = self._base_capacity(side, port)
        red = reductions[port]
        if red is None:
            return base
        return max(0.0, base - red.usage_at(t))

    def free_capacity(self, side: str, port: int, t0: float, t1: float) -> float:
        """Guaranteed free bandwidth on a port over all of ``[t0, t1)``.

        The minimum over the interval of ``capacity(t) - usage(t)``, floored
        at zero; the largest constant rate the port can still carry there.
        """
        usage, reductions = self._side(side)
        base = self._base_capacity(side, port)
        red = reductions[port]
        if red is None:
            return max(0.0, base - usage[port].max_usage(t0, t1))
        free = math.inf
        for seg_start, seg_end, reduction in red.segments(t0, t1):
            effective = max(0.0, base - reduction)
            free = min(free, effective - usage[port].max_usage(seg_start, seg_end))
        return max(0.0, free)

    def overcommit_on(self, side: str, port: int, t0: float, t1: float) -> float:
        """Worst ``usage - capacity`` on one port over ``[t0, t1)``.

        Positive values mean committed reservations exceed the (possibly
        degraded) capacity somewhere in the interval.
        """
        usage, reductions = self._side(side)
        base = self._base_capacity(side, port)
        red = reductions[port]
        if red is None:
            return usage[port].max_usage(t0, t1) - base
        worst = -math.inf
        for seg_start, seg_end, reduction in red.segments(t0, t1):
            effective = max(0.0, base - reduction)
            worst = max(worst, usage[port].max_usage(seg_start, seg_end) - effective)
        return worst

    def degradation_edges(self, side: str, port: int) -> Iterator[float]:
        """Finite instants where a port's effective capacity changes."""
        _, reductions = self._side(side)
        red = reductions[port]
        if red is not None:
            yield from red.breakpoints()

    # ------------------------------------------------------------------
    def fits(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> bool:
        """True when ``bw`` fits on both ports over all of ``[t0, t1)``."""
        cap_in = self.platform.bin(ingress)
        cap_out = self.platform.bout(egress)
        if self._ingress_red[ingress] is None and self._egress_red[egress] is None:
            # Fast path: constant capacities (the overwhelmingly common case).
            if not fits_under(self._ingress[ingress].max_usage(t0, t1), bw, cap_in):
                return False
            if not fits_under(self._egress[egress].max_usage(t0, t1), bw, cap_out):
                return False
            return True
        slack = max(cap_in, cap_out) * CAPACITY_SLACK
        if self.free_capacity("ingress", ingress, t0, t1) + slack < bw:
            return False
        if self.free_capacity("egress", egress, t0, t1) + slack < bw:
            return False
        return True

    def headroom(self, ingress: int, egress: int, t0: float, t1: float) -> float:
        """Largest constant bandwidth allocatable on the pair over ``[t0, t1)``."""
        return min(
            self.free_capacity("ingress", ingress, t0, t1),
            self.free_capacity("egress", egress, t0, t1),
        )

    def allocate(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        check: bool = True,
    ) -> None:
        """Commit ``bw`` on the pair over ``[t0, t1)``.

        With ``check=True`` (default) a :class:`CapacityError` is raised and
        the ledger left untouched when the allocation would overflow either
        port.
        """
        if bw < 0:
            raise CapacityError(f"negative allocation {bw}")
        if check and not self.fits(ingress, egress, t0, t1, bw):
            raise CapacityError(
                f"allocation of {bw} MB/s on pair ({ingress}, {egress}) over "
                f"[{t0}, {t1}) exceeds a port capacity"
            )
        self._ingress[ingress].add(t0, t1, bw)
        self._egress[egress].add(t0, t1, bw)

    def release(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> None:
        """Return ``bw`` previously committed on the pair over ``[t0, t1)``."""
        if bw < 0:
            raise CapacityError(f"negative release {bw}")
        self._ingress[ingress].add(t0, t1, -bw)
        self._egress[egress].add(t0, t1, -bw)

    # ------------------------------------------------------------------
    # Stepwise rate profiles (malleable transfers)
    # ------------------------------------------------------------------
    def fits_segments(
        self, ingress: int, egress: int, segments: Iterable[tuple[float, float, float]]
    ) -> bool:
        """True when every ``(t0, t1, rate)`` step fits on both ports.

        Segments are normalized (non-overlapping), so each step is an
        independent constant-rate check — the 1-segment case is exactly
        :meth:`fits`, keeping constant-rate decisions byte-identical.
        """
        return all(self.fits(ingress, egress, t0, t1, rate) for t0, t1, rate in segments)

    def allocate_segments(
        self,
        ingress: int,
        egress: int,
        segments: Iterable[tuple[float, float, float]],
        *,
        check: bool = True,
    ) -> None:
        """Commit a stepwise profile on the pair, all segments or none.

        With ``check=True`` the whole profile is probed first and a
        :class:`CapacityError` raised (ledger untouched) when any step
        would overflow either port.
        """
        steps = tuple(segments)
        if check and not self.fits_segments(ingress, egress, steps):
            raise CapacityError(
                f"profile of {len(steps)} segments on pair ({ingress}, {egress}) "
                f"exceeds a port capacity"
            )
        for t0, t1, rate in steps:
            self._ingress[ingress].add(t0, t1, rate)
            self._egress[egress].add(t0, t1, rate)

    def release_segments(
        self, ingress: int, egress: int, segments: Iterable[tuple[float, float, float]]
    ) -> None:
        """Return a previously committed stepwise profile on the pair."""
        for t0, t1, rate in segments:
            if rate < 0:
                raise CapacityError(f"negative release {rate}")
            self._ingress[ingress].add(t0, t1, -rate)
            self._egress[egress].add(t0, t1, -rate)

    # ------------------------------------------------------------------
    def ingress_usage_at(self, i: int, t: float) -> float:
        """Committed bandwidth on ingress ``i`` at time ``t``."""
        return self._ingress[i].usage_at(t)

    def egress_usage_at(self, e: int, t: float) -> float:
        """Committed bandwidth on egress ``e`` at time ``t``."""
        return self._egress[e].usage_at(t)

    def max_overcommit(self) -> float:
        """Worst-case overshoot ``usage - capacity`` across all ports.

        Non-positive for a valid ledger; used by the verifier and tests.
        Accounts for time-varying capacity on degraded ports.
        """
        worst = -math.inf
        for side, timelines in (("ingress", self._ingress), ("egress", self._egress)):
            for port, tl in enumerate(timelines):
                reductions = self._ingress_red if side == "ingress" else self._egress_red
                if reductions[port] is None:
                    worst = max(worst, tl.global_max() - self._base_capacity(side, port))
                else:
                    span = self._span(tl, reductions[port])
                    if span is None:
                        worst = max(worst, tl.global_max() - self._base_capacity(side, port))
                    else:
                        worst = max(worst, self.overcommit_on(side, port, *span))
        return worst

    @staticmethod
    def _span(*timelines: CapacityProfile | None) -> tuple[float, float] | None:
        """A finite interval covering every breakpoint of the profiles."""
        lo, hi = math.inf, -math.inf
        for tl in timelines:
            if tl is None:
                continue
            points = tl.breakpoints()
            if points.size:
                lo = min(lo, float(points[0]))
                hi = max(hi, float(points[-1]))
        if lo >= hi:
            return None
        return lo, hi + 1.0  # cover the final right-open segment start

    def carried_volume(self, t0: float, t1: float) -> float:
        """Total MB carried through the network over ``[t0, t1)``.

        Ingress and egress each see the full volume, hence the factor ½ —
        mirroring the paper's utilisation scaling.
        """
        total = _kernel_carried_volume(chain(self._ingress, self._egress), t0, t1)
        return 0.5 * total

    def is_empty(self) -> bool:
        """True when nothing is committed anywhere."""
        return all(tl.is_zero() for tl in self._ingress) and all(
            tl.is_zero() for tl in self._egress
        )

    def copy(self) -> PortLedger:
        """Deep copy (used by look-ahead heuristics and the B&B solver)."""
        clone = PortLedger.__new__(PortLedger)
        clone.platform = self.platform
        clone._ingress = [tl.copy() for tl in self._ingress]
        clone._egress = [tl.copy() for tl in self._egress]
        clone._ingress_red = [tl.copy() if tl is not None else None for tl in self._ingress_red]
        clone._egress_red = [tl.copy() if tl is not None else None for tl in self._egress_red]
        return clone
