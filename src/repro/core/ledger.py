"""Capacity-checked allocation ledger for a whole platform.

:class:`PortLedger` keeps one :class:`~repro.core.timeline.BandwidthTimeline`
per ingress and per egress point and enforces the resource-sharing
constraints of Eq. 1: at every instant, the bandwidth committed on a port
never exceeds its capacity.

Schedulers use the ledger in two modes:

- *query* (``fits``): would a constant allocation of ``bw`` on the pair
  ``(ingress, egress)`` over ``[t0, t1)`` stay within both capacities?
- *mutate* (``allocate`` / ``release``): commit or return bandwidth.
"""

from __future__ import annotations

import math

from .errors import CapacityError
from .platform import Platform
from .timeline import BandwidthTimeline

__all__ = ["PortLedger", "CAPACITY_SLACK"]

#: Relative numerical slack applied to capacity comparisons.  Bandwidth
#: values are sums of floats; a strict ``<=`` would reject exact fits that
#: differ by one ulp.
CAPACITY_SLACK: float = 1e-9


class PortLedger:
    """Tracks committed bandwidth on every access point of a platform."""

    __slots__ = ("platform", "_ingress", "_egress")

    def __init__(self, platform: Platform) -> None:
        self.platform = platform
        self._ingress = [BandwidthTimeline() for _ in range(platform.num_ingress)]
        self._egress = [BandwidthTimeline() for _ in range(platform.num_egress)]

    # ------------------------------------------------------------------
    def ingress_timeline(self, i: int) -> BandwidthTimeline:
        """The usage timeline of ingress point ``i`` (live view)."""
        return self._ingress[i]

    def egress_timeline(self, e: int) -> BandwidthTimeline:
        """The usage timeline of egress point ``e`` (live view)."""
        return self._egress[e]

    # ------------------------------------------------------------------
    def fits(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> bool:
        """True when ``bw`` fits on both ports over all of ``[t0, t1)``."""
        cap_in = self.platform.bin(ingress)
        cap_out = self.platform.bout(egress)
        slack_in = cap_in * CAPACITY_SLACK
        slack_out = cap_out * CAPACITY_SLACK
        if self._ingress[ingress].max_usage(t0, t1) + bw > cap_in + slack_in:
            return False
        if self._egress[egress].max_usage(t0, t1) + bw > cap_out + slack_out:
            return False
        return True

    def headroom(self, ingress: int, egress: int, t0: float, t1: float) -> float:
        """Largest constant bandwidth allocatable on the pair over ``[t0, t1)``."""
        free_in = self.platform.bin(ingress) - self._ingress[ingress].max_usage(t0, t1)
        free_out = self.platform.bout(egress) - self._egress[egress].max_usage(t0, t1)
        return max(0.0, min(free_in, free_out))

    def allocate(
        self,
        ingress: int,
        egress: int,
        t0: float,
        t1: float,
        bw: float,
        *,
        check: bool = True,
    ) -> None:
        """Commit ``bw`` on the pair over ``[t0, t1)``.

        With ``check=True`` (default) a :class:`CapacityError` is raised and
        the ledger left untouched when the allocation would overflow either
        port.
        """
        if bw < 0:
            raise CapacityError(f"negative allocation {bw}")
        if check and not self.fits(ingress, egress, t0, t1, bw):
            raise CapacityError(
                f"allocation of {bw} MB/s on pair ({ingress}, {egress}) over "
                f"[{t0}, {t1}) exceeds a port capacity"
            )
        self._ingress[ingress].add(t0, t1, bw)
        self._egress[egress].add(t0, t1, bw)

    def release(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> None:
        """Return ``bw`` previously committed on the pair over ``[t0, t1)``."""
        if bw < 0:
            raise CapacityError(f"negative release {bw}")
        self._ingress[ingress].add(t0, t1, -bw)
        self._egress[egress].add(t0, t1, -bw)

    # ------------------------------------------------------------------
    def ingress_usage_at(self, i: int, t: float) -> float:
        """Committed bandwidth on ingress ``i`` at time ``t``."""
        return self._ingress[i].usage_at(t)

    def egress_usage_at(self, e: int, t: float) -> float:
        """Committed bandwidth on egress ``e`` at time ``t``."""
        return self._egress[e].usage_at(t)

    def max_overcommit(self) -> float:
        """Worst-case overshoot ``usage - capacity`` across all ports.

        Non-positive for a valid ledger; used by the verifier and tests.
        """
        worst = -math.inf
        for i, tl in enumerate(self._ingress):
            worst = max(worst, tl.global_max() - self.platform.bin(i))
        for e, tl in enumerate(self._egress):
            worst = max(worst, tl.global_max() - self.platform.bout(e))
        return worst

    def carried_volume(self, t0: float, t1: float) -> float:
        """Total MB carried through the network over ``[t0, t1)``.

        Ingress and egress each see the full volume, hence the factor ½ —
        mirroring the paper's utilisation scaling.
        """
        total = 0.0
        for tl in self._ingress:
            total += tl.integral(t0, t1)
        for tl in self._egress:
            total += tl.integral(t0, t1)
        return 0.5 * total

    def is_empty(self) -> bool:
        """True when nothing is committed anywhere."""
        return all(tl.is_zero() for tl in self._ingress) and all(
            tl.is_zero() for tl in self._egress
        )

    def copy(self) -> "PortLedger":
        """Deep copy (used by look-ahead heuristics and the B&B solver)."""
        clone = PortLedger.__new__(PortLedger)
        clone.platform = self.platform
        clone._ingress = [tl.copy() for tl in self._ingress]
        clone._egress = [tl.copy() for tl in self._egress]
        return clone
