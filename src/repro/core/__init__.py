"""Core data model: requests, platforms, timelines, allocations, objectives.

This package implements the paper's system model (§2): short-lived transfer
requests with transmission windows, ingress/egress capacity constraints
(Eq. 1), and the MAX-REQUESTS / RESOURCE-UTIL objectives.
"""

from .allocation import Allocation, ScheduleResult, verify_schedule
from .booking import (
    FitProbe,
    RejectReason,
    book_earliest,
    earliest_fit,
    earliest_fit_profile,
    shape_profile,
)
from .capacity import (
    CAPACITY_SLACK,
    BreakpointProfile,
    CapacityProfile,
    VectorProfile,
    available_backends,
    get_default_backend,
    make_profile,
    set_default_backend,
    use_backend,
)
from .errors import (
    CapacityError,
    ConfigurationError,
    InvalidRequestError,
    ReproError,
    ScheduleViolation,
)
from .ledger import Degradation, PortLedger
from .objectives import (
    accept_rate,
    demanded_bandwidth,
    guaranteed_count,
    guaranteed_rate,
    resource_utilization,
    resource_utilization_time_averaged,
    time_averaged_utilization,
)
from .platform import Platform
from .problem import ProblemInstance
from .profile import RateProfile
from .request import Request, RequestSet
from .timeline import BandwidthTimeline

__all__ = [
    "CAPACITY_SLACK",
    "Allocation",
    "BandwidthTimeline",
    "BreakpointProfile",
    "CapacityError",
    "CapacityProfile",
    "ConfigurationError",
    "Degradation",
    "FitProbe",
    "VectorProfile",
    "InvalidRequestError",
    "Platform",
    "PortLedger",
    "ProblemInstance",
    "RateProfile",
    "RejectReason",
    "ReproError",
    "Request",
    "RequestSet",
    "ScheduleResult",
    "ScheduleViolation",
    "accept_rate",
    "available_backends",
    "book_earliest",
    "demanded_bandwidth",
    "earliest_fit",
    "earliest_fit_profile",
    "shape_profile",
    "get_default_backend",
    "make_profile",
    "set_default_backend",
    "use_backend",
    "guaranteed_count",
    "guaranteed_rate",
    "resource_utilization",
    "resource_utilization_time_averaged",
    "time_averaged_utilization",
    "verify_schedule",
]
