"""Grid overlay platform model.

The paper's system model (§2, Figure 1) is a set of grid sites behind edge
("overlay") routers over a well-provisioned core: the core is lossless and
never the bottleneck, so the platform reduces to

- ``M`` **ingress points** with capacities ``B_in(i)``, and
- ``N`` **egress points** with capacities ``B_out(e)``.

A request consumes ``bw(r)`` at exactly one ingress and one egress for the
duration of its transfer; these access links are the only constrained
resources (Eq. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable
from typing import Any

import numpy as np

from .errors import ConfigurationError

__all__ = ["Platform"]


@dataclass(frozen=True)
class Platform:
    """Capacities of the grid access points.

    Parameters
    ----------
    ingress_capacity:
        Array of ``M`` ingress capacities ``B_in(i)`` in MB/s.
    egress_capacity:
        Array of ``N`` egress capacities ``B_out(e)`` in MB/s.
    """

    ingress_capacity: np.ndarray
    egress_capacity: np.ndarray

    def __init__(
        self,
        ingress_capacity: Iterable[float],
        egress_capacity: Iterable[float],
    ) -> None:
        bin_arr = np.asarray(list(ingress_capacity), dtype=np.float64)
        bout_arr = np.asarray(list(egress_capacity), dtype=np.float64)
        if bin_arr.ndim != 1 or bout_arr.ndim != 1:
            raise ConfigurationError("capacities must be one-dimensional")
        if bin_arr.size == 0 or bout_arr.size == 0:
            raise ConfigurationError("platform needs at least one ingress and one egress")
        if np.any(bin_arr <= 0) or np.any(bout_arr <= 0):
            raise ConfigurationError("capacities must be positive")
        bin_arr.flags.writeable = False
        bout_arr.flags.writeable = False
        object.__setattr__(self, "ingress_capacity", bin_arr)
        object.__setattr__(self, "egress_capacity", bout_arr)

    # ------------------------------------------------------------------
    @property
    def num_ingress(self) -> int:
        """Number of ingress points ``M``."""
        return int(self.ingress_capacity.size)

    @property
    def num_egress(self) -> int:
        """Number of egress points ``N``."""
        return int(self.egress_capacity.size)

    @property
    def total_capacity(self) -> float:
        """``sum B_in + sum B_out`` (both sides of the network)."""
        return float(self.ingress_capacity.sum() + self.egress_capacity.sum())

    @property
    def half_capacity(self) -> float:
        """``(sum B_in + sum B_out) / 2`` — the paper's load/utilisation denominator.

        A transfer consumes bandwidth at both an ingress and an egress, so
        total grantable throughput is half of the summed port capacities.
        """
        return 0.5 * self.total_capacity

    def bin(self, i: int) -> float:
        """Capacity ``B_in(i)`` of ingress point ``i``."""
        return float(self.ingress_capacity[i])

    def bout(self, e: int) -> float:
        """Capacity ``B_out(e)`` of egress point ``e``."""
        return float(self.egress_capacity[e])

    def bottleneck(self, i: int, e: int) -> float:
        """``b_min = min(B_in(i), B_out(e))`` for a pair — used by the
        CUMULATED-SLOTS cost factor (§4.2)."""
        return min(self.bin(i), self.bout(e))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, num_ingress: int, num_egress: int, capacity: float) -> Platform:
        """All ports share one capacity — the paper's simulation platform.

        The published experiments use ``uniform(10, 10, 1000.0)``:
        10 ingress and 10 egress points at 1 GB/s each (§4.3).
        """
        return cls([capacity] * num_ingress, [capacity] * num_egress)

    @classmethod
    def paper_platform(cls) -> Platform:
        """The exact simulation platform of §4.3: 10×10 ports at 1 GB/s."""
        return cls.uniform(10, 10, 1000.0)

    @classmethod
    def grid5000(cls, site_capacities: Iterable[float] | None = None) -> Platform:
        """A Grid'5000-like platform: 8 sites, symmetric access links.

        Each site contributes one ingress and one egress point.  Default
        capacities mimic the heterogeneous access links of the eight French
        sites (between 1 and 10 Gbit/s ≈ 125–1250 MB/s).
        """
        if site_capacities is None:
            site_capacities = [1250.0, 1250.0, 1250.0, 625.0, 625.0, 625.0, 125.0, 125.0]
        caps = list(site_capacities)
        return cls(caps, caps)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {
            "ingress_capacity": self.ingress_capacity.tolist(),
            "egress_capacity": self.egress_capacity.tolist(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Platform:
        """Inverse of :meth:`to_dict`."""
        return cls(data["ingress_capacity"], data["egress_capacity"])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return np.array_equal(self.ingress_capacity, other.ingress_capacity) and np.array_equal(
            self.egress_capacity, other.egress_capacity
        )

    def __hash__(self) -> int:
        return hash((self.ingress_capacity.tobytes(), self.egress_capacity.tobytes()))
