"""Exception hierarchy for the :mod:`repro` library."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidRequestError",
    "CapacityError",
    "ScheduleViolation",
    "ConfigurationError",
    "InternalInvariantError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidRequestError(ReproError, ValueError):
    """A transfer request violates its own structural invariants.

    Raised e.g. for non-positive volume, an empty transmission window, or a
    ``MaxRate`` below the ``MinRate`` implied by the window.
    """


class CapacityError(ReproError, ValueError):
    """An allocation was attempted beyond a port's capacity."""


class ScheduleViolation(ReproError, AssertionError):
    """A produced schedule violates the resource-sharing constraints (Eq. 1).

    Raised by :func:`repro.core.allocation.verify_schedule`, which re-checks
    every schedule independently of scheduler bookkeeping.
    """


class ConfigurationError(ReproError, ValueError):
    """An experiment or scheduler was configured inconsistently."""


class InternalInvariantError(ReproError, AssertionError):
    """An internal consistency invariant did not hold.

    Replaces bare ``assert`` statements for runtime invariants in library
    code: ``assert`` vanishes under ``python -O``, silently disabling the
    very checks that guard capacity accounting and replay determinism
    (gridlint rule GL007).  Subclasses :class:`AssertionError` so callers
    that treated the old asserts as assertion failures keep working.
    """
