"""Problem instances: a platform plus a set of requests.

A :class:`ProblemInstance` is the unit every scheduler consumes and every
workload generator produces.  It also carries the paper's *load* statistic
(§4.3), the ratio of demanded to available bandwidth, which the experiment
harness uses to label sweeps.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from .platform import Platform
from .request import Request, RequestSet

__all__ = ["ProblemInstance"]


@dataclass(frozen=True)
class ProblemInstance:
    """An immutable (platform, requests) pair."""

    platform: Platform
    requests: RequestSet

    # ------------------------------------------------------------------
    @property
    def num_requests(self) -> int:
        """Number of requests ``K``."""
        return len(self.requests)

    def offered_load(self) -> float:
        """The paper's instantaneous load definition (§4.3).

        ``load = Σ_r bw(r) / ½(Σ B_in + Σ B_out)`` with ``bw(r)`` read as the
        demanded rate (``MinRate``).  Meaningful when requests largely
        overlap in time; see :meth:`offered_load_rate` for the steady-state
        variant used to calibrate Poisson workloads.
        """
        demanded = sum(r.min_rate for r in self.requests)
        return demanded / self.platform.half_capacity

    def offered_load_rate(self) -> float:
        """Steady-state offered load: bytes offered per second over capacity.

        ``(Σ_r vol(r) / horizon) / half_capacity`` where the horizon is the
        span between the first arrival and the last deadline.  Equals the
        time-average of concurrent demanded bandwidth when windows tile the
        horizon.
        """
        if not self.requests:
            return 0.0
        t0, t1 = self.requests.time_span()
        horizon = t1 - t0
        if horizon <= 0:
            return 0.0
        return (self.requests.total_volume() / horizon) / self.platform.half_capacity

    def validate(self) -> None:
        """Check requests reference existing ports (raises ``IndexError``-style
        :class:`ValueError` otherwise)."""
        m = self.platform.num_ingress
        n = self.platform.num_egress
        for r in self.requests:
            if not (0 <= r.ingress < m):
                raise ValueError(f"request {r.rid}: ingress {r.ingress} outside platform (M={m})")
            if not (0 <= r.egress < n):
                raise ValueError(f"request {r.rid}: egress {r.egress} outside platform (N={n})")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {
            "platform": self.platform.to_dict(),
            "requests": [r.to_dict() for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ProblemInstance:
        """Inverse of :meth:`to_dict`."""
        return cls(
            platform=Platform.from_dict(data["platform"]),
            requests=RequestSet(Request.from_dict(d) for d in data["requests"]),
        )

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> ProblemInstance:
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> None:
        """Write the instance to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> ProblemInstance:
        """Read an instance from a JSON file."""
        return cls.from_json(Path(path).read_text())
